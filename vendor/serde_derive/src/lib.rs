//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The stand-in `serde` crate gives `Serialize`/`Deserialize` blanket
//! impls, so the derives have nothing to generate — they only need to
//! exist (and accept `#[serde(...)]` helper attributes) for
//! `#[derive(Serialize, Deserialize)]` to compile.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
