//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(
            self.size.start < self.size.end,
            "empty size range {:?}",
            self.size
        );
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
