//! `any::<T>()` — full-range generation for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types that can be generated over their whole domain.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            mag
        } else {
            -mag
        }
    }
}
