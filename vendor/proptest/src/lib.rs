//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API that this workspace's property
//! tests use: the `proptest!` test-definition macro, composable value
//! strategies (`Range`, tuples, `Just`, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, `any::<T>()`), `ProptestConfig::with_cases`,
//! and the `prop_assert!`/`prop_assert_eq!` failure plumbing.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs verbatim; since
//!   generation is deterministic (seeded from the test's module path and
//!   name), a failure reproduces exactly on re-run.
//! * **No persistence files**, no fork, no timeout handling.
//!
//! Swapping the real crate back in is a `Cargo.toml` change only.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `prop` facade module, mirroring `proptest::prop::*` paths used in
/// `use proptest::prelude::*` style code (`prop::collection::vec(..)`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..10, y in any::<bool>()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n    inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assert inside a proptest body; failures report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(concat!(
                    "assertion failed: ", stringify!($cond)
                )),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: {} == {} (left: {:?}, right: {:?})",
                            stringify!($left), stringify!($right), l, r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{} (left: {:?}, right: {:?})", format!($($fmt)+), l, r
                        )),
                    );
                }
            }
        }
    };
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} != {} (both: {:?})",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn oneof_map_and_vec(
            v in prop::collection::vec(0u64..10, 2..6),
            t in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
            m in (0u32..4).prop_map(|x| x * 10),
            b in any::<bool>(),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!((1..5).contains(&t));
            prop_assert_eq!(m % 10, 0);
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = (0u64..1000, 0.0f64..1.0);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
