//! Test-runner plumbing: per-test deterministic RNG, case-count
//! configuration, and the error type `prop_assert!` produces.

use std::fmt;

/// How many cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic xoshiro-style generator seeded from the test's name, so
/// every run of a given test sees the same case sequence (failures
/// reproduce without persistence files).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a over the bytes, expanded
    /// through SplitMix64).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below called with bound 0");
        let m = (self.next_u64() as u128).wrapping_mul(bound as u128);
        (m >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
