//! Value-generation strategies: the composable core of the proptest API.

use std::fmt::Debug;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`. The stand-in samples
/// directly (no value trees, no shrinking).
pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice over same-typed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range {:?}", self
                    );
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = if span > u64::MAX as u128 {
                        rng.next_u64() as u128
                    } else {
                        rng.below(span as u64) as u128
                    };
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
