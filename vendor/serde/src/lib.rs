//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! so downstream users *could* plug in a data format, but nothing in-tree
//! serializes anything (there is no `serde_json`/`bincode` here). Building
//! on an air-gapped machine therefore only needs the trait names and the
//! derive attribute to exist. This crate provides exactly that: marker
//! traits satisfied by every type, and (behind the `derive` feature) derive
//! macros that expand to nothing.
//!
//! Swapping the real `serde` back in is a one-line change in the workspace
//! `Cargo.toml`; no source file mentions this stub.

/// Marker counterpart of `serde::Serialize`. Satisfied by every type.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`. Satisfied by every type.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
