//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups,
//! `Bencher::iter`/`iter_batched`, `BatchSize`). Each benchmark runs a
//! small fixed number of iterations and prints a rough mean time — enough
//! to smoke-test that bench code paths work and to eyeball regressions,
//! without statistical analysis, warm-up tuning, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

const ITERS: u32 = 10;

/// How batched inputs are grouped. Ignored by the stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to each benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERS {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iters += 1;
            drop(out);
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.total += start.elapsed();
            self.iters += 1;
            drop(out);
        }
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {label:<40} {mean:>12.2?}/iter ({} iters)", b.iters);
}

/// The harness entry point created by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
