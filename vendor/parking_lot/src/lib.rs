//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses is provided: `Mutex` with
//! infallible `lock`/`into_inner` (poison is swallowed, matching
//! parking_lot's panic-transparent semantics closely enough for our
//! result-aggregation use).

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Drop-in `parking_lot::Mutex`: like `std::sync::Mutex` but `lock()`
/// never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
