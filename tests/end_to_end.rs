//! End-to-end integration: every strategy × every topology family × several
//! workloads must complete, compute the right answer, and satisfy the
//! report invariants.

use oracle::prelude::*;

fn all_strategies() -> Vec<StrategySpec> {
    vec![
        StrategySpec::Local,
        StrategySpec::RoundRobin,
        StrategySpec::RandomWalk { hops: 2 },
        StrategySpec::Cwn {
            radius: 5,
            horizon: 1,
        },
        StrategySpec::Gradient {
            low_water_mark: 1,
            high_water_mark: 2,
            interval: 20,
        },
        StrategySpec::AdaptiveCwn {
            radius: 5,
            horizon: 1,
            saturation: 3,
            redistribute: true,
        },
        StrategySpec::WorkStealing { retry_delay: 30 },
        StrategySpec::Diffusion {
            interval: 20,
            threshold: 2,
            max_per_cycle: 2,
        },
        StrategySpec::GlobalRandom,
        StrategySpec::ThresholdProbe {
            threshold: 2,
            probe_limit: 3,
        },
    ]
}

fn topologies() -> Vec<TopologySpec> {
    vec![
        TopologySpec::grid(4),
        TopologySpec::Mesh2D {
            width: 4,
            height: 4,
            wraparound: true,
        },
        TopologySpec::dlm(5),
        TopologySpec::Hypercube { dim: 4 },
        TopologySpec::Ring { n: 8 },
        TopologySpec::Complete { n: 6 },
        TopologySpec::Star { n: 9 },
        TopologySpec::SingleBus { n: 6 },
    ]
}

#[test]
fn every_strategy_on_every_topology_computes_fib() {
    let mut specs = Vec::new();
    for topology in topologies() {
        for strategy in all_strategies() {
            specs.push(RunSpec::new(
                format!("{topology}/{strategy}"),
                SimulationBuilder::new()
                    .topology(topology)
                    .strategy(strategy)
                    .workload(WorkloadSpec::fib(12))
                    .seed(5)
                    .config(),
            ));
        }
    }
    for (label, result) in run_batch(&specs) {
        let r = result.unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(r.result, 144, "{label} computed the wrong fib(12)");
        r.check_invariants();
        assert!(r.speedup > 0.0, "{label} zero speedup");
    }
}

#[test]
fn every_workload_family_runs_under_both_competitors() {
    let workloads = vec![
        WorkloadSpec::fib(12),
        WorkloadSpec::dc(144),
        WorkloadSpec::DivideConquer { m: 5, n: 68 },
        WorkloadSpec::Lopsided {
            budget: 300,
            skew_pct: 85,
        },
        WorkloadSpec::RandomTree {
            budget: 300,
            max_children: 4,
            grain_spread: 3,
            seed: 9,
        },
        WorkloadSpec::Cyclic {
            phases: 3,
            width: 6,
            leaves: 10,
        },
        WorkloadSpec::Tak { x: 8, y: 4, z: 0 },
    ];
    let strategies = [
        StrategySpec::Cwn {
            radius: 5,
            horizon: 1,
        },
        StrategySpec::Gradient {
            low_water_mark: 1,
            high_water_mark: 2,
            interval: 20,
        },
    ];
    let mut specs = Vec::new();
    for &workload in &workloads {
        for strategy in strategies {
            specs.push(RunSpec::new(
                format!("{workload}/{strategy}"),
                SimulationBuilder::new()
                    .topology(TopologySpec::grid(5))
                    .strategy(strategy)
                    .workload(workload)
                    .seed(1)
                    .config(),
            ));
        }
    }
    // run_batch validates results and goal counts against the analytic
    // expectations internally (run_validated).
    for (label, result) in run_batch(&specs) {
        let r = result.unwrap_or_else(|e| panic!("{label}: {e}"));
        r.check_invariants();
    }
}

#[test]
fn cyclic_workload_drains_and_refills_the_machine() {
    let r = SimulationBuilder::new()
        .topology(TopologySpec::grid(4))
        .strategy(StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        })
        .workload(WorkloadSpec::Cyclic {
            phases: 4,
            width: 8,
            leaves: 16,
        })
        .sampling_interval(50)
        .seed(2)
        .run_validated()
        .unwrap();
    // Utilization must rise and fall repeatedly: count the falling edges
    // below 30% after having been above 60%.
    let mut cycles = 0;
    let mut high = false;
    for &(_, u) in &r.util_series {
        if u > 0.6 {
            high = true;
        } else if high && u < 0.3 {
            cycles += 1;
            high = false;
        }
    }
    assert!(
        cycles >= 2,
        "expected repeated rise-and-fall, saw {cycles} cycles in {:?}",
        r.util_series
    );
}

#[test]
fn heterogeneous_grains_change_total_work() {
    let uniform = SimulationBuilder::new()
        .topology(TopologySpec::grid(4))
        .workload(WorkloadSpec::RandomTree {
            budget: 200,
            max_children: 3,
            grain_spread: 1,
            seed: 4,
        })
        .strategy(StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        })
        .run_validated()
        .unwrap();
    let spread = SimulationBuilder::new()
        .topology(TopologySpec::grid(4))
        .workload(WorkloadSpec::RandomTree {
            budget: 200,
            max_children: 3,
            grain_spread: 4,
            seed: 4,
        })
        .strategy(StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        })
        .run_validated()
        .unwrap();
    assert!(
        spread.seq_work > uniform.seq_work,
        "grain spread should add work: {} vs {}",
        spread.seq_work,
        uniform.seq_work
    );
}

#[test]
fn bigger_machines_do_not_slow_down_a_fixed_workload() {
    // Speedup should not collapse when PEs are added (weak sanity check on
    // scalability of the machine model itself).
    let time_on = |side: usize| {
        SimulationBuilder::new()
            .topology(TopologySpec::grid(side))
            .strategy(StrategySpec::Cwn {
                radius: 6,
                horizon: 1,
            })
            .workload(WorkloadSpec::fib(15))
            .seed(3)
            .run_validated()
            .unwrap()
            .completion_time
    };
    let small = time_on(4);
    let large = time_on(8);
    assert!(
        large < small,
        "4x the PEs should cut completion time: {small} -> {large}"
    );
}

#[test]
fn no_coprocessor_slows_gm_more_than_cwn() {
    // §3.1: "Without such a co-processor, the gradient model will suffer
    // more, because it needs to execute a more complex code and more
    // frequently."
    let run = |strategy: StrategySpec, coproc: bool| {
        SimulationBuilder::new()
            .topology(TopologySpec::grid(5))
            .strategy(strategy)
            .workload(WorkloadSpec::fib(13))
            .coprocessor(coproc)
            .seed(6)
            .run_validated()
            .unwrap()
            .completion_time as f64
    };
    let cwn = StrategySpec::Cwn {
        radius: 5,
        horizon: 1,
    };
    let gm = StrategySpec::Gradient {
        low_water_mark: 1,
        high_water_mark: 2,
        interval: 20,
    };
    let cwn_penalty = run(cwn, false) / run(cwn, true);
    let gm_penalty = run(gm, false) / run(gm, true);
    assert!(
        gm_penalty > 1.0,
        "software routing should cost GM something (penalty {gm_penalty})"
    );
    assert!(
        cwn_penalty > 0.9,
        "software routing should not speed CWN up (penalty {cwn_penalty})"
    );
}

/// Goals that travel beyond the hop histogram's bucket range (64 buckets on
/// small topologies) must not vanish from the report: they land in
/// `hop_overflow`, the histogram + overflow still account for every
/// executed goal, and the mean distance keeps their true magnitudes. A
/// 70-hop random walk on a 4-PE ring overflows every spawned goal.
#[test]
fn hop_histogram_overflow_is_counted_not_lost() {
    let report = SimulationBuilder::new()
        .topology(TopologySpec::Ring { n: 4 })
        .strategy(StrategySpec::RandomWalk { hops: 70 })
        .workload(WorkloadSpec::fib(10))
        .seed(5)
        .run_validated()
        .unwrap();
    report.check_invariants();
    assert!(
        report.hop_overflow > 0,
        "70-hop walks must overflow the 64-bucket histogram"
    );
    assert_eq!(
        report.hop_histogram.iter().sum::<u64>() + report.hop_overflow,
        report.goals_executed,
        "histogram + overflow must cover every executed goal"
    );
    // Only the directly-injected root stays in-range, so the mean distance
    // must sit near the walk length — not near the bucket cap.
    assert!(
        report.avg_goal_distance > 65.0,
        "mean distance {} lost the overflowed magnitudes",
        report.avg_goal_distance
    );
}
