//! Machine-level cross-queue determinism: the binary-heap `EventQueue` and
//! the timing-wheel `CalendarQueue` must produce bit-identical `Report`s on
//! full paper workloads, not just agree on the queue-order proptest.
//!
//! Both backends promise the same ordering contract — (time, insertion
//! sequence) — so swapping one for the other may change throughput but never
//! a simulated result. These tests run each configuration once per backend
//! and compare the complete `Debug` rendering of the `Report` (completion
//! time, utilizations including float series, hop histograms, traffic and
//! fault counters), the same full-fidelity comparison the golden tests use.

use oracle::prelude::*;
use oracle_model::QueueBackend;

fn reports_match(name: &str, build: impl Fn() -> SimulationBuilder) {
    let run = |backend: QueueBackend| {
        let report = build()
            .queue_backend(backend)
            .config()
            .run()
            .unwrap_or_else(|e| panic!("{name} under {backend:?} failed: {e:?}"));
        format!("{report:#?}")
    };
    let heap = run(QueueBackend::Heap);
    let calendar = run(QueueBackend::Calendar);
    assert!(
        heap == calendar,
        "{name}: Report diverged between queue backends — the event-list \
         implementations no longer share the (time, seq) ordering contract"
    );
}

#[test]
fn fib15_grid_cwn_and_gm_identical_across_backends() {
    for (strategy, tag) in [
        (StrategySpec::cwn_paper(true), "cwn"),
        (StrategySpec::gradient_paper(true), "gm"),
    ] {
        reports_match(&format!("fib15/grid10/{tag}"), || {
            SimulationBuilder::new()
                .topology(TopologySpec::grid(10))
                .strategy(strategy)
                .workload(WorkloadSpec::fib(15))
                .per_pe_series(true)
                .seed(11)
        });
    }
}

#[test]
fn fib15_dlm_cwn_and_gm_identical_across_backends() {
    for (strategy, tag) in [
        (StrategySpec::cwn_paper(false), "cwn"),
        (StrategySpec::gradient_paper(false), "gm"),
    ] {
        reports_match(&format!("fib15/dlm10/{tag}"), || {
            SimulationBuilder::new()
                .topology(TopologySpec::dlm(10))
                .strategy(strategy)
                .workload(WorkloadSpec::fib(15))
                .seed(12)
        });
    }
}

#[test]
fn dc_4_6_identical_across_backends() {
    reports_match("dc(4,6)/grid5/cwn", || {
        SimulationBuilder::new()
            .topology(TopologySpec::grid(5))
            .strategy(StrategySpec::cwn_paper(true))
            .workload(WorkloadSpec::DivideConquer { m: 4, n: 6 })
            .seed(13)
    });
}

#[test]
fn faulty_run_identical_across_backends() {
    // Faults add timer churn, detour routing, and the recovery sweep — the
    // paths most likely to depend accidentally on event-queue internals.
    use oracle_model::{FaultPlan, RecoveryParams};
    reports_match("fib12/grid5/cwn+faults", || {
        SimulationBuilder::new()
            .topology(TopologySpec::grid(5))
            .strategy(StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            })
            .workload(WorkloadSpec::fib(12))
            .fault_plan(
                FaultPlan::none()
                    .crash(7, 400)
                    .link_down(3, 200, 900)
                    .with_loss(0.02)
                    .with_recovery(RecoveryParams::default()),
            )
            .seed(14)
    });
}
