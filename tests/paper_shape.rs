//! The paper's qualitative claims, checked against the simulator at reduced
//! scale. These are the "shape" assertions EXPERIMENTS.md records at full
//! scale: who wins, roughly by how much, and the diagnostic signatures
//! (rise time, hop distributions, message-count asymmetry).

use oracle::builder::paper_strategies;
use oracle::experiments::{plots, table2, table3, Fidelity};
use oracle::prelude::*;

/// The headline (§4, Table 2): "In 118 out of 120 cases, the CWN is seen to
/// be better." At Quick fidelity we demand a clear majority and at least one
/// significant (>10%) win.
#[test]
fn cwn_beats_gm_in_most_cells() {
    let cells = table2::run(Fidelity::Quick, 1);
    let s = table2::summarize(&cells);
    assert!(
        s.cwn_wins * 10 >= s.cells * 7,
        "CWN won only {}/{} cells",
        s.cwn_wins,
        s.cells
    );
    assert!(s.significant >= s.cells / 3, "too few significant wins");
    assert!(s.max_ratio > 1.2);
}

/// "On grids at times the CWN leads to thrice as much speed as GM" — the
/// advantage grows with the machine; check the larger grid beats the
/// smaller grid's ratio for the biggest workload.
#[test]
fn grid_advantage_grows_with_machine_size() {
    let ratio = |side: usize| {
        let topology = TopologySpec::grid(side);
        let (cwn, gm) = paper_strategies(&topology);
        let run = |s| {
            SimulationBuilder::new()
                .topology(topology)
                .strategy(s)
                .workload(WorkloadSpec::fib(15))
                .seed(1)
                .run_validated()
                .unwrap()
                .speedup
        };
        run(cwn) / run(gm)
    };
    let small = ratio(5);
    let large = ratio(10);
    assert!(
        large > small,
        "advantage should grow with size: {small:.2} -> {large:.2}"
    );
    assert!(large > 1.5, "large-grid advantage too small: {large:.2}");
}

/// Table 3's signatures: CWN ships everything (nothing at 0 hops, spike at
/// the radius, mean ≈ 3); GM keeps most goals local (large mass at 0 hops,
/// mean < 1 at paper scale — < 1.5 at quick scale).
#[test]
fn hop_distributions_match_table3_shape() {
    let d = table3::run(Fidelity::Quick, 1);
    assert_eq!(d.cwn.hop_histogram[0], 0, "CWN kept a goal at its source");
    assert!(
        d.gm.hop_histogram[0] * 2 > d.gm.goals_created,
        "GM should keep most goals at home: {:?}",
        &d.gm.hop_histogram[..2]
    );
    assert!(d.cwn.avg_goal_distance > 2.0 * d.gm.avg_goal_distance);
}

/// At full paper configuration (fib(18), 10×10 grid), the radius spike and
/// the CWN/GM traffic asymmetry ("typically, it requires thrice as much
/// communication as the GM") must both appear.
#[test]
fn fib18_radius_spike_and_traffic_asymmetry() {
    let d = table3::run(Fidelity::Paper, 1);
    let h = &d.cwn.hop_histogram;
    assert_eq!(h.len(), 10, "CWN histogram must stop at radius 9: {h:?}");
    assert!(h[9] > h[8], "no spike at the radius: {h:?}");
    assert!(
        d.cwn.traffic.goal_hops > 2 * d.gm.traffic.goal_hops,
        "CWN should need much more goal communication ({} vs {})",
        d.cwn.traffic.goal_hops,
        d.gm.traffic.goal_hops
    );
    assert!(
        d.gm.avg_goal_distance < 1.0,
        "GM mean distance should be < 1"
    );
}

/// The headline must be mechanism, not placement luck: across several
/// seeds the two speedup distributions must be cleanly separated.
#[test]
fn headline_is_seed_robust() {
    use oracle::runner::seed_sweep;
    let topology = TopologySpec::grid(5);
    let workload = WorkloadSpec::fib(13);
    let (cwn, gm) = paper_strategies(&topology);
    let sweep = |strategy| {
        seed_sweep(
            SimulationBuilder::new()
                .topology(topology)
                .strategy(strategy)
                .workload(workload)
                .config(),
            1,
            6,
        )
    };
    let c = sweep(cwn);
    let g = sweep(gm);
    let c_min = c.speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let g_max = g.speedups.iter().copied().fold(0.0f64, f64::max);
    assert!(
        c_min > g_max,
        "distributions overlap: CWN min {c_min:.2} vs GM max {g_max:.2}"
    );
    assert!(
        c.relative_spread() < 0.25,
        "CWN spread {}",
        c.relative_spread()
    );
}

/// Plots 11–16: "the CWN has much faster 'rise-time' than GM: it spreads
/// work quickly to all the PEs at beginning."
#[test]
fn cwn_rise_time_is_faster() {
    let p = plots::util_vs_time(TopologySpec::grid(10), WorkloadSpec::fib(15), 50, 1);
    let cwn = plots::rise_time(&p.cwn, 30.0);
    let gm = plots::rise_time(&p.gm, 30.0);
    match (cwn, gm) {
        (Some(c), Some(g)) => assert!(c < g, "CWN rise {c} not faster than GM {g}"),
        (Some(_), None) => {} // GM never got there — also the paper's story.
        other => panic!("unexpected rise times {other:?}"),
    }
}

/// Plots 11–12 on the DLM: "Although it takes the system close to 100%
/// utilization quickly, it cannot maintain the performance at that level.
/// The Gradient model manages to maintain 100% when it reaches that level."
/// GM's peak must exceed CWN's on the paper's fib(18)/100-PE DLM.
#[test]
fn gm_holds_a_higher_peak_on_the_dlm() {
    let p = plots::util_vs_time(TopologySpec::dlm(10), WorkloadSpec::fib(18), 100, 1);
    let peak = |s: &[(u64, f64)]| s.iter().map(|&(_, u)| u).fold(0.0f64, f64::max);
    let cwn_peak = peak(&p.cwn);
    let gm_peak = peak(&p.gm);
    assert!(
        gm_peak > 95.0,
        "GM should reach ~100% on the DLM, peaked at {gm_peak:.0}%"
    );
    assert!(
        cwn_peak < gm_peak,
        "CWN should not hold the DLM at peak (CWN {cwn_peak:.0}% vs GM {gm_peak:.0}%)"
    );
    // And GM *holds* it: at least 5 consecutive intervals above 90%.
    let held = p.gm.windows(5).any(|w| w.iter().all(|&(_, u)| u > 90.0));
    assert!(held, "GM failed to hold its peak");
}

/// Plots 1–5 shape: utilization grows with problem size on a fixed machine
/// (more goals, better coverage) for both schemes.
#[test]
fn utilization_grows_with_problem_size() {
    let workloads = [
        WorkloadSpec::dc(55),
        WorkloadSpec::dc(144),
        WorkloadSpec::dc(377),
    ];
    let p = plots::util_vs_goals(TopologySpec::dlm(5), &workloads, 1);
    for line in [&p.cwn, &p.gm] {
        assert!(
            line.points[2].1 > line.points[0].1,
            "{}: utilization did not grow: {:?}",
            line.strategy,
            line.points
        );
    }
}

/// The dc and fib variants behave similarly (the paper omitted the fib
/// plots for this reason): both must favour CWN on a grid.
#[test]
fn dc_and_fib_agree_on_the_winner() {
    let topology = TopologySpec::grid(8);
    let (cwn, gm) = paper_strategies(&topology);
    for workload in [WorkloadSpec::fib(15), WorkloadSpec::dc(987)] {
        let run = |s| {
            SimulationBuilder::new()
                .topology(topology)
                .strategy(s)
                .workload(workload)
                .seed(2)
                .run_validated()
                .unwrap()
                .speedup
        };
        let ratio = run(cwn) / run(gm);
        assert!(ratio > 1.0, "{workload}: CWN should win (ratio {ratio:.2})");
    }
}

/// DLM vs grid: "The DLM topologies have smaller diameters (4-5) compared
/// to the grids (ranges from 8 to 38)" and the CWN advantage is milder on
/// the DLM.
#[test]
fn dlm_advantage_is_milder_than_grid() {
    let ratio_on = |topology: TopologySpec| {
        let (cwn, gm) = paper_strategies(&topology);
        let run = |s| {
            SimulationBuilder::new()
                .topology(topology)
                .strategy(s)
                .workload(WorkloadSpec::fib(15))
                .seed(1)
                .run_validated()
                .unwrap()
                .speedup
        };
        run(cwn) / run(gm)
    };
    let grid = ratio_on(TopologySpec::grid(10));
    let dlm = ratio_on(TopologySpec::dlm(10));
    assert!(
        grid > dlm,
        "grid advantage {grid:.2} <= dlm advantage {dlm:.2}"
    );
    // Diameters per the paper.
    assert_eq!(TopologySpec::grid(10).build().diameter(), 18);
    assert!(TopologySpec::dlm(10).build().diameter() <= 5);
}
