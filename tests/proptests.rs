//! Property-based tests over the whole stack: randomized topologies,
//! workloads, strategy parameters, and seeds must never break the machine's
//! invariants.

use oracle::des::{
    CalendarQueue, EventQueue, Histogram, IntervalSeries, OnlineStats, Rng, SimTime,
};
use oracle::prelude::*;
use proptest::prelude::*;
// Both preludes export a `Strategy` name (the load-distribution trait and
// proptest's generator trait); re-import the latter so `.prop_map` resolves.
use proptest::strategy::Strategy as _;

/// Random small topology specs (kept small so each case runs in
/// milliseconds).
fn topology_strategy() -> impl proptest::strategy::Strategy<Value = TopologySpec> {
    prop_oneof![
        (2usize..6, 2usize..6, any::<bool>()).prop_map(|(w, h, wrap)| {
            TopologySpec::Mesh2D {
                width: w.max(2),
                height: h,
                wraparound: wrap,
            }
        }),
        (2usize..4, 4usize..8).prop_map(|(span, side)| TopologySpec::DoubleLatticeMesh {
            span: span.min(side),
            width: side,
            height: side,
        }),
        (2u32..5).prop_map(|dim| TopologySpec::Hypercube { dim }),
        (3usize..10).prop_map(|n| TopologySpec::Ring { n }),
        (3usize..8).prop_map(|n| TopologySpec::Complete { n }),
        (3usize..10).prop_map(|n| TopologySpec::Star { n }),
        (3usize..8).prop_map(|n| TopologySpec::SingleBus { n }),
    ]
}

fn placement_strategy() -> impl proptest::strategy::Strategy<Value = StrategySpec> {
    prop_oneof![
        (1u32..7, 0u32..3).prop_map(|(radius, horizon)| StrategySpec::Cwn {
            radius,
            horizon: horizon.min(radius.saturating_sub(1)),
        }),
        (1u32..3, 0u32..3, 5u64..50).prop_map(|(lwm, extra, interval)| {
            StrategySpec::Gradient {
                low_water_mark: lwm,
                high_water_mark: lwm + extra,
                interval,
            }
        }),
        Just(StrategySpec::Local),
        (1u32..4).prop_map(|hops| StrategySpec::RandomWalk { hops }),
        Just(StrategySpec::RoundRobin),
        (5u64..60).prop_map(|d| StrategySpec::WorkStealing { retry_delay: d }),
        (5u64..40, 1u32..4).prop_map(|(interval, threshold)| StrategySpec::Diffusion {
            interval,
            threshold,
            max_per_cycle: 2,
        }),
        Just(StrategySpec::GlobalRandom),
        (1u32..5, 1u32..5).prop_map(|(threshold, probe_limit)| {
            StrategySpec::ThresholdProbe {
                threshold,
                probe_limit,
            }
        }),
        (1u32..6, 0u32..2, 0u32..4, any::<bool>()).prop_map(
            |(radius, horizon, saturation, redistribute)| StrategySpec::AdaptiveCwn {
                radius,
                horizon: horizon.min(radius.saturating_sub(1)),
                saturation,
                redistribute,
            }
        ),
    ]
}

fn workload_strategy() -> impl proptest::strategy::Strategy<Value = WorkloadSpec> {
    prop_oneof![
        (5i64..12).prop_map(WorkloadSpec::fib),
        (2i64..80).prop_map(WorkloadSpec::dc),
        (1i64..150, 10i64..90).prop_map(|(budget, skew)| WorkloadSpec::Lopsided {
            budget,
            skew_pct: skew,
        }),
        (1i64..150, 2u32..5, 1u64..4, any::<u64>()).prop_map(|(budget, mc, gs, seed)| {
            WorkloadSpec::RandomTree {
                budget,
                max_children: mc,
                grain_spread: gs,
                seed,
            }
        }),
        (1u32..4, 1u32..5, 1i64..12).prop_map(|(phases, width, leaves)| {
            WorkloadSpec::Cyclic {
                phases,
                width,
                leaves,
            }
        }),
        (4i64..10, 0i64..5, 0i64..3).prop_map(|(x, y, z)| WorkloadSpec::Tak { x, y, z }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any (topology, strategy, workload, seed) combination completes with
    /// the right answer and a consistent report.
    #[test]
    fn machine_invariants_hold_for_random_configs(
        topology in topology_strategy(),
        strategy in placement_strategy(),
        workload in workload_strategy(),
        seed in any::<u64>(),
    ) {
        let report = SimulationBuilder::new()
            .topology(topology)
            .strategy(strategy)
            .workload(workload)
            .seed(seed)
            .run_validated()
            .unwrap_or_else(|e| panic!("{topology} {strategy} {workload} seed {seed}: {e}"));
        report.check_invariants();
        prop_assert!(report.completion_time > 0);
        prop_assert!(report.avg_channel_utilization <= report.max_channel_utilization + 1e-12);
    }

    /// CWN hop counts never exceed the radius, and (when the radius is
    /// non-zero) no goal stays at its source.
    #[test]
    fn cwn_hop_bounds(
        radius in 1u32..8,
        horizon in 0u32..4,
        seed in any::<u64>(),
    ) {
        let horizon = horizon.min(radius);
        let report = SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(StrategySpec::Cwn { radius, horizon })
            .workload(WorkloadSpec::fib(10))
            .seed(seed)
            .run_validated()
            .unwrap();
        prop_assert!(report.hop_histogram.len() <= radius as usize + 1);
        prop_assert_eq!(report.hop_histogram[0], 0);
        for h in 1..horizon.min(radius) as usize {
            prop_assert_eq!(report.hop_histogram.get(h).copied().unwrap_or(0), 0,
                "goal stopped below the horizon");
        }
    }

    /// Topology structural invariants hold for arbitrary specs.
    #[test]
    fn topology_invariants(spec in topology_strategy()) {
        let t = spec.build();
        prop_assert_eq!(t.num_pes(), spec.num_pes());
        t.check_invariants();
        prop_assert!(t.diameter() as usize <= t.num_pes());
        prop_assert!(t.mean_distance() <= t.diameter() as f64);
    }

    /// The RNG's bounded draw is always in bounds and seeds reproduce.
    #[test]
    fn rng_bounded_and_reproducible(seed in any::<u64>(), bound in 1u64..1000) {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = a.below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.below(bound));
        }
    }

    /// OnlineStats merge is order-insensitive and matches sequential.
    #[test]
    fn online_stats_merge_associative(xs in prop::collection::vec(-1e6f64..1e6, 1..100),
                                      split in 0usize..100) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        xs[..split].iter().for_each(|&x| left.record(x));
        xs[split..].iter().for_each(|&x| right.record(x));
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1.0);
    }

    /// Histogram totals are conserved under merge.
    #[test]
    fn histogram_merge_conserves(xs in prop::collection::vec(0u64..40, 0..200),
                                 ys in prop::collection::vec(0u64..40, 0..200)) {
        let mut a = Histogram::new(32);
        let mut b = Histogram::new(32);
        xs.iter().for_each(|&x| a.record(x));
        ys.iter().for_each(|&y| b.record(y));
        let totals_before = a.total() + b.total();
        a.merge(&b);
        prop_assert_eq!(a.total(), totals_before);
        let bucket_sum: u64 = a.buckets().iter().sum::<u64>() + a.overflow();
        prop_assert_eq!(bucket_sum, a.total());
    }

    /// Soundness under faults: killing any PE at any time yields either
    /// the correct answer (the dead PE didn't matter) or an explicit error
    /// — never a silently wrong result.
    #[test]
    fn failure_injection_never_corrupts_the_answer(
        pe in 0u32..16,
        at in 0u64..2000,
        strategy in placement_strategy(),
        seed in any::<u64>(),
    ) {
        let mut cfg = SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(strategy)
            .workload(WorkloadSpec::fib(11))
            .seed(seed)
            .config();
        cfg.machine.fail_pe = Some((pe, at));
        match cfg.run() {
            Ok(report) => {
                prop_assert_eq!(report.result, 89, "wrong fib(11) after failure");
                report.check_invariants();
            }
            // The injected crash is folded into the fault plan, so losses
            // are attributed to it; a crash that strands no goals can still
            // stall (e.g. a response routed into the dead PE).
            Err(SimError::GoalsLost { expected_by_plan: true, .. }
                | SimError::Stalled { .. }
                | SimError::EventLimit { .. }) => {}
            Err(other) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("unexpected error class: {other}"),
            )),
        }
    }

    /// Any queue discipline preserves correctness and conservation.
    #[test]
    fn queue_disciplines_preserve_correctness(
        discipline in prop_oneof![
            Just(oracle::model::config::QueueDiscipline::Fifo),
            Just(oracle::model::config::QueueDiscipline::Lifo),
            Just(oracle::model::config::QueueDiscipline::DeepestFirst),
        ],
        strategy in placement_strategy(),
        workload in workload_strategy(),
        seed in any::<u64>(),
    ) {
        let mut cfg = SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(strategy)
            .workload(workload)
            .seed(seed)
            .config();
        cfg.machine.queue_discipline = discipline;
        let report = cfg.run_validated()
            .unwrap_or_else(|e| panic!("{discipline:?} {workload}: {e}"));
        report.check_invariants();
    }

    /// Heterogeneous PE speeds preserve correctness; more spread never
    /// speeds the machine up.
    #[test]
    fn heterogeneous_speeds_preserve_correctness(
        spread in 1u64..6,
        seed in any::<u64>(),
    ) {
        let mut cfg = SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(StrategySpec::Cwn { radius: 4, horizon: 1 })
            .workload(WorkloadSpec::fib(10))
            .seed(seed)
            .config();
        cfg.machine.pe_speed_spread = spread;
        let het = cfg.run_validated().unwrap();
        cfg.machine.pe_speed_spread = 1;
        let uniform = cfg.run_validated().unwrap();
        prop_assert_eq!(het.result, uniform.result);
        // Slower PEs should not make the run faster. Placement noise can
        // shave a little, so allow 10% slack rather than a strict bound.
        prop_assert!(het.completion_time * 10 >= uniform.completion_time * 9,
            "heterogeneity sped the machine up?! {} vs {}",
            het.completion_time, uniform.completion_time);
    }

    /// The calendar queue pops in exactly the binary heap's order for any
    /// schedule (including duplicates and far-future jumps).
    #[test]
    fn calendar_queue_matches_event_queue(
        delays in prop::collection::vec(0u64..5000, 1..300),
        holds in prop::collection::vec(0u64..500, 0..300),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            cal.schedule_after(d, i);
            heap.schedule_after(d, i);
        }
        for (i, &d) in holds.iter().enumerate() {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_some() {
                cal.schedule_after(d, 100_000 + i);
                heap.schedule_after(d, 100_000 + i);
            }
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// IntervalSeries conserves busy time across arbitrary span layouts.
    #[test]
    fn interval_series_conserves_busy_time(
        width in 1u64..50,
        spans in prop::collection::vec((0u64..1000, 1u64..100), 0..50),
    ) {
        let mut s = IntervalSeries::new(width);
        let mut total = 0;
        for &(start, len) in &spans {
            s.add_busy(SimTime(start), SimTime(start + len));
            total += len;
        }
        prop_assert_eq!(s.total_busy(), total);
    }

    /// Utilization fractions stay in [0, 1] through width coarsening and a
    /// checkpoint/resume round trip (`raw_parts`/`from_raw_parts`), and the
    /// resumed series is bit-identical to the uninterrupted one.
    #[test]
    fn interval_series_fractions_survive_coarsening_and_resume(
        width in 1u64..4,
        gaps in prop::collection::vec((0u64..40, 1u64..1500), 1..40),
        split in 0usize..40,
    ) {
        // Non-overlapping busy spans (like a real PE's), pushed far enough
        // to force several pairwise coarsenings of the 8192-interval cap.
        let mut spans = Vec::new();
        let mut cursor = 0u64;
        for &(gap, len) in &gaps {
            spans.push((cursor + gap, cursor + gap + len));
            cursor += gap + len;
        }
        let split = split.min(spans.len());

        let mut whole = IntervalSeries::new(width);
        for &(a, b) in &spans {
            whole.add_busy(SimTime(a), SimTime(b));
        }

        let mut first = IntervalSeries::new(width);
        for &(a, b) in &spans[..split] {
            first.add_busy(SimTime(a), SimTime(b));
        }
        let (w, busy) = first.raw_parts();
        let mut resumed = IntervalSeries::from_raw_parts(w, busy.to_vec());
        for &(a, b) in &spans[split..] {
            resumed.add_busy(SimTime(a), SimTime(b));
        }

        let horizon = SimTime(cursor.max(1));
        let a = whole.utilization_series(horizon);
        let b = resumed.utilization_series(horizon);
        prop_assert_eq!(&a, &b, "resume diverged from the uninterrupted series");
        prop_assert!(whole.raw_parts().1.len() <= IntervalSeries::MAX_INTERVALS);
        for &(_, u) in &a {
            prop_assert!((0.0..=1.0).contains(&u), "fraction {u} out of [0, 1]");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every strategy × topology, the exported traces are well-formed:
    /// the Chrome trace_event file parses, every non-metadata event carries
    /// pid/tid/ts, and timestamps are monotone per track; the JSONL export
    /// round-trips through its validator with a truthful header.
    #[test]
    fn exported_traces_are_well_formed(
        topology in topology_strategy(),
        strategy in placement_strategy(),
        keep_last in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // A small ring capacity exercises the wrapped (rotated) path.
        let (capacity, mode) = if keep_last {
            (128, TraceMode::KeepLast)
        } else {
            (50_000, TraceMode::KeepFirst)
        };
        let (report, trace) = SimulationBuilder::new()
            .topology(topology)
            .strategy(strategy)
            .workload(WorkloadSpec::fib(9))
            .seed(seed)
            .trace_capacity(capacity)
            .trace_mode(mode)
            .run_traced()
            .unwrap_or_else(|e| panic!("{topology} {strategy} seed {seed}: {e}"));

        let chrome = export_trace(&trace, &report, TraceFormat::Chrome);
        let summary = oracle::traceio::validate_chrome(&chrome)
            .unwrap_or_else(|e| panic!("{topology} {strategy}: chrome: {e}"));
        prop_assert_eq!(summary.dropped, trace.dropped());

        let jsonl = export_trace(&trace, &report, TraceFormat::Jsonl);
        let summary = oracle::traceio::validate_jsonl(&jsonl)
            .unwrap_or_else(|e| panic!("{topology} {strategy}: jsonl: {e}"));
        prop_assert_eq!(summary.events, trace.len());
        prop_assert_eq!(summary.dropped, trace.dropped());
    }
}

/// Random (valid) fault plans for a 4×4 grid: up to two crashes, a couple
/// of link windows, a few percent message loss, transient slowdowns, and
/// an optional recovery layer.
fn fault_plan_strategy() -> impl proptest::strategy::Strategy<Value = oracle::model::FaultPlan> {
    use oracle::model::{FaultPlan, LinkWindow, PeCrash, RecoveryParams, Slowdown};
    let crashes = prop::collection::vec(
        (0u32..16, 1u64..1500).prop_map(|(pe, at)| PeCrash { pe, at }),
        0..3,
    );
    // mesh2d(4, 4, false) has 24 channels.
    let links = prop::collection::vec(
        (0u32..24, 1u64..800, 1u64..800).prop_map(|(channel, a, b)| LinkWindow {
            channel,
            down_at: a.min(b),
            up_at: a.max(b) + 1,
        }),
        0..3,
    );
    let slows = prop::collection::vec(
        (0u32..16, 1u64..800, 1u64..400, 2u64..6).prop_map(|(pe, from, len, factor)| Slowdown {
            pe,
            from,
            until: from + len,
            factor,
        }),
        0..2,
    );
    (
        crashes,
        links,
        0u32..3,
        slows,
        any::<bool>(),
        (400u64..3000, 1u32..5),
    )
        .prop_map(
            |(
                pe_crashes,
                link_windows,
                loss_pct,
                slowdowns,
                recover,
                (ack_timeout, max_retries),
            )| {
                // Plan validation rejects a PE crashed twice and
                // overlapping windows on one channel; keep the first
                // occurrence per PE/channel so every generated plan loads.
                let mut seen_pes = std::collections::HashSet::new();
                let pe_crashes: Vec<PeCrash> = pe_crashes
                    .into_iter()
                    .filter(|c| seen_pes.insert(c.pe))
                    .collect();
                let mut seen_channels = std::collections::HashSet::new();
                let link_windows: Vec<LinkWindow> = link_windows
                    .into_iter()
                    .filter(|w| seen_channels.insert(w.channel))
                    .collect();
                FaultPlan {
                    pe_crashes,
                    link_windows,
                    message_loss: loss_pct as f64 / 100.0,
                    slowdowns,
                    recovery: if recover {
                        Some(RecoveryParams {
                            ack_timeout,
                            max_retries,
                        })
                    } else {
                        None
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness under arbitrary fault plans: every run either completes
    /// with the correct answer or fails with a fault-attributed (or
    /// watchdog) error — never a silently wrong result, never a hang.
    #[test]
    fn fault_plans_never_corrupt_the_answer(
        plan in fault_plan_strategy(),
        strategy in placement_strategy(),
        seed in any::<u64>(),
    ) {
        let report = SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(strategy)
            .workload(WorkloadSpec::fib(10))
            .seed(seed)
            .fault_plan(plan.clone())
            .run_validated();
        match report {
            Ok(r) => {
                prop_assert_eq!(r.result, 55, "wrong fib(10) under plan {}", plan);
                r.check_invariants();
            }
            Err(SimError::GoalsLost { expected_by_plan: true, .. }
                | SimError::Stalled { .. }
                | SimError::EventLimit { .. }
                | SimError::Stagnation { .. }) => {}
            Err(other) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("unexpected error class under plan {plan}: {other}"),
            )),
        }
    }
}
