//! Open-system traffic: determinism, backend equivalence, and the
//! saturation trip wire.
//!
//! Open-arrival runs draw from a dedicated arrival RNG stream and keep
//! per-request state, so they earn their own determinism contract: the
//! same (config, seed) must reproduce byte-for-byte across thread counts
//! and across event-queue backends, and an offered load the machine cannot
//! carry must end in a clean `Saturated` outcome rather than running
//! forever.

use oracle::prelude::*;
use oracle::runner::{run_batch_with_threads, RunSpec};
use oracle_model::QueueBackend;
use proptest::prelude::*;
// Both preludes export a `Strategy` name (the load-distribution trait and
// proptest's generator trait); re-import the latter so `.prop_map` resolves.
use proptest::strategy::Strategy as _;

/// Small topologies so each case runs in milliseconds.
fn topology_strategy() -> impl proptest::strategy::Strategy<Value = TopologySpec> {
    prop_oneof![
        (2usize..5, 2usize..5).prop_map(|(w, h)| TopologySpec::Mesh2D {
            width: w,
            height: h,
            wraparound: false,
        }),
        (3usize..8).prop_map(|n| TopologySpec::Ring { n }),
        (2u32..4).prop_map(|dim| TopologySpec::Hypercube { dim }),
    ]
}

fn placement_strategy() -> impl proptest::strategy::Strategy<Value = StrategySpec> {
    prop_oneof![
        (1u32..5, 0u32..2).prop_map(|(radius, horizon)| StrategySpec::Cwn { radius, horizon }),
        (1u32..3, 2u32..4, 10u64..40).prop_map(|(lo, hi, interval)| StrategySpec::Gradient {
            low_water_mark: lo,
            high_water_mark: hi,
            interval,
        }),
        Just(StrategySpec::Local),
    ]
}

/// Random arrival specs covering every process family except `trace:`
/// (which needs a file on disk; covered by the unit tests below).
fn arrival_strategy() -> impl proptest::strategy::Strategy<Value = ArrivalSpec> {
    prop_oneof![
        (1u32..12).prop_map(|r| format!("poisson:{r}")),
        (2u32..12, 1u32..3, 50u32..200, 100u32..400)
            .prop_map(|(hi, lo, on, off)| format!("burst:{hi}x{lo}x{on}x{off}")),
        (2u32..10, 300u32..900).prop_map(|(peak, period)| format!("diurnal:{peak}x{period}")),
    ]
    .prop_map(|s: String| s.parse().expect("generated specs are valid"))
}

fn open_config(
    topology: TopologySpec,
    strategy: StrategySpec,
    arrivals: ArrivalSpec,
    seed: u64,
    backend: QueueBackend,
) -> oracle::builder::RunConfig {
    let mut open = OpenTraffic::new(arrivals, 1_500);
    open.warmup = 150;
    SimulationBuilder::new()
        .topology(topology)
        .strategy(strategy)
        .workload(WorkloadSpec::fib(7))
        .seed(seed)
        .queue_backend(backend)
        .open(Some(open))
        .config()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full report of an open run is a pure function of (config, seed):
    /// running the same batch on 1 and 4 worker threads must agree on every
    /// byte, open metrics included.
    #[test]
    fn open_runs_are_deterministic_across_thread_counts(
        topology in topology_strategy(),
        strategy in placement_strategy(),
        arrivals in arrival_strategy(),
        seed in 0u64..1000,
    ) {
        let spec = RunSpec::new(
            "open",
            open_config(topology, strategy, arrivals, seed, QueueBackend::Heap),
        );
        let specs = vec![spec];
        let seq = run_batch_with_threads(&specs, 1);
        let par = run_batch_with_threads(&specs, 4);
        for ((la, a), (lb, b)) in seq.iter().zip(&par) {
            prop_assert_eq!(la, lb);
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            prop_assert!(a.open.is_some(), "open metrics missing");
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    /// The heap and calendar event queues order identically, so the backend
    /// must be invisible in the results of an open run.
    #[test]
    fn open_runs_agree_across_queue_backends(
        topology in topology_strategy(),
        strategy in placement_strategy(),
        arrivals in arrival_strategy(),
        seed in 0u64..1000,
    ) {
        let heap = open_config(topology, strategy, arrivals.clone(), seed, QueueBackend::Heap)
            .run_validated();
        let cal = open_config(topology, strategy, arrivals, seed, QueueBackend::Calendar)
            .run_validated();
        prop_assert_eq!(format!("{heap:?}"), format!("{cal:?}"));
    }
}

/// A deliberately overloaded cell: a lone ring of 4 slow PEs offered far
/// more work than it can retire must trip the backlog wire and end the run
/// with a truthful `Saturated` outcome — not an endless event loop.
#[test]
fn saturation_trip_wire_fires_on_overload() {
    let mut open = OpenTraffic::new("poisson:400".parse().unwrap(), 1_000_000);
    open.warmup = 100;
    open.saturation_inflight = 64; // trip early; the default scales with PEs
    let report = SimulationBuilder::new()
        .topology(TopologySpec::Ring { n: 4 })
        .strategy(StrategySpec::Local)
        .workload(WorkloadSpec::fib(10))
        .seed(3)
        .open(Some(open))
        .run_validated()
        .expect("a saturated run is a clean outcome, not an error");
    let o = report.open.expect("open metrics present");
    match o.outcome {
        OpenOutcome::Saturated { at, inflight } => {
            assert!(at < 1_000_000, "tripped before the horizon: {at}");
            assert!(inflight >= 64, "{inflight} in flight at the trip");
        }
        other => panic!("overloaded cell did not trip the wire: {other:?} ({o:?})"),
    }
    assert!(o.arrivals > o.completions, "backlog must have grown");
}

/// Full overload-protection stack — deadline, retry, admission, breaker —
/// under a crash-and-loss fault plan: the report must still be a pure
/// function of (config, seed) across queue backends and thread counts, and
/// the arrival-conservation invariant must hold (checked by
/// `run_validated`).
#[test]
fn overload_protection_is_deterministic_across_backends_and_threads() {
    let config = |backend| {
        let mut open = OpenTraffic::new("poisson:30".parse().unwrap(), 3_000);
        open.warmup = 200;
        open.deadline = Some(500);
        open.retry = Some("3x60".parse().unwrap());
        open.admission = Some("queue:6".parse().unwrap());
        open.breaker = Some(400);
        SimulationBuilder::new()
            .topology(TopologySpec::grid(3))
            .strategy(StrategySpec::Cwn {
                radius: 3,
                horizon: 1,
            })
            .workload(WorkloadSpec::fib(7))
            .seed(17)
            .queue_backend(backend)
            .fault_plan("crash:4@700+loss:2%".parse().unwrap())
            .open(Some(open))
            .config()
    };
    let heap = config(QueueBackend::Heap).run_validated();
    let cal = config(QueueBackend::Calendar).run_validated();
    assert_eq!(format!("{heap:?}"), format!("{cal:?}"));

    let specs = vec![RunSpec::new("overload", config(QueueBackend::Heap))];
    let seq = run_batch_with_threads(&specs, 1);
    let par = run_batch_with_threads(&specs, 4);
    for ((la, a), (lb, b)) in seq.iter().zip(&par) {
        assert_eq!(la, lb);
        assert_eq!(
            format!("{:?}", a.as_ref().unwrap()),
            format!("{:?}", b.as_ref().unwrap())
        );
    }

    let report = heap.expect("protected run succeeds");
    let o = report.open.expect("open metrics present");
    assert_eq!(
        o.arrivals,
        o.completions + o.shed + o.abandoned_deadline + o.abandoned_retries + o.inflight_at_end,
        "arrival conservation: {o:?}"
    );
}

/// Admission control actually sheds under overload, and sheds are counted:
/// a tight token bucket in front of a hopeless offered load keeps the
/// in-flight population bounded (no saturation trip) while the shed
/// counter absorbs the rest.
#[test]
fn token_bucket_sheds_instead_of_melting_down() {
    let mut open = OpenTraffic::new("poisson:400".parse().unwrap(), 20_000);
    open.warmup = 100;
    open.saturation_inflight = 64;
    open.admission = Some("bucket:1x2".parse().unwrap());
    open.deadline = Some(8_000);
    let report = SimulationBuilder::new()
        .topology(TopologySpec::Ring { n: 4 })
        .strategy(StrategySpec::Local)
        .workload(WorkloadSpec::fib(10))
        .seed(3)
        .open(Some(open))
        .run_validated()
        .expect("a shedding run is a clean outcome");
    let o = report.open.expect("open metrics present");
    assert!(
        !matches!(o.outcome, OpenOutcome::Saturated { .. }),
        "bucket failed to protect the trip wire: {:?}",
        o.outcome
    );
    assert!(o.shed > 0, "nothing shed at 80x the bucket rate: {o:?}");
    assert!(o.shed_rate > 0.9, "shed rate {} too low", o.shed_rate);
    assert!(o.goodput <= o.throughput, "{o:?}");
}

/// Same seed, same report — for every arrival family, including a replayed
/// trace file.
#[test]
fn every_arrival_family_reproduces_under_fixed_seed() {
    let dir = std::env::temp_dir();
    let trace_path = dir.join(format!(
        "oracle_open_system_trace_{}.txt",
        std::process::id()
    ));
    std::fs::write(
        &trace_path,
        "oracle-arrivals-v1\n# replay fixture\n10\n40 1\n90\n130 2\n200\n",
    )
    .unwrap();
    let specs = [
        "poisson:6".to_string(),
        "burst:10x1x100x300@root".to_string(),
        "diurnal:8x500@0,2".to_string(),
        format!("trace:{}", trace_path.display()),
    ];
    for spec in &specs {
        let arrivals: ArrivalSpec = spec.parse().unwrap();
        let run = || {
            open_config(
                TopologySpec::grid(3),
                StrategySpec::Cwn {
                    radius: 3,
                    horizon: 1,
                },
                arrivals.clone(),
                11,
                QueueBackend::Heap,
            )
            .run_validated()
        };
        let (a, b) = (run(), run());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{spec}");
        let report = a.expect("run succeeds");
        assert!(report.open.is_some(), "{spec}: open metrics missing");
    }
    std::fs::remove_file(&trace_path).ok();
}
