//! Golden-report guard for the hot-path optimizations.
//!
//! Every performance change to the event loop must leave simulated results
//! bit-identical. These tests pin the full `Debug` rendering of `Report`
//! (completion times, utilizations — including the float series — hop
//! histograms, traffic and fault counters) for a spread of configurations
//! that together exercise every optimized path: piggyback snooping,
//! broadcast fan-out, fault detours, the recovery sweep, and per-PE series
//! collection.
//!
//! The goldens under `tests/golden/` were generated on the pre-optimization
//! code. Regenerate (only when an *intentional* behaviour change lands)
//! with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --release --test golden_report
//! ```

use std::path::PathBuf;

use oracle::prelude::*;
use oracle_model::{FaultPlan, RecoveryParams};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn check(name: &str, mut config: oracle::builder::RunConfig) {
    // The invariant auditor is pure observation: running every golden with
    // it enabled both proves these configurations audit clean and pins the
    // guarantee that auditing never perturbs simulated results.
    config.machine.audit_every = 50;
    // Goldens pin the full per-PE vectors too (opt-in since the streaming
    // aggregates became the default report shape).
    config.machine.per_pe_metrics = true;
    let report = config.run().expect(name);
    let rendered = format!("{report:#?}\n");
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert!(
        rendered == golden,
        "{name}: Report diverged from golden {} — the optimization changed \
         simulated results. If the change is intentional, regenerate with \
         UPDATE_GOLDEN=1.",
        path.display()
    );
}

#[test]
fn golden_cwn_grid_fib15_with_series() {
    check(
        "cwn_grid_fib15_series",
        SimulationBuilder::new()
            .topology(TopologySpec::grid(10))
            .strategy(StrategySpec::cwn_paper(true))
            .workload(WorkloadSpec::fib(15))
            .per_pe_series(true)
            .seed(1)
            .config(),
    );
}

#[test]
fn golden_cwn_dlm_fib15() {
    check(
        "cwn_dlm_fib15",
        SimulationBuilder::new()
            .topology(TopologySpec::dlm(10))
            .strategy(StrategySpec::cwn_paper(false))
            .workload(WorkloadSpec::fib(15))
            .seed(2)
            .config(),
    );
}

#[test]
fn golden_gm_grid_dc987() {
    check(
        "gm_grid_dc987",
        SimulationBuilder::new()
            .topology(TopologySpec::grid(5))
            .strategy(StrategySpec::gradient_paper(true))
            .workload(WorkloadSpec::dc(987))
            .seed(3)
            .config(),
    );
}

#[test]
fn golden_cwn_grid_fib12_faults_recovery() {
    // Crash + link window + slowdown + loss + recovery: covers the fault
    // detour routing, the crash sweep, respawns, and ack timers.
    let plan = FaultPlan::none()
        .crash(7, 400)
        .link_down(3, 200, 900)
        .slow(2, 100, 600, 3)
        .with_loss(0.02)
        .with_recovery(RecoveryParams::default());
    check(
        "cwn_grid_fib12_faults",
        SimulationBuilder::new()
            .topology(TopologySpec::grid(5))
            .strategy(StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            })
            .workload(WorkloadSpec::fib(12))
            .fault_plan(plan)
            .seed(4)
            .config(),
    );
}

#[test]
fn golden_workstealing_softwarerouting_fib12() {
    // No co-processor (software routing) + a stealing strategy: covers the
    // control-message broadcast path and the non-coprocessor arrival costs.
    let mut machine = oracle_model::MachineConfig::default().with_seed(5);
    machine.coprocessor = false;
    check(
        "ws_grid_fib12_softroute",
        SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(StrategySpec::WorkStealing { retry_delay: 40 })
            .workload(WorkloadSpec::fib(12))
            .machine(machine)
            .config(),
    );
}
