//! Robustness guarantees, end to end: checkpoint → resume is bit-identical
//! for every strategy on both queue backends — including under active
//! fault plans with the invariant auditor watching — and chaos sweeps are
//! deterministic across thread counts.

use std::path::PathBuf;

use oracle::checkpoint::{resume_run, run_with_checkpoints, write_checkpoint, Checkpoint};
use oracle::prelude::*;
use oracle_model::{FaultPlan, QueueBackend, RecoveryParams};

use proptest::prelude::*;

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("oracle-robustness-{tag}-{}", std::process::id()))
}

fn base_config(
    strategy: StrategySpec,
    backend: QueueBackend,
    seed: u64,
) -> oracle::builder::RunConfig {
    let mut machine = MachineConfig::default().with_seed(seed);
    machine.queue_backend = backend;
    machine.audit_every = 64;
    SimulationBuilder::new()
        .topology(TopologySpec::grid(4))
        .strategy(strategy)
        .workload(WorkloadSpec::fib(12))
        .machine(machine)
        .config()
}

/// The outcome of a run as a comparable string: a report's full `Debug`
/// rendering, or the error's (fault plans may legitimately end a run in
/// `GoalsLost` — resume must reproduce even that, bit for bit).
fn outcome(config: &oracle::builder::RunConfig) -> String {
    match config.run() {
        Ok(report) => format!("{report:?}"),
        Err(e) => format!("Err({e:?})"),
    }
}

/// Checkpoint `config` every `every` sim-time units into a scratch dir,
/// then require the checkpointed run and the resume of *every* checkpoint
/// to match the uninterrupted run exactly.
fn assert_checkpoint_equivalence(config: &oracle::builder::RunConfig, every: u64, tag: &str) {
    let expected = outcome(config);
    let dir = scratch_dir(tag);
    match run_with_checkpoints(config, every, &dir) {
        Ok(out) => {
            assert_eq!(
                format!("{:?}", out.report),
                expected,
                "{tag}: checkpointed run diverged from plain run"
            );
            assert!(!out.checkpoints.is_empty(), "{tag}: no checkpoints written");
            for path in &out.checkpoints {
                let (resumed_config, report) =
                    resume_run(path).unwrap_or_else(|e| panic!("{tag}: resume {path:?}: {e}"));
                assert_eq!(&resumed_config, config, "{tag}: config did not round-trip");
                assert_eq!(
                    format!("{report:?}"),
                    expected,
                    "{tag}: resume from {path:?} diverged"
                );
            }
        }
        Err(e) => {
            // The run failed (legitimately, under a fault plan) — every
            // checkpoint written before the failure must still resume to
            // the identical failure.
            let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
                .map(|rd| rd.map(|e| e.unwrap().path()).collect())
                .unwrap_or_default();
            paths.sort();
            assert_eq!(
                format!("Err({:?})", unwrap_sim(e)),
                expected,
                "{tag}: checkpointed run failed differently from plain run"
            );
            for path in &paths {
                let checkpoint = Checkpoint::read(path).expect("readable checkpoint");
                let machine = checkpoint.resume().expect("resumable checkpoint");
                let result = machine.run();
                assert_eq!(
                    format!("Err({:?})", result.expect_err("plain run also failed")),
                    expected,
                    "{tag}: resume from {path:?} failed differently"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn unwrap_sim(e: oracle::checkpoint::CheckpointError) -> SimError {
    match e {
        oracle::checkpoint::CheckpointError::Sim(e) => e,
        other => panic!("expected a simulation error, got {other}"),
    }
}

#[test]
fn every_strategy_resumes_identically_on_both_backends() {
    let strategies = [
        StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        },
        StrategySpec::Gradient {
            low_water_mark: 1,
            high_water_mark: 2,
            interval: 20,
        },
        StrategySpec::AdaptiveCwn {
            radius: 4,
            horizon: 1,
            saturation: 3,
            redistribute: true,
        },
        StrategySpec::WorkStealing { retry_delay: 25 },
        StrategySpec::ThresholdProbe {
            threshold: 2,
            probe_limit: 3,
        },
        StrategySpec::Diffusion {
            interval: 20,
            threshold: 2,
            max_per_cycle: 2,
        },
        StrategySpec::GlobalRandom,
        StrategySpec::RoundRobin,
        StrategySpec::RandomWalk { hops: 3 },
        StrategySpec::Local,
    ];
    for strategy in strategies {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let config = base_config(strategy, backend, 17);
            let tag = format!("{strategy}-{backend:?}").replace([':', 'x'], "_");
            assert_checkpoint_equivalence(&config, 350, &tag);
        }
    }
}

#[test]
fn resume_is_identical_under_active_fault_plans() {
    let plan = FaultPlan::none()
        .crash(5, 600)
        .link_down(3, 200, 700)
        .with_loss(0.01)
        .with_recovery(RecoveryParams::default());
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        let mut config = base_config(
            StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            },
            backend,
            29,
        );
        config.machine.fault_plan = plan.clone();
        assert_checkpoint_equivalence(&config, 400, &format!("faults-{backend:?}"));
    }
}

#[test]
fn checkpoint_files_survive_process_style_reload() {
    // Write a checkpoint, forget everything, and reconstruct purely from
    // the file — the embedded config must carry all run parameters.
    let config = base_config(
        StrategySpec::WorkStealing { retry_delay: 25 },
        QueueBackend::Calendar,
        31,
    );
    let expected = outcome(&config);
    let mut machine = config.machine().unwrap();
    machine.begin();
    machine.advance_until(Some(500)).unwrap();
    let dir = scratch_dir("reload");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid.oracle");
    write_checkpoint(&path, &config, &mut machine).unwrap();
    drop(machine);
    drop(config);

    let (config, report) = resume_run(&path).expect("cold resume");
    assert_eq!(config.machine.seed, 31);
    assert_eq!(format!("{report:?}"), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpointing at a *random* cadence never changes the final report,
    /// on either backend, for a strategy with nontrivial private state.
    #[test]
    fn random_checkpoint_cadences_resume_identically(
        every in 37u64..900,
        seed in 1u64..500,
        calendar in any::<bool>(),
    ) {
        let backend = if calendar { QueueBackend::Calendar } else { QueueBackend::Heap };
        let config = base_config(
            StrategySpec::ThresholdProbe { threshold: 2, probe_limit: 3 },
            backend,
            seed,
        );
        let expected = outcome(&config);
        let dir = scratch_dir(&format!("prop-{every}-{seed}-{calendar}"));
        let out = run_with_checkpoints(&config, every, &dir)
            .expect("fault-free run completes");
        prop_assert_eq!(&format!("{:?}", out.report), &expected);
        for path in &out.checkpoints {
            let (_, report) = resume_run(path).expect("resume");
            prop_assert_eq!(&format!("{report:?}"), &expected, "resume from {:?}", path);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn chaos_sweeps_are_deterministic_and_contained() {
    use oracle::chaos::{run_chaos, ChaosConfig};
    let config = ChaosConfig {
        cases: 8,
        seed: 13,
        threads: 2,
        ..ChaosConfig::default()
    };
    let b = run_chaos(&ChaosConfig {
        threads: 4,
        ..config
    });
    let a = run_chaos(&config);
    let lines = |r: &oracle::chaos::ChaosReport| {
        r.outcomes
            .iter()
            .map(|(c, o)| format!("{} -> {}", c.suite_line(), o.kind()))
            .collect::<Vec<_>>()
    };
    assert_eq!(lines(&a), lines(&b), "thread count changed chaos outcomes");
    assert!(
        a.failures.is_empty(),
        "chaos sweep found failures: {:?}",
        a.failures
            .iter()
            .map(|f| f.reproducer())
            .collect::<Vec<_>>()
    );
}
