//! Allocation-regression guard for the steady-state event loop.
//!
//! The hot path (PR 2) is supposed to be allocation-free per event: packets
//! are `Copy`, fan-out goes through inline vectors, neighbor/channel tables
//! are precomputed, and the metrics series are bounded. This test pins that
//! property with a counting global allocator.
//!
//! Measuring "zero allocations per event" directly is impossible — machine
//! construction, the `Report`, and amortized container growth all allocate
//! a workload-independent (or logarithmic) amount. So the test differences
//! two runs of the same configuration at different workload sizes: the
//! construction cost cancels, and what remains is the marginal allocation
//! cost of the extra events.
//!
//! Tolerance: the steady state is not literally zero because growable
//! containers (PE queues, the timing wheel's slot deques, waiting-task maps)
//! double geometrically as the working set first expands, contributing
//! O(log n) reallocations, and the bounded metrics series coarsen a few
//! times per run. Amortized over the tens of thousands of extra events this
//! is well under one allocation per hundred events; the assertion allows
//! `MAX_ALLOCS_PER_EVENT = 0.02` to keep the guard sharp without being
//! flaky. (The pre-optimization hot path allocated 3–5 times *per event*:
//! a 150–250× margin.)
//!
//! This file deliberately contains a single `#[test]`: the counter is a
//! process global, and a sibling test running on another thread would
//! pollute the window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use oracle::prelude::*;

/// Wraps the system allocator, counting every allocation (and counting
/// `realloc` as one, since growth is exactly what we are guarding against).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const MAX_ALLOCS_PER_EVENT: f64 = 0.02;

fn measured_run(n: i64) -> (u64, u64) {
    let config = SimulationBuilder::new()
        .topology(TopologySpec::grid(10))
        .strategy(StrategySpec::cwn_paper(true))
        .workload(WorkloadSpec::fib(n))
        .seed(1)
        .config();
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = config.run().expect("run");
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    (allocs, report.events)
}

#[test]
fn steady_state_event_loop_is_allocation_free() {
    // Warm-up run: lazy statics, thread-local buffers, the first geometric
    // growth of every container — none of that is steady state.
    let _ = measured_run(14);

    let (small_allocs, small_events) = measured_run(14);
    let (large_allocs, large_events) = measured_run(18);
    assert!(
        large_events > small_events + 50_000,
        "workload sizes too close to difference: {small_events} vs {large_events}"
    );

    // Identical topology and config: construction, Report assembly, and the
    // bounded metrics series cost the same in both runs, so the difference
    // is the marginal allocation cost of the extra events alone.
    let extra_allocs = large_allocs.saturating_sub(small_allocs) as f64;
    let extra_events = (large_events - small_events) as f64;
    let per_event = extra_allocs / extra_events;
    eprintln!(
        "alloc regression: {extra_allocs} extra allocations over {extra_events} \
         extra events = {per_event:.5} allocs/event (limit {MAX_ALLOCS_PER_EVENT})"
    );
    assert!(
        per_event < MAX_ALLOCS_PER_EVENT,
        "steady-state event loop allocates: {per_event:.5} allocations per \
         event (limit {MAX_ALLOCS_PER_EVENT}) — a hot-path allocation crept \
         back in"
    );
}
