//! Error paths: the simulator must fail loudly and informatively, never
//! hang or silently produce a wrong answer.

use oracle::model::{Core, Expansion, GoalMsg, LoadInfoMode};
use oracle::model::{CostModel, Machine, MachineConfig, Program, SimError, Strategy, TaskSpec};
use oracle::prelude::*;
use oracle::topo::PeId;

struct Fib(i64);

impl Program for Fib {
    fn name(&self) -> String {
        format!("fib({})", self.0)
    }
    fn root(&self) -> TaskSpec {
        TaskSpec::new(self.0, 0)
    }
    fn expand(&self, spec: &TaskSpec) -> Expansion {
        if spec.a < 2 {
            Expansion::Leaf(spec.a)
        } else {
            Expansion::Split([spec.child(spec.a - 1, 0), spec.child(spec.a - 2, 0)].into())
        }
    }
    fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
        acc + child
    }
}

/// A buggy strategy that silently drops every fifth goal.
struct Leaky {
    count: u64,
}

impl Strategy for Leaky {
    fn name(&self) -> &'static str {
        "leaky"
    }
    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        self.count += 1;
        if !self.count.is_multiple_of(5) {
            core.accept_goal(pe, goal);
        }
    }
    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        core.accept_goal(pe, goal);
    }
}

fn machine_with(strategy: Box<dyn Strategy>, cfg: MachineConfig) -> Machine {
    Machine::new(
        TopologySpec::grid(4).build(),
        Box::new(Fib(10)),
        strategy,
        CostModel::paper_default(),
        cfg,
    )
    .unwrap()
}

#[test]
fn dropped_goals_are_reported_as_a_stall() {
    let cfg = MachineConfig {
        load_info: LoadInfoMode::Instant, // no periodic events to keep the clock alive
        ..MachineConfig::default()
    };
    let err = machine_with(Box::new(Leaky { count: 0 }), cfg)
        .run()
        .unwrap_err();
    match err {
        SimError::Stalled {
            goals_created,
            goals_executed,
            ..
        } => assert!(goals_executed < goals_created),
        other => panic!("expected a stall, got {other}"),
    }
}

/// A strategy that endlessly reschedules timers without making progress
/// must trip the progress watchdog rather than spin forever.
struct Spinner;

impl Strategy for Spinner {
    fn name(&self) -> &'static str {
        "spinner"
    }
    fn init(&mut self, core: &mut Core) {
        core.set_timer(PeId(0), 1, 0);
    }
    fn on_goal_created(&mut self, _: &mut Core, _: PeId, _: GoalMsg) {
        // Dropped: the only event source left is the timer below.
    }
    fn on_goal_message(&mut self, _: &mut Core, _: PeId, _: GoalMsg) {}
    fn on_timer(&mut self, core: &mut Core, pe: PeId, _tag: u64) {
        core.set_timer(pe, 1, 0);
    }
}

#[test]
fn watchdog_catches_event_churn_without_progress() {
    let cfg = MachineConfig {
        load_info: LoadInfoMode::Instant,
        ..MachineConfig::default()
    };
    let err = machine_with(Box::new(Spinner), cfg).run().unwrap_err();
    assert!(
        matches!(err, SimError::Stalled { .. } | SimError::EventLimit { .. }),
        "expected stall/limit, got {err}"
    );
}

#[test]
fn event_limit_is_enforced() {
    let cfg = MachineConfig {
        max_events: 50,
        ..MachineConfig::default()
    };
    let err = SimulationBuilder::new()
        .topology(TopologySpec::grid(5))
        .workload(WorkloadSpec::fib(15))
        .machine(cfg)
        .run()
        .unwrap_err();
    assert!(matches!(err, SimError::EventLimit { events, .. } if events >= 50));
}

#[test]
fn invalid_configurations_are_rejected_up_front() {
    // Root PE out of range.
    let cfg = MachineConfig {
        root_pe: 1000,
        ..MachineConfig::default()
    };
    let err = SimulationBuilder::new().machine(cfg).run().unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");

    // Zero-cost operations.
    let mut costs = CostModel::paper_default();
    costs.split_cost = 0;
    let err = SimulationBuilder::new().costs(costs).run().unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");

    // Zero sampling interval.
    let cfg = MachineConfig {
        sampling_interval: 0,
        ..MachineConfig::default()
    };
    let err = SimulationBuilder::new().machine(cfg).run().unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
}

#[test]
fn oversubscribed_bus_reports_stagnation() {
    // A 64-member single bus cannot carry 64 load broadcasts per period:
    // the backlog grows without bound and the watchdog must name the cause.
    let err = SimulationBuilder::new()
        .topology(TopologySpec::SingleBus { n: 64 })
        .strategy(StrategySpec::Cwn {
            radius: 5,
            horizon: 1,
        })
        .workload(WorkloadSpec::fib(15))
        .run()
        .unwrap_err();
    match err {
        SimError::Stagnation { backlog, .. } => assert!(backlog > 100),
        other => panic!("expected stagnation, got {other}"),
    }
}

#[test]
fn killing_a_loaded_pe_is_detected_as_a_stall() {
    // Kill PE 0 (the root's home, holding waiting tasks) mid-run with no
    // recovery layer: the lost work must surface as a fault-attributed
    // failure (the crash was planned), never as a wrong answer.
    let cfg = MachineConfig {
        fail_pe: Some((0, 200)),
        load_info: LoadInfoMode::Instant,
        ..MachineConfig::default()
    };
    let err = SimulationBuilder::new()
        .topology(TopologySpec::grid(4))
        .strategy(StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        })
        .workload(WorkloadSpec::fib(13))
        .machine(cfg)
        .run()
        .unwrap_err();
    match err {
        SimError::GoalsLost {
            expected_by_plan,
            goals_lost,
            ..
        } => {
            assert!(expected_by_plan, "the crash was injected by the plan");
            assert!(goals_lost > 0, "the dead PE held work");
        }
        other => panic!("expected fault-attributed goal loss, got {other}"),
    }
}

#[test]
fn killing_an_idle_pe_is_harmless() {
    // Keep-local leaves PE 15 idle forever; killing it must not affect the
    // result.
    let cfg = MachineConfig {
        fail_pe: Some((15, 100)),
        ..MachineConfig::default()
    };
    let r = SimulationBuilder::new()
        .topology(TopologySpec::grid(4))
        .strategy(StrategySpec::Local)
        .workload(WorkloadSpec::fib(12))
        .machine(cfg)
        .run_validated()
        .expect("losing an unused PE must not matter");
    assert_eq!(r.result, 144);
}

#[test]
fn error_messages_are_informative() {
    let cfg = MachineConfig {
        root_pe: 1000,
        ..MachineConfig::default()
    };
    let err = SimulationBuilder::new().machine(cfg).run().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("1000"),
        "message should name the bad value: {msg}"
    );
}
