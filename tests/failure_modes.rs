//! Error paths: the simulator must fail loudly and informatively, never
//! hang or silently produce a wrong answer.

use oracle::model::{Core, Expansion, GoalMsg, LoadInfoMode};
use oracle::model::{CostModel, Machine, MachineConfig, Program, SimError, Strategy, TaskSpec};
use oracle::prelude::*;
use oracle::topo::PeId;

struct Fib(i64);

impl Program for Fib {
    fn name(&self) -> String {
        format!("fib({})", self.0)
    }
    fn root(&self) -> TaskSpec {
        TaskSpec::new(self.0, 0)
    }
    fn expand(&self, spec: &TaskSpec) -> Expansion {
        if spec.a < 2 {
            Expansion::Leaf(spec.a)
        } else {
            Expansion::Split(vec![spec.child(spec.a - 1, 0), spec.child(spec.a - 2, 0)])
        }
    }
    fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
        acc + child
    }
}

/// A buggy strategy that silently drops every fifth goal.
struct Leaky {
    count: u64,
}

impl Strategy for Leaky {
    fn name(&self) -> &'static str {
        "leaky"
    }
    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        self.count += 1;
        if self.count % 5 != 0 {
            core.accept_goal(pe, goal);
        }
    }
    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        core.accept_goal(pe, goal);
    }
}

fn machine_with(strategy: Box<dyn Strategy>, cfg: MachineConfig) -> Machine {
    Machine::new(
        TopologySpec::grid(4).build(),
        Box::new(Fib(10)),
        strategy,
        CostModel::paper_default(),
        cfg,
    )
    .unwrap()
}

#[test]
fn dropped_goals_are_reported_as_a_stall() {
    let mut cfg = MachineConfig::default();
    cfg.load_info = LoadInfoMode::Instant; // no periodic events to keep the clock alive
    let err = machine_with(Box::new(Leaky { count: 0 }), cfg)
        .run()
        .unwrap_err();
    match err {
        SimError::Stalled {
            goals_created,
            goals_executed,
            ..
        } => assert!(goals_executed < goals_created),
        other => panic!("expected a stall, got {other}"),
    }
}

/// A strategy that endlessly reschedules timers without making progress
/// must trip the progress watchdog rather than spin forever.
struct Spinner;

impl Strategy for Spinner {
    fn name(&self) -> &'static str {
        "spinner"
    }
    fn init(&mut self, core: &mut Core) {
        core.set_timer(PeId(0), 1, 0);
    }
    fn on_goal_created(&mut self, _: &mut Core, _: PeId, _: GoalMsg) {
        // Dropped: the only event source left is the timer below.
    }
    fn on_goal_message(&mut self, _: &mut Core, _: PeId, _: GoalMsg) {}
    fn on_timer(&mut self, core: &mut Core, pe: PeId, _tag: u64) {
        core.set_timer(pe, 1, 0);
    }
}

#[test]
fn watchdog_catches_event_churn_without_progress() {
    let mut cfg = MachineConfig::default();
    cfg.load_info = LoadInfoMode::Instant;
    let err = machine_with(Box::new(Spinner), cfg).run().unwrap_err();
    assert!(
        matches!(err, SimError::Stalled { .. } | SimError::EventLimit { .. }),
        "expected stall/limit, got {err}"
    );
}

#[test]
fn event_limit_is_enforced() {
    let mut cfg = MachineConfig::default();
    cfg.max_events = 50;
    let err = SimulationBuilder::new()
        .topology(TopologySpec::grid(5))
        .workload(WorkloadSpec::fib(15))
        .machine(cfg)
        .run()
        .unwrap_err();
    assert!(matches!(err, SimError::EventLimit { events, .. } if events >= 50));
}

#[test]
fn invalid_configurations_are_rejected_up_front() {
    // Root PE out of range.
    let mut cfg = MachineConfig::default();
    cfg.root_pe = 1000;
    let err = SimulationBuilder::new().machine(cfg).run().unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");

    // Zero-cost operations.
    let mut costs = CostModel::paper_default();
    costs.split_cost = 0;
    let err = SimulationBuilder::new().costs(costs).run().unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");

    // Zero sampling interval.
    let mut cfg = MachineConfig::default();
    cfg.sampling_interval = 0;
    let err = SimulationBuilder::new().machine(cfg).run().unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
}

#[test]
fn oversubscribed_bus_reports_stagnation() {
    // A 64-member single bus cannot carry 64 load broadcasts per period:
    // the backlog grows without bound and the watchdog must name the cause.
    let err = SimulationBuilder::new()
        .topology(TopologySpec::SingleBus { n: 64 })
        .strategy(StrategySpec::Cwn {
            radius: 5,
            horizon: 1,
        })
        .workload(WorkloadSpec::fib(15))
        .run()
        .unwrap_err();
    match err {
        SimError::Stagnation { backlog, .. } => assert!(backlog > 100),
        other => panic!("expected stagnation, got {other}"),
    }
}

#[test]
fn killing_a_loaded_pe_is_detected_as_a_stall() {
    // Kill PE 0 (the root's home, holding waiting tasks) mid-run: the lost
    // work must surface as a stall, never as a wrong answer.
    let mut cfg = MachineConfig::default();
    cfg.fail_pe = Some((0, 200));
    cfg.load_info = LoadInfoMode::Instant;
    let err = SimulationBuilder::new()
        .topology(TopologySpec::grid(4))
        .strategy(StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        })
        .workload(WorkloadSpec::fib(13))
        .machine(cfg)
        .run()
        .unwrap_err();
    assert!(
        matches!(err, SimError::Stalled { .. }),
        "expected a stall from the lost work, got {err}"
    );
}

#[test]
fn killing_an_idle_pe_is_harmless() {
    // Keep-local leaves PE 15 idle forever; killing it must not affect the
    // result.
    let mut cfg = MachineConfig::default();
    cfg.fail_pe = Some((15, 100));
    let r = SimulationBuilder::new()
        .topology(TopologySpec::grid(4))
        .strategy(StrategySpec::Local)
        .workload(WorkloadSpec::fib(12))
        .machine(cfg)
        .run_validated()
        .expect("losing an unused PE must not matter");
    assert_eq!(r.result, 144);
}

#[test]
fn error_messages_are_informative() {
    let mut cfg = MachineConfig::default();
    cfg.root_pe = 1000;
    let err = SimulationBuilder::new().machine(cfg).run().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("1000"),
        "message should name the bad value: {msg}"
    );
}
