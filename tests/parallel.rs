//! Cross-engine equality: the sharded conservative-sync engine must produce
//! **bit-identical** results to the sequential engine — same reports, same
//! invariant-auditor verdicts, same snapshot bytes — for every eligible
//! configuration, and must fall back to sequential execution (same results
//! by construction) for every ineligible one.
//!
//! The comparison is the full `Debug` rendering of the `Report` (the same
//! full-fidelity comparison the golden and cross-queue suites use): float
//! series, hop histograms, traffic counters, per-PE utilizations — all of
//! it.

use oracle::model::{ineligibility, run_parallel, run_parallel_machine};
use oracle::prelude::*;
use oracle::runner::{clear_default_shards, set_default_shards};
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// Shard counts the whole suite sweeps: an even split, an uneven split,
/// and more shards than some topologies have natural clusters.
const SHARD_COUNTS: [usize; 3] = [2, 3, 8];

fn eligible_builder(
    topology: TopologySpec,
    strategy: StrategySpec,
    workload: WorkloadSpec,
    seed: u64,
) -> SimulationBuilder {
    SimulationBuilder::new()
        .topology(topology)
        .strategy(strategy)
        .workload(workload)
        .seed(seed)
        // The communication co-processor handles deliveries at channel
        // timestamps, where the engine's complete/deliver phase split
        // becomes observable — sharded execution requires it off.
        .coprocessor(false)
}

/// Run sequentially and at every shard count; every report must render
/// identically. Returns the sequential rendering for further checks.
fn assert_bit_identical(name: &str, config: &oracle::builder::RunConfig) -> String {
    let (seq, _) = config.run_traced().expect(name);
    let seq = format!("{seq:#?}");
    for shards in SHARD_COUNTS {
        let (par, _) = config
            .run_sharded(shards)
            .unwrap_or_else(|e| panic!("{name} at {shards} shards: {e:?}"));
        let par = format!("{par:#?}");
        assert!(
            par == seq,
            "{name}: report diverged at {shards} shards\n--- sequential ---\n{seq}\n--- parallel ---\n{par}"
        );
    }
    seq
}

#[test]
fn every_parallel_safe_strategy_matches_sequential() {
    // Strategy × topology sweep over the schemes that declare themselves
    // parallel-safe. GlobalRandom and ThresholdProbe keep cross-PE state,
    // stay ineligible, and are covered by the fallback test instead.
    let strategies = [
        StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        },
        StrategySpec::Gradient {
            low_water_mark: 1,
            high_water_mark: 2,
            interval: 20,
        },
        // Redistribution off: with the co-processor also off, ACWN's
        // idle-steal component can livelock a single root goal on larger
        // grids — sequentially too (see the stalled-run test below).
        StrategySpec::AdaptiveCwn {
            radius: 4,
            horizon: 1,
            saturation: 2,
            redistribute: false,
        },
        StrategySpec::Local,
        StrategySpec::RandomWalk { hops: 2 },
        StrategySpec::RoundRobin,
        StrategySpec::WorkStealing { retry_delay: 25 },
        StrategySpec::Diffusion {
            interval: 15,
            threshold: 2,
            max_per_cycle: 2,
        },
    ];
    let topologies = [
        TopologySpec::grid(5),
        TopologySpec::DoubleLatticeMesh {
            span: 2,
            width: 5,
            height: 5,
        },
        TopologySpec::Ring { n: 9 },
        TopologySpec::Hypercube { dim: 3 },
    ];
    for strategy in &strategies {
        for topology in &topologies {
            let config = eligible_builder(*topology, *strategy, WorkloadSpec::fib(11), 7).config();
            assert_bit_identical(&format!("{strategy} on {topology}"), &config);
        }
    }
}

#[test]
fn workload_shapes_match_sequential() {
    for workload in [
        WorkloadSpec::dc(200),
        WorkloadSpec::Lopsided {
            budget: 120,
            skew_pct: 70,
        },
        WorkloadSpec::Cyclic {
            phases: 2,
            width: 3,
            leaves: 6,
        },
    ] {
        let config = eligible_builder(
            TopologySpec::grid(4),
            StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            },
            workload,
            3,
        )
        .config();
        assert_bit_identical(&format!("{workload}"), &config);
    }
}

#[test]
fn both_queue_backends_shard_identically() {
    for backend in [
        oracle::model::QueueBackend::Heap,
        oracle::model::QueueBackend::Calendar,
    ] {
        let config = eligible_builder(
            TopologySpec::grid(4),
            StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            },
            WorkloadSpec::fib(11),
            5,
        )
        .queue_backend(backend)
        .config();
        assert_bit_identical(&format!("{backend:?} backend"), &config);
    }
}

#[test]
fn oversubscribed_shard_requests_clamp_and_match() {
    // 100 shards on a 16-PE grid: the engine clamps to one shard per PE
    // (and to its 64-worker bitmask cap on larger machines) instead of
    // spawning dozens of workers that own nothing — and the result is
    // still the sequential one, bit for bit.
    let config = eligible_builder(
        TopologySpec::grid(4),
        StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        },
        WorkloadSpec::fib(10),
        6,
    )
    .config();
    let (seq, _) = config.run_traced().expect("sequential");
    let (par, _) = config.run_sharded(100).expect("clamped sharded run");
    assert_eq!(format!("{par:#?}"), format!("{seq:#?}"));
}

#[test]
fn ineligible_configurations_fall_back_to_identical_sequential_runs() {
    // Each of these is ineligible for a different reason; the sharded entry
    // point must still return the exact sequential result.
    let faulted = SimulationBuilder::new()
        .topology(TopologySpec::grid(4))
        .strategy(StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        })
        .workload(WorkloadSpec::fib(10))
        .coprocessor(false)
        .fault_plan("crash:5@400+recover:200x3".parse().expect("fault plan"))
        .config();
    let open = SimulationBuilder::new()
        .topology(TopologySpec::grid(4))
        .strategy(StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        })
        .workload(WorkloadSpec::fib(7))
        .coprocessor(false)
        .arrivals("poisson:2".parse().expect("arrival spec"), 4_000)
        .config();
    let coproc = SimulationBuilder::new()
        .topology(TopologySpec::grid(4))
        .strategy(StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        })
        .workload(WorkloadSpec::fib(10))
        .config(); // default keeps the co-processor on
    let shared_state = eligible_builder(
        TopologySpec::grid(4),
        StrategySpec::GlobalRandom,
        WorkloadSpec::fib(10),
        2,
    )
    .config();
    for (name, config) in [
        ("faulted", &faulted),
        ("open", &open),
        ("coprocessor", &coproc),
        ("shared-state strategy", &shared_state),
    ] {
        let m = config.machine().expect(name);
        assert!(
            ineligibility(&m, 4).is_some(),
            "{name} should be ineligible for sharded execution"
        );
        let (seq, _) = config.run_traced().expect(name);
        let (par, _) = config.run_sharded(4).expect(name);
        assert_eq!(
            format!("{par:#?}"),
            format!("{seq:#?}"),
            "{name}: fallback diverged from the sequential engine"
        );
    }
}

#[test]
fn audited_runs_pass_and_match_under_sharding() {
    // The invariant auditor runs every N events sequentially and once on
    // the merged machine in sharded mode; both must pass, and the reports
    // must still be bit-identical.
    let config = eligible_builder(
        TopologySpec::grid(5),
        StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        },
        WorkloadSpec::fib(11),
        7,
    )
    .config();
    let mut audited = config;
    audited.machine.audit_every = 500;
    let (seq, _) = audited.run_traced().expect("audited sequential run");
    for shards in SHARD_COUNTS {
        let (par, _) = audited
            .run_sharded(shards)
            .unwrap_or_else(|e| panic!("audited run at {shards} shards: {e:?}"));
        assert_eq!(par.completion_time, seq.completion_time);
        assert_eq!(par.events, seq.events);
        assert_eq!(par.traffic, seq.traffic);
        assert_eq!(par.hop_histogram, seq.hop_histogram);
    }
}

#[test]
fn merged_machine_snapshot_matches_sequential_and_round_trips() {
    let config = eligible_builder(
        TopologySpec::grid(4),
        StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        },
        WorkloadSpec::fib(11),
        9,
    )
    .config();

    // Sequential machine, advanced to completion (not consumed).
    let mut seq = config.machine().expect("sequential machine");
    seq.begin();
    seq.advance_until(None).expect("sequential run");
    let seq_bytes = seq.snapshot_bytes();

    for shards in SHARD_COUNTS {
        // The merged parallel machine must serialize to the *same bytes*:
        // every RNG stream, sequence counter, PE queue, channel FIFO, and
        // pending event identical. (This cell stays below one watchdog
        // window; runs that cross one diverge in exactly the historical
        // `last_progress` words — see the contract-boundary note in
        // `oracle_model::parallel` — which the in-crate cursor tests pin
        // down instead.)
        let mut par = run_parallel_machine(&|| config.machine(), shards).expect("parallel machine");
        let par_bytes = par.snapshot_bytes();
        assert!(
            par_bytes == seq_bytes,
            "merged machine snapshot diverged from sequential at {shards} shards \
             ({} vs {} bytes)",
            par_bytes.len(),
            seq_bytes.len()
        );

        // And it must round-trip: restore into a fresh machine, serialize
        // again, same bytes.
        let mut fresh = config.machine().expect("fresh machine");
        fresh
            .restore_bytes(&par_bytes)
            .expect("restore merged snapshot");
        assert_eq!(
            fresh.snapshot_bytes(),
            par_bytes,
            "merged snapshot did not round-trip at {shards} shards"
        );
    }
}

#[test]
fn stalled_runs_fail_identically_under_sharding() {
    // ACWN with redistribution on this cell livelocks the lone root goal
    // (a modelling outcome, reproducible sequentially). Shard-local
    // watchdogs can only see a slice of the counters, so the engine must
    // bail to the sequential fallback and report the *same* error,
    // counters and all.
    let config = eligible_builder(
        TopologySpec::grid(5),
        StrategySpec::AdaptiveCwn {
            radius: 4,
            horizon: 1,
            saturation: 2,
            redistribute: true,
        },
        WorkloadSpec::fib(11),
        7,
    )
    .config();
    let seq = config.run_traced().expect_err("cell is known to stall");
    for shards in SHARD_COUNTS {
        let par = config
            .run_sharded(shards)
            .expect_err("parallel engine must reproduce the stall");
        assert_eq!(
            format!("{par:?}"),
            format!("{seq:?}"),
            "stall error diverged at {shards} shards"
        );
    }
}

#[test]
fn process_default_shards_reroutes_plain_runs() {
    let config = eligible_builder(
        TopologySpec::grid(4),
        StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        },
        WorkloadSpec::fib(10),
        4,
    )
    .config();
    let baseline = config.run().expect("sequential");
    set_default_shards(2);
    let sharded = config.run().expect("sharded via process default");
    clear_default_shards();
    assert_eq!(format!("{sharded:#?}"), format!("{baseline:#?}"));
    assert_eq!(
        format!("{:#?}", config.run().expect("cleared")),
        format!("{baseline:#?}")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (topology, shard count, seed) cells: the partitioner may
    /// produce any shard boundary shapes, and every one of them must
    /// preserve determinism exactly.
    #[test]
    fn random_partitions_preserve_determinism(
        topology in prop_oneof![
            (2usize..6, 2usize..6, any::<bool>()).prop_map(|(w, h, wrap)| {
                TopologySpec::Mesh2D { width: w.max(2), height: h, wraparound: wrap }
            }),
            (3usize..12).prop_map(|n| TopologySpec::Ring { n }),
            (2u32..5).prop_map(|dim| TopologySpec::Hypercube { dim }),
            (2usize..4, 4usize..7).prop_map(|(span, side)| TopologySpec::DoubleLatticeMesh {
                span: span.min(side), width: side, height: side,
            }),
        ],
        strategy in prop_oneof![
            (2u32..6, 0u32..2).prop_map(|(radius, horizon)| StrategySpec::Cwn {
                radius, horizon: horizon.min(radius - 1),
            }),
            Just(StrategySpec::RoundRobin),
            (1u32..4).prop_map(|hops| StrategySpec::RandomWalk { hops }),
            (10u64..40).prop_map(|d| StrategySpec::WorkStealing { retry_delay: d }),
        ],
        shards in 2usize..9,
        seed in 0u64..1_000,
    ) {
        let config = eligible_builder(topology, strategy, WorkloadSpec::fib(9), seed).config();
        let (seq, _) = config.run_traced().expect("sequential");
        let (par, _) = run_parallel(&|| config.machine(), shards).expect("parallel");
        prop_assert_eq!(format!("{:#?}", par), format!("{:#?}", seq));
    }
}
