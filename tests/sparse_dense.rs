//! Sparse-mode / dense-mode equivalence: the two per-PE/per-channel state
//! representations ([`StateMode::Sparse`] vs [`StateMode::Dense`]) must
//! produce **bit-identical** `Report`s — completion time, utilization
//! quantiles, traffic counters, hop histograms, top-K tables, float
//! folds, all of it — on every cell, under both event-queue backends, and
//! under the sharded engine as well as the sequential one.
//!
//! This is the load-bearing guarantee of the O(active)-memory refactor:
//! sparse mode is a *representation* change, never a *results* change. The
//! reductions walk materialized slots in ascending id order and every
//! absent slot contributes only identity terms (`+0.0`, merging an empty
//! `OnlineStats`), so skipping the untouched slots cannot perturb a bit
//! (see `model/src/sparse.rs` for the argument; these tests pin it).

use oracle::prelude::*;
use oracle_model::QueueBackend;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// Render a run's full report under the given state mode. The audit runs
/// too: the invariant auditor must accept both representations.
fn render(
    build: &dyn Fn() -> SimulationBuilder,
    mode: StateMode,
    backend: QueueBackend,
    shards: usize,
) -> String {
    let mut config = build()
        .state_mode(mode)
        .queue_backend(backend)
        .coprocessor(false) // sharded engine requires the co-processor off
        .config();
    config.machine.audit_every = 100;
    let report = if shards > 1 {
        config
            .run_sharded(shards)
            .unwrap_or_else(|e| panic!("{mode:?}/{backend:?}/{shards} shards failed: {e:?}"))
            .0
    } else {
        config
            .run()
            .unwrap_or_else(|e| panic!("{mode:?}/{backend:?} failed: {e:?}"))
    };
    report.check_invariants();
    format!("{report:#?}")
}

/// Sparse and dense must render identically for every backend × engine
/// combination of this configuration.
fn assert_sparse_matches_dense(name: &str, build: impl Fn() -> SimulationBuilder) {
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        for shards in [1usize, 2] {
            let dense = render(&build, StateMode::Dense, backend, shards);
            let sparse = render(&build, StateMode::Sparse, backend, shards);
            assert!(
                sparse == dense,
                "{name} under {backend:?} with {shards} shard(s): sparse state \
                 diverged from dense\n--- dense ---\n{dense}\n--- sparse ---\n{sparse}"
            );
        }
    }
}

/// The existing grid/torus/dlm golden cells (≤ 400 PEs), both paper
/// strategies, with the per-PE vectors *on* so the dense-derived vectors
/// themselves are compared, not just the aggregates.
#[test]
fn paper_cells_identical_across_state_modes() {
    let cells: &[(&str, TopologySpec)] = &[
        ("grid10", TopologySpec::grid(10)),
        (
            "torus8",
            TopologySpec::Mesh2D {
                width: 8,
                height: 8,
                wraparound: true,
            },
        ),
        ("dlm10", TopologySpec::dlm(10)),
        ("grid20", TopologySpec::grid(20)),
    ];
    for &(tag, topology) in cells {
        for (strategy, stag) in [
            (StrategySpec::cwn_paper(true), "cwn"),
            (StrategySpec::gradient_paper(true), "gm"),
        ] {
            assert_sparse_matches_dense(&format!("fib14/{tag}/{stag}"), || {
                SimulationBuilder::new()
                    .topology(topology)
                    .strategy(strategy)
                    .workload(WorkloadSpec::fib(14))
                    .per_pe_metrics(true)
                    .seed(21)
            });
        }
    }
}

/// Randomized sweep: topology (grid/torus/dlm ≤ 400 PEs) × strategy ×
/// workload × seed. Fewer cases than the fixed sweep is deep, but each one
/// still checks both backends and both engines.
#[test]
fn proptest_cells_identical_across_state_modes() {
    fn topo() -> impl proptest::strategy::Strategy<Value = TopologySpec> {
        prop_oneof![
            (2usize..15, 2usize..15, any::<bool>()).prop_map(|(w, h, wrap)| {
                TopologySpec::Mesh2D {
                    width: w,
                    height: h,
                    wraparound: wrap,
                }
            }),
            (4usize..12).prop_map(TopologySpec::dlm),
        ]
    }
    fn strat() -> impl proptest::strategy::Strategy<Value = StrategySpec> {
        prop_oneof![
            (2u32..6, 0u32..2).prop_map(|(radius, horizon)| StrategySpec::Cwn {
                radius,
                horizon: horizon.min(radius - 1),
            }),
            (1u32..3, 0u32..2, 10u64..30).prop_map(|(lwm, extra, interval)| {
                StrategySpec::Gradient {
                    low_water_mark: lwm,
                    high_water_mark: lwm + extra,
                    interval,
                }
            }),
        ]
    }
    let mut runner = proptest::test_runner::TestRunner::new(proptest::test_runner::Config {
        cases: 12,
        ..proptest::test_runner::Config::default()
    });
    runner
        .run(
            &(topo(), strat(), 10i64..14, 1u64..1000),
            |(topology, strategy, fib, seed)| {
                assert_sparse_matches_dense(&format!("{topology}/{strategy}/fib{fib}/s{seed}"), || {
                    SimulationBuilder::new()
                        .topology(topology)
                        .strategy(strategy)
                        .workload(WorkloadSpec::fib(fib))
                        .seed(seed)
                });
                Ok(())
            },
        )
        .unwrap();
}

/// Snapshot round-trip across modes: a sparse machine's v5 snapshot
/// restores into a fresh sparse machine and continues bit-identically
/// (the codec encodes only materialized slots, so this exercises the
/// sparse encode/decode paths end to end).
#[test]
fn sparse_snapshot_resumes_bit_identically() {
    let build = || {
        SimulationBuilder::new()
            .topology(TopologySpec::grid(10))
            .strategy(StrategySpec::cwn_paper(true))
            .workload(WorkloadSpec::fib(15))
            .state_mode(StateMode::Sparse)
            .seed(7)
            .config()
    };
    let mut straight = build().machine().unwrap();
    straight.begin().unwrap();
    let done = straight.finish().unwrap();
    let full = format!("{:#?}", straight.report(done));

    let mut first = build().machine().unwrap();
    first.begin().unwrap();
    first.advance_until(done / 2).unwrap();
    let bytes = first.snapshot_bytes();

    let mut resumed = build().machine().unwrap();
    resumed.restore_bytes(&bytes).unwrap();
    let done2 = resumed.finish().unwrap();
    assert_eq!(done, done2, "resumed run finished at a different time");
    let report = format!("{:#?}", resumed.report(done2));
    assert!(
        report == full,
        "sparse snapshot resume diverged from the uninterrupted run"
    );
}
