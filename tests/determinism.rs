//! Reproducibility: every run is a pure function of (configuration, seed).

use oracle::prelude::*;
use oracle::runner::run_batch_with_threads;

fn strategies() -> Vec<StrategySpec> {
    vec![
        StrategySpec::Cwn {
            radius: 5,
            horizon: 1,
        },
        StrategySpec::Gradient {
            low_water_mark: 1,
            high_water_mark: 2,
            interval: 20,
        },
        StrategySpec::AdaptiveCwn {
            radius: 5,
            horizon: 1,
            saturation: 3,
            redistribute: true,
        },
        StrategySpec::WorkStealing { retry_delay: 30 },
        StrategySpec::RandomWalk { hops: 2 },
    ]
}

fn run(strategy: StrategySpec, seed: u64) -> Report {
    SimulationBuilder::new()
        .topology(TopologySpec::grid(5))
        .strategy(strategy)
        .workload(WorkloadSpec::fib(13))
        // Per-PE vectors are opt-in now; keep them in the comparison so
        // the per-PE equality below stays a real check, not empty==empty.
        .per_pe_metrics(true)
        .seed(seed)
        .run_validated()
        .unwrap()
}

#[test]
fn same_seed_reproduces_every_strategy_exactly() {
    for strategy in strategies() {
        let a = run(strategy, 42);
        let b = run(strategy, 42);
        assert_eq!(a.completion_time, b.completion_time, "{strategy}");
        assert_eq!(a.events, b.events, "{strategy}");
        assert_eq!(a.hop_histogram, b.hop_histogram, "{strategy}");
        assert_eq!(a.traffic, b.traffic, "{strategy}");
        assert_eq!(a.per_pe_utilization, b.per_pe_utilization, "{strategy}");
        assert_eq!(a.util_series, b.util_series, "{strategy}");
    }
}

#[test]
fn different_seeds_differ_for_randomized_strategies() {
    // Placement randomness (tie-breaking, victim selection) must actually
    // depend on the seed.
    for strategy in [
        StrategySpec::Cwn {
            radius: 5,
            horizon: 1,
        },
        StrategySpec::RandomWalk { hops: 2 },
        StrategySpec::WorkStealing { retry_delay: 30 },
    ] {
        let a = run(strategy, 1);
        let b = run(strategy, 2);
        assert!(
            a.completion_time != b.completion_time || a.traffic != b.traffic,
            "{strategy}: seeds 1 and 2 produced identical runs"
        );
        // But the computed answer never changes.
        assert_eq!(a.result, b.result);
        assert_eq!(a.goals_created, b.goals_created);
    }
}

#[test]
fn parallel_batch_equals_sequential_batch() {
    let specs: Vec<RunSpec> = strategies()
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            RunSpec::new(
                format!("{s}"),
                SimulationBuilder::new()
                    .topology(TopologySpec::grid(4))
                    .strategy(s)
                    .workload(WorkloadSpec::fib(12))
                    .seed(i as u64)
                    .config(),
            )
        })
        .collect();
    let par = run_batch_with_threads(&specs, 8);
    let seq = run_batch_with_threads(&specs, 1);
    for ((la, a), (lb, b)) in par.iter().zip(&seq) {
        assert_eq!(la, lb);
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.completion_time, b.completion_time, "{la}");
        assert_eq!(a.events, b.events, "{la}");
        assert_eq!(a.traffic, b.traffic, "{la}");
    }
}

#[test]
fn fault_plans_are_deterministic_across_thread_counts() {
    // Same seed + same plan must reproduce byte-for-byte, whether the
    // batch runs on one thread or many: the full report (fault metrics,
    // respawn counts, recovery latencies included) is part of the contract.
    use oracle::model::FaultPlan;
    let plans: Vec<FaultPlan> = vec![
        "crash:5@300+loss:1%+recover:800x4".parse().unwrap(),
        "link:3@100..400+recover:1000x3".parse().unwrap(),
        "slow:2@50..500x4+loss:2%+recover:600x5".parse().unwrap(),
        "crash:0@250+crash:7@600+recover:900x6".parse().unwrap(),
    ];
    let specs: Vec<RunSpec> = plans
        .into_iter()
        .enumerate()
        .flat_map(|(i, plan)| {
            strategies().into_iter().map(move |s| {
                RunSpec::new(
                    format!("{s} under faults #{i}"),
                    SimulationBuilder::new()
                        .topology(TopologySpec::grid(4))
                        .strategy(s)
                        .workload(WorkloadSpec::fib(11))
                        .seed(7 + i as u64)
                        .fault_plan(plan.clone())
                        .config(),
                )
            })
        })
        .collect();
    let par = run_batch_with_threads(&specs, 8);
    let seq = run_batch_with_threads(&specs, 1);
    for ((la, a), (lb, b)) in par.iter().zip(&seq) {
        assert_eq!(la, lb);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "{la}");
            }
            (Err(a), Err(b)) => {
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "{la}");
            }
            _ => panic!("{la}: one thread count completed, the other failed"),
        }
    }
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    // The fault subsystem must be invisible until a plan asks for it: no
    // extra events, no extra RNG draws, identical reports.
    for strategy in strategies() {
        let plain = run(strategy, 42);
        let with_empty = SimulationBuilder::new()
            .topology(TopologySpec::grid(5))
            .strategy(strategy)
            .workload(WorkloadSpec::fib(13))
            .per_pe_metrics(true) // match `run` for the Debug comparison
            .seed(42)
            .fault_plan(oracle::model::FaultPlan::none())
            .run_validated()
            .unwrap();
        assert_eq!(
            format!("{plain:?}"),
            format!("{with_empty:?}"),
            "{strategy}: an empty plan changed the run"
        );
    }
}

#[test]
fn root_pe_choice_changes_placement_not_the_answer() {
    let mk = |root: u32| {
        let mut machine = MachineConfig::default().with_seed(4);
        machine.root_pe = root;
        machine.per_pe_metrics = true; // the assertion below reads the vectors
        SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            })
            .workload(WorkloadSpec::fib(12))
            .machine(machine)
            .run_validated()
            .unwrap()
    };
    let corner = mk(0);
    let center = mk(5);
    assert_eq!(corner.result, center.result);
    assert_eq!(corner.goals_created, center.goals_created);
    assert_ne!(
        corner.per_pe_utilization, center.per_pe_utilization,
        "moving the root must move the load"
    );
}
