//! Reproduce the paper's §3.1 parameter-optimization methodology on a small
//! scale: sweep CWN's radius × horizon and GM's water-marks × interval on a
//! sample point, and print the full sweep plus the winners.
//!
//! ```sh
//! cargo run --release --example parameter_study [topology] [workload]
//! ```

use oracle::prelude::*;
use oracle::table::f2;

fn main() {
    let mut args = std::env::args().skip(1);
    let topology: TopologySpec = args
        .next()
        .unwrap_or_else(|| "grid:8".into())
        .parse()
        .expect("bad topology spec");
    let workload: WorkloadSpec = args
        .next()
        .unwrap_or_else(|| "fib:13".into())
        .parse()
        .expect("bad workload spec");

    // CWN sweep.
    let mut cwn_specs = Vec::new();
    for radius in [2u32, 3, 5, 7, 9, 12] {
        for horizon in [0u32, 1, 2, 3] {
            if horizon < radius {
                cwn_specs.push(StrategySpec::Cwn { radius, horizon });
            }
        }
    }
    // GM sweep.
    let mut gm_specs = Vec::new();
    for lwm in [1u32, 2] {
        for hwm in [1u32, 2, 3] {
            if hwm >= lwm {
                for interval in [10u64, 20, 40, 80] {
                    gm_specs.push(StrategySpec::Gradient {
                        low_water_mark: lwm,
                        high_water_mark: hwm,
                        interval,
                    });
                }
            }
        }
    }

    for (title, specs) in [("CWN sweep", cwn_specs), ("Gradient Model sweep", gm_specs)] {
        let runs: Vec<RunSpec> = specs
            .iter()
            .map(|s| {
                RunSpec::new(
                    s.to_string(),
                    SimulationBuilder::new()
                        .topology(topology)
                        .strategy(*s)
                        .workload(workload)
                        .seed(11)
                        .config(),
                )
            })
            .collect();
        let mut results: Vec<(String, f64)> = run_batch(&runs)
            .into_iter()
            .map(|(label, r)| (label, r.expect("run failed").speedup))
            .collect();
        results.sort_by(|a, b| b.1.total_cmp(&a.1));

        let mut table = Table::new(
            format!("{title}: {workload} on {topology}"),
            &["parameters", "speedup"],
        );
        for (label, speedup) in &results {
            table.row(vec![label.clone(), f2(*speedup)]);
        }
        println!("{table}");
        println!("winner: {}\n", results[0].0);
    }
}
