//! Compare every load-distribution scheme on one scenario.
//!
//! ```sh
//! cargo run --release --example compare_strategies [topology] [workload]
//! cargo run --release --example compare_strategies dlm:10 fib:15
//! ```
//!
//! Runs the floor baseline (keep-local), the oblivious baselines, the
//! paper's two competitors, and the extensions (Adaptive CWN, work
//! stealing) on the same topology and workload, and tabulates the outcome.

use oracle::builder::paper_strategies;
use oracle::prelude::*;
use oracle::table::{f1, f2};

fn main() {
    let mut args = std::env::args().skip(1);
    let topology: TopologySpec = args
        .next()
        .unwrap_or_else(|| "grid:10".into())
        .parse()
        .expect("bad topology spec (try grid:10, dlm:10, hypercube:6)");
    let workload: WorkloadSpec = args
        .next()
        .unwrap_or_else(|| "fib:15".into())
        .parse()
        .expect("bad workload spec (try fib:15, dc:987, lopsided:1000x80)");

    let (cwn, gm) = paper_strategies(&topology);
    let (radius, horizon) = match cwn {
        StrategySpec::Cwn { radius, horizon } => (radius, horizon),
        _ => unreachable!(),
    };
    let strategies: Vec<(&str, StrategySpec)> = vec![
        ("keep-local (floor)", StrategySpec::Local),
        ("round-robin", StrategySpec::RoundRobin),
        ("random-walk (2 hops)", StrategySpec::RandomWalk { hops: 2 }),
        ("CWN (paper)", cwn),
        ("Gradient Model (paper)", gm),
        (
            "Adaptive CWN (paper's future work)",
            StrategySpec::AdaptiveCwn {
                radius,
                horizon,
                saturation: 3,
                redistribute: true,
            },
        ),
        (
            "work stealing",
            StrategySpec::WorkStealing { retry_delay: 40 },
        ),
    ];

    let specs: Vec<RunSpec> = strategies
        .iter()
        .map(|(name, s)| {
            RunSpec::new(
                *name,
                SimulationBuilder::new()
                    .topology(topology)
                    .strategy(*s)
                    .workload(workload)
                    .seed(7)
                    .config(),
            )
        })
        .collect();

    let mut table = Table::new(
        format!("{workload} on {topology} ({} PEs)", topology.num_pes()),
        &["strategy", "speedup", "util %", "time", "avg dist", "msgs"],
    );
    for (name, result) in run_batch(&specs) {
        let r = result.expect("run failed");
        table.row(vec![
            name,
            f2(r.speedup),
            f1(r.avg_utilization * 100.0),
            r.completion_time.to_string(),
            f2(r.avg_goal_distance),
            r.traffic.total().to_string(),
        ]);
    }
    println!("{table}");
}
