//! Quickstart: run one simulation and read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Simulates the paper's headline configuration — naive Fibonacci on a
//! 10×10 grid — under both competitors and prints the numbers the paper
//! compares: average PE utilization, speedup, time to completion, and how
//! far goals travelled.

use oracle::builder::paper_strategies;
use oracle::prelude::*;

fn main() {
    let topology = TopologySpec::grid(10);
    let workload = WorkloadSpec::fib(15);
    let (cwn, gm) = paper_strategies(&topology);

    println!(
        "workload {workload} on {topology} ({} PEs)\n",
        topology.num_pes()
    );

    for strategy in [cwn, gm] {
        let report = SimulationBuilder::new()
            .topology(topology)
            .strategy(strategy)
            .workload(workload)
            .seed(2024)
            .run_validated()
            .expect("simulation failed");

        println!("strategy {} ({strategy})", report.strategy);
        println!(
            "  result            {}  (the machine really computed it)",
            report.result
        );
        println!("  goals executed    {}", report.goals_executed);
        println!("  completion time   {} units", report.completion_time);
        println!(
            "  avg utilization   {:.1} %",
            report.avg_utilization * 100.0
        );
        println!(
            "  speedup           {:.1} on {} PEs",
            report.speedup, report.num_pes
        );
        println!("  avg goal distance {:.2} hops", report.avg_goal_distance);
        println!(
            "  traffic           {} goal hops, {} response hops, {} control msgs",
            report.traffic.goal_hops, report.traffic.response_hops, report.traffic.control_msgs
        );
        println!();
    }
}
