//! Debugging a placement decision with the event trace.
//!
//! ```sh
//! cargo run --release --example trace_debugging
//! ```
//!
//! ORACLE's authors "found this facility particularly useful for debugging
//! the load balancing strategies". This example runs a small CWN simulation
//! with tracing enabled and then *analyses* the trace: it follows one goal's
//! journey hop by hop, and derives per-goal travel statistics directly from
//! the event log (cross-checking them against the report's histogram).

use oracle::model::TraceEvent;
use oracle::prelude::*;
use std::collections::HashMap;

fn main() {
    let config = SimulationBuilder::new()
        .topology(TopologySpec::grid(5))
        .strategy(StrategySpec::Cwn {
            radius: 6,
            horizon: 1,
        })
        .workload(WorkloadSpec::fib(10))
        .trace_capacity(100_000)
        .seed(7)
        .config();
    let (report, trace) = config.run_traced().expect("run failed");

    println!(
        "traced {} events from a {}-goal run (result {})\n",
        trace.events().len(),
        report.goals_executed,
        report.result
    );

    // 1. Follow the journey of one interesting goal: the one that travelled
    //    furthest.
    let (furthest, hops) = trace
        .events()
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::GoalAccepted { goal, hops, .. } => Some((goal, hops)),
            _ => None,
        })
        .max_by_key(|&(_, hops)| hops)
        .expect("some goal was accepted");
    println!("furthest-travelling goal: {} ({hops} hops)", furthest.0);
    for e in trace.events() {
        let relevant = match *e {
            TraceEvent::GoalCreated { goal, .. }
            | TraceEvent::GoalForwarded { goal, .. }
            | TraceEvent::GoalAccepted { goal, .. }
            | TraceEvent::GoalStarted { goal, .. } => goal == furthest,
            _ => false,
        };
        if relevant {
            println!("  {e}");
        }
    }

    // 2. Rebuild the hop histogram from the trace and cross-check it
    //    against the report.
    let mut hops_of: HashMap<u64, u32> = HashMap::new();
    for e in trace.events() {
        if let TraceEvent::GoalAccepted { goal, hops, .. } = *e {
            hops_of.insert(goal.0, hops); // last acceptance wins
        }
    }
    let mut histogram = vec![0u64; report.hop_histogram.len()];
    for &h in hops_of.values() {
        histogram[h as usize] += 1;
    }
    assert_eq!(
        histogram, report.hop_histogram,
        "trace-derived histogram must equal the report's"
    );
    println!("\ntrace-derived hop histogram matches the report: {histogram:?}");
    println!(
        "mean dispatch latency {:.1} units (max {:.0})",
        report.dispatch_latency_mean, report.dispatch_latency_max
    );
}
