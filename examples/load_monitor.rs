//! The paper's load monitor, in ASCII.
//!
//! ```sh
//! cargo run --release --example load_monitor [grid-side] [workload] [cwn|gm]
//! cargo run --release --example load_monitor 10 fib:15 gm
//! ```
//!
//! ORACLE "provides a specially formatted output that can be used to drive a
//! graphics program to monitor load distribution. Here the utilization of
//! each PE is output at every sampling interval. This data is displayed on
//! the graphics device with a continuum of colors representing relative
//! activity on each PE. (red: busy, blue: idle). We found this facility
//! particularly useful for debugging the load balancing strategies."
//!
//! This example renders the same data as frames of ASCII shading: one
//! character per PE (` .:-=+*#%@` from idle to busy), one frame per sampling
//! interval. Watch CWN flood the machine almost instantly and the Gradient
//! Model creep outward from the root corner.

use oracle::builder::paper_strategies;
use oracle::prelude::*;

const SHADES: &[u8] = b" .:-=+*#%@";

fn shade(util: f64) -> char {
    let idx = (util * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[idx.min(SHADES.len() - 1)] as char
}

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().map_or(10, |s| s.parse().expect("bad side"));
    let workload: WorkloadSpec = args
        .next()
        .unwrap_or_else(|| "fib:15".into())
        .parse()
        .expect("bad workload spec");
    let which = args.next().unwrap_or_else(|| "cwn".into());

    let topology = TopologySpec::grid(side);
    let (cwn, gm) = paper_strategies(&topology);
    let strategy = match which.as_str() {
        "cwn" => cwn,
        "gm" | "gradient" => gm,
        other => other.parse().expect("bad strategy spec"),
    };

    let report = SimulationBuilder::new()
        .topology(topology)
        .strategy(strategy)
        .workload(workload)
        .per_pe_series(true)
        .sampling_interval(100)
        .seed(3)
        .run_validated()
        .expect("simulation failed");

    let series = report
        .per_pe_series
        .as_ref()
        .expect("per-PE series was requested");
    let frames = series.iter().map(Vec::len).max().unwrap_or(0);

    println!(
        "{} under {} — {} frames of {}x{} PEs (idle ' ' … busy '@')",
        workload, report.strategy, frames, side, side
    );
    // Render frames side by side, a few per row of output.
    let per_row = (100 / (side + 3)).max(1);
    for chunk_start in (0..frames).step_by(per_row) {
        let chunk: Vec<usize> = (chunk_start..(chunk_start + per_row).min(frames)).collect();
        println!();
        for &f in &chunk {
            print!(
                "t={:<6} {}",
                f as u64 * 100,
                " ".repeat(side.saturating_sub(8))
            );
            print!("   ");
        }
        println!();
        for y in 0..side {
            for &f in &chunk {
                for x in 0..side {
                    let pe = y * side + x;
                    let u = series[pe].get(f).copied().unwrap_or(0.0);
                    print!("{}", shade(u));
                }
                print!("   ");
            }
            println!();
        }
    }
    println!(
        "\ncompleted at t={} with {:.1}% average utilization (speedup {:.1})",
        report.completion_time,
        report.avg_utilization * 100.0,
        report.speedup
    );
}
