//! Implementing your own workload: a branch-and-bound-style search tree.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```
//!
//! The built-in workloads live in `oracle-workloads`, but any computation
//! expressible as a medium-grain task tree can be simulated by implementing
//! the [`Program`] trait. Here: counting the solutions of the N-queens
//! problem, where each task places one more queen — a search tree whose
//! subtree sizes are irregular and unknowable in advance, exactly the kind
//! of "unpredictably structured computation" the paper targets.

use oracle::builder::paper_strategies;
use oracle::model::Machine;
use oracle::prelude::*;

/// Count-solutions N-queens as a task tree. Each task's spec packs the
/// column occupancy and diagonal masks of a partial placement:
/// `a` = columns mask, `b` = (left-diagonal mask << 32) | right-diagonal
/// mask, `depth` = row index.
struct NQueens {
    n: u32,
}

impl Program for NQueens {
    fn name(&self) -> String {
        format!("{}-queens", self.n)
    }

    fn root(&self) -> TaskSpec {
        TaskSpec::new(0, 0)
    }

    fn expand(&self, spec: &TaskSpec) -> Expansion {
        let row = spec.depth;
        if row == self.n {
            return Expansion::Leaf(1); // a full placement: one solution
        }
        let cols = spec.a as u32;
        let ld = (spec.b >> 32) as u32;
        let rd = spec.b as u32;
        let full = (1u32 << self.n) - 1;
        let mut free = full & !(cols | ld | rd);
        let mut children = Vec::new();
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            let child = spec.child(
                (cols | bit) as i64,
                ((((ld | bit) << 1) as u64) << 32 | ((rd | bit) >> 1) as u64) as i64,
            );
            children.push(child);
        }
        if children.is_empty() {
            Expansion::Leaf(0) // dead end: no solutions below here
        } else {
            Expansion::Split(children.into())
        }
    }

    fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
        acc + child
    }

    fn expected_result(&self) -> Option<i64> {
        // Known solution counts for validation.
        [1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724]
            .get(self.n as usize)
            .map(|&v| v as i64)
    }
}

fn main() {
    let n = 8;
    let topology = TopologySpec::grid(8);
    let (cwn, gm) = paper_strategies(&topology);

    println!("counting {n}-queens solutions on {topology}\n");
    for strategy in [cwn, gm] {
        let machine = Machine::new(
            topology.build(),
            Box::new(NQueens { n }),
            strategy.build(),
            CostModel::paper_default(),
            MachineConfig::default().with_seed(1),
        )
        .expect("bad machine config");
        let r = machine.run().expect("simulation failed");
        assert_eq!(r.result, 92, "8-queens has 92 solutions");
        println!(
            "{:<10} solutions={} goals={} time={} util={:.1}% speedup={:.1}",
            r.strategy,
            r.result,
            r.goals_executed,
            r.completion_time,
            r.avg_utilization * 100.0,
            r.speedup
        );
    }
    println!("\nboth schemes computed the correct answer through the simulated machine");
}
