//! Tour of the interconnection topologies and how the same computation
//! behaves on each.
//!
//! ```sh
//! cargo run --release --example topology_zoo
//! ```
//!
//! First prints the structural characteristics of every topology family at
//! roughly 60–100 PEs (the paper's §4 leans on exactly these: grid
//! diameters 8–38 vs DLM diameters 4–5), then runs the same fib(15) under
//! paper-parameter CWN on each and shows how diameter and degree shape the
//! outcome.

use oracle::builder::paper_strategies;
use oracle::prelude::*;
use oracle::table::{f1, f2};

fn main() {
    let zoo: Vec<TopologySpec> = vec![
        TopologySpec::grid(8),
        TopologySpec::Mesh2D {
            width: 8,
            height: 8,
            wraparound: true,
        },
        TopologySpec::dlm(8),
        TopologySpec::Hypercube { dim: 6 },
        TopologySpec::KAryNCube { k: 4, n: 3 },
        TopologySpec::Tree { arity: 2, depth: 5 },
        TopologySpec::Ring { n: 64 },
        TopologySpec::Star { n: 64 },
        TopologySpec::SingleBus { n: 64 },
    ];

    let mut structure = Table::new(
        "Structure (~64 PEs per family)",
        &[
            "topology",
            "PEs",
            "channels",
            "diameter",
            "mean dist",
            "max degree",
        ],
    );
    for spec in &zoo {
        let t = spec.build();
        let max_deg = t.pes().map(|pe| t.degree(pe)).max().unwrap_or(0);
        structure.row(vec![
            spec.to_string(),
            t.num_pes().to_string(),
            t.num_channels().to_string(),
            t.diameter().to_string(),
            f2(t.mean_distance()),
            max_deg.to_string(),
        ]);
    }
    println!("{structure}");

    let specs: Vec<RunSpec> = zoo
        .iter()
        .map(|&topology| {
            let (cwn, _) = paper_strategies(&topology);
            RunSpec::new(
                topology.to_string(),
                SimulationBuilder::new()
                    .topology(topology)
                    .strategy(cwn)
                    .workload(WorkloadSpec::fib(15))
                    .seed(3)
                    .config(),
            )
        })
        .collect();

    let mut outcome = Table::new(
        "fib(15) under paper-parameter CWN",
        &[
            "topology",
            "speedup",
            "util %",
            "time",
            "avg dist",
            "max chan util",
        ],
    );
    let mut failures = Vec::new();
    for (label, result) in run_batch(&specs) {
        match result {
            Ok(r) => {
                outcome.row(vec![
                    label,
                    f2(r.speedup),
                    f1(r.avg_utilization * 100.0),
                    r.completion_time.to_string(),
                    f2(r.avg_goal_distance),
                    f2(r.max_channel_utilization),
                ]);
            }
            Err(e) => failures.push(format!("{label}: {e}")),
        }
    }
    println!("{outcome}");
    for f in &failures {
        println!("DID NOT COMPLETE — {f}");
    }
    println!(
        "\nnote the star and the bus: tiny diameters but a single contended medium.\n\
         The 64-PE single bus cannot even carry its own load gossip — it hits the\n\
         \"communication stagnation\" the paper's cost ratio was chosen to avoid.\n\
         Placement quality is not only about distance, which is why ORACLE models\n\
         channels as contended resources."
    );
}
