//! The one-run builder API.

use oracle_model::config::LoadInfoMode;
use oracle_model::{CostModel, Machine, MachineConfig, Report, SimError};
use oracle_strategies::StrategySpec;
use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// A fully specified simulation run: everything needed to reproduce it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Interconnection topology.
    pub topology: TopologySpec,
    /// Load-distribution strategy.
    pub strategy: StrategySpec,
    /// Simulated computation.
    pub workload: WorkloadSpec,
    /// Times charged for primitive operations.
    pub costs: CostModel,
    /// Machine-level knobs (seed, load-information mode, co-processor…).
    pub machine: MachineConfig,
}

impl RunConfig {
    /// Build the configured machine without running it — the checkpoint
    /// tooling pauses, snapshots, and restores machines directly.
    pub fn machine(&self) -> Result<Machine, SimError> {
        let mut machine_cfg = self.machine.clone();
        self.strategy.apply_config(&mut machine_cfg);
        Machine::new(
            self.topology.build(),
            self.workload.build(),
            self.strategy.build(),
            self.costs,
            machine_cfg,
        )
    }

    /// Execute this configuration. Honours the process-wide
    /// [`crate::runner::set_default_shards`] setting: with a shard count
    /// above 1, eligible runs execute on the sharded parallel engine
    /// (bit-identical results), everything else runs sequentially.
    pub fn run(&self) -> Result<Report, SimError> {
        match crate::runner::default_shards() {
            0 | 1 => self.machine()?.run(),
            shards => Ok(self.run_sharded(shards)?.0),
        }
    }

    /// Execute and also return the event trace (empty unless
    /// `machine.trace_capacity` is set). Tracing is ineligible for sharded
    /// execution, so a default-shards setting simply falls back when a
    /// trace buffer is configured.
    pub fn run_traced(&self) -> Result<(Report, oracle_model::Trace), SimError> {
        match crate::runner::default_shards() {
            0 | 1 => self.machine()?.run_traced(),
            shards => self.run_sharded(shards),
        }
    }

    /// Execute this configuration on `shards` shards of the parallel
    /// engine (ineligible configurations fall back to the sequential
    /// engine transparently; results are bit-identical either way).
    pub fn run_sharded(&self, shards: usize) -> Result<(Report, oracle_model::Trace), SimError> {
        oracle_model::run_parallel(&|| self.machine(), shards)
    }

    /// Execute and additionally check the computed result against the
    /// workload's analytic expectation.
    pub fn run_validated(&self) -> Result<Report, SimError> {
        let report = self.run()?;
        // Open-traffic runs have no single root result or analytic goal
        // count — every arrival spawns its own tree and the run ends on
        // the clock, not on a value.
        if self.machine.open.is_some() {
            return Ok(report);
        }
        if let Some(expected) = self.workload.build().expected_result() {
            if report.result != expected {
                return Err(SimError::InvalidConfig(format!(
                    "simulated result {} != expected {expected} for {}",
                    report.result, self.workload
                )));
            }
        }
        // Under a fault plan the goal count legitimately diverges (lost
        // goals, re-spawned subtrees) — only the result check applies.
        let faults_planned = !self.machine.fault_plan.is_empty() || self.machine.fail_pe.is_some();
        if !faults_planned {
            if let Some(goals) = self.workload.build().expected_goals() {
                if report.goals_created != goals {
                    return Err(SimError::InvalidConfig(format!(
                        "created {} goals, expected {goals} for {}",
                        report.goals_created, self.workload
                    )));
                }
            }
        }
        Ok(report)
    }
}

/// Fluent builder over [`RunConfig`].
///
/// Defaults: 10×10 grid, paper-parameter CWN, `fib(15)`, paper cost model,
/// default machine configuration (seed 1).
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    config: RunConfig,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// A builder with the documented defaults.
    pub fn new() -> Self {
        SimulationBuilder {
            config: RunConfig {
                topology: TopologySpec::grid(10),
                strategy: StrategySpec::cwn_paper(true),
                workload: WorkloadSpec::fib(15),
                costs: CostModel::paper_default(),
                machine: MachineConfig::default(),
            },
        }
    }

    /// Set the topology.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.config.topology = spec;
        self
    }

    /// Set the strategy.
    pub fn strategy(mut self, spec: StrategySpec) -> Self {
        self.config.strategy = spec;
        self
    }

    /// Set the workload.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.config.workload = spec;
        self
    }

    /// Set the cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.config.costs = costs;
        self
    }

    /// Replace the whole machine configuration.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.config.machine = machine;
        self
    }

    /// Set the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.machine.seed = seed;
        self
    }

    /// Set the utilization sampling interval (time units).
    pub fn sampling_interval(mut self, interval: u64) -> Self {
        self.config.machine.sampling_interval = interval;
        self
    }

    /// Keep per-PE utilization series in the report (load-monitor data).
    pub fn per_pe_series(mut self, keep: bool) -> Self {
        self.config.machine.per_pe_series = keep;
        self
    }

    /// Emit the O(num-PEs) per-PE vectors (`per_pe_utilization`,
    /// `per_pe_goals`) in the report. Off by default: the headline
    /// aggregates (quantile sketch, top-K) cover the common questions in
    /// O(1) space per PE.
    pub fn per_pe_metrics(mut self, keep: bool) -> Self {
        self.config.machine.per_pe_metrics = keep;
        self
    }

    /// Force the dense or sparse per-PE/per-channel state representation
    /// (the default, [`oracle_model::StateMode::Auto`], picks sparse past
    /// 64 Ki PEs).
    /// Both representations produce bit-identical reports.
    pub fn state_mode(mut self, mode: oracle_model::StateMode) -> Self {
        self.config.machine.state_mode = mode;
        self
    }

    /// Select the event-list backend (binary heap or calendar queue). Both
    /// produce bit-identical simulated results; this knob trades their
    /// throughput profiles only.
    pub fn queue_backend(mut self, backend: oracle_model::QueueBackend) -> Self {
        self.config.machine.queue_backend = backend;
        self
    }

    /// Keep a structured event trace of up to `capacity` events (retrieve
    /// it by running the config via [`RunConfig::run_traced`]).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.config.machine.trace_capacity = capacity;
        self
    }

    /// Choose what a full trace buffer does with further events: keep the
    /// first `trace_capacity` (the default) or ring-buffer the last.
    pub fn trace_mode(mut self, mode: oracle_model::TraceMode) -> Self {
        self.config.machine.trace_mode = mode;
        self
    }

    /// Run the engine profiler (per-event-kind counts and wall times,
    /// queue-depth high-water mark, control-tag counters) and attach its
    /// report as `Report::profile`. Wall times are nondeterministic — leave
    /// this off for runs whose reports are compared bit-for-bit.
    pub fn profile(mut self, enabled: bool) -> Self {
        self.config.machine.profile = enabled;
        self
    }

    /// Select instantaneous (oracle) neighbour-load information instead of
    /// the paper's piggy-backed/periodic load words.
    pub fn instant_load_info(mut self) -> Self {
        self.config.machine.load_info = LoadInfoMode::Instant;
        self
    }

    /// Set the periodic load-broadcast period (piggy-backing stays on).
    pub fn load_broadcast_period(mut self, period: u64) -> Self {
        self.config.machine.load_info = LoadInfoMode::Piggyback { period };
        self
    }

    /// Enable/disable the communication co-processor (§3.1).
    pub fn coprocessor(mut self, enabled: bool) -> Self {
        self.config.machine.coprocessor = enabled;
        self
    }

    /// Inject a deterministic fault plan (PE crashes, link windows, message
    /// loss, slowdowns — and optionally the recovery layer).
    pub fn fault_plan(mut self, plan: oracle_model::FaultPlan) -> Self {
        self.config.machine.fault_plan = plan;
        self
    }

    /// Run in the open-traffic regime: requests arrive per `traffic`'s
    /// arrival process (each spawning the workload's task tree) and the
    /// report carries steady-state sojourn metrics instead of a root
    /// result. `None` restores the classic closed run.
    pub fn open(mut self, traffic: Option<oracle_model::OpenTraffic>) -> Self {
        self.config.machine.open = traffic;
        self
    }

    /// Shorthand for [`SimulationBuilder::open`] with default windows: the
    /// given arrivals over `duration` time units, warmup of one tenth.
    pub fn arrivals(self, spec: oracle_model::ArrivalSpec, duration: u64) -> Self {
        self.open(Some(oracle_model::OpenTraffic::new(spec, duration)))
    }

    /// The assembled configuration (for batching via [`crate::runner`]).
    pub fn config(&self) -> RunConfig {
        self.config.clone()
    }

    /// Execute the run.
    pub fn run(self) -> Result<Report, SimError> {
        self.config.run()
    }

    /// Execute and validate against the workload's analytic result.
    pub fn run_validated(self) -> Result<Report, SimError> {
        self.config.run_validated()
    }

    /// Execute and also return the event trace (empty unless
    /// [`SimulationBuilder::trace_capacity`] was set).
    pub fn run_traced(self) -> Result<(Report, oracle_model::Trace), SimError> {
        self.config.run_traced()
    }
}

/// The paper's Table-1 strategy parameters for a given topology family:
/// `(CWN, GM)` specs. Grids use the grid column; DLMs (and everything else
/// with a comparably small diameter) use the lattice-mesh column; for
/// hypercubes — whose parameters the appendix does not state — CWN's radius
/// is the diameter (so goals can reach any PE, as on the other topologies)
/// with the grid column's horizon and water-marks.
pub fn paper_strategies(topology: &TopologySpec) -> (StrategySpec, StrategySpec) {
    match topology {
        TopologySpec::Mesh2D { .. } => (
            StrategySpec::cwn_paper(true),
            StrategySpec::gradient_paper(true),
        ),
        TopologySpec::Hypercube { dim } => (
            StrategySpec::Cwn {
                radius: *dim,
                horizon: 2.min(dim.saturating_sub(1)),
            },
            StrategySpec::gradient_paper(true),
        ),
        _ => (
            StrategySpec::cwn_paper(false),
            StrategySpec::gradient_paper(false),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_runs_and_validates() {
        let report = SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .workload(WorkloadSpec::fib(10))
            .strategy(StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            })
            .seed(7)
            .run_validated()
            .unwrap();
        assert_eq!(report.result, 55);
        assert_eq!(report.num_pes, 16);
        report.check_invariants();
    }

    #[test]
    fn validation_catches_mismatched_result() {
        // A direct run of a correct config validates fine; the validation
        // failure path is exercised by giving dc a workload whose analytic
        // result is known and corrupting is impossible from outside — so we
        // simply check run_validated() == run() on a good config.
        let cfg = SimulationBuilder::new()
            .topology(TopologySpec::Ring { n: 4 })
            .workload(WorkloadSpec::dc(21))
            .strategy(StrategySpec::Local)
            .config();
        let a = cfg.run().unwrap();
        let b = cfg.run_validated().unwrap();
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.result, 231);
    }

    #[test]
    fn paper_strategy_selection() {
        let (cwn, gm) = paper_strategies(&TopologySpec::grid(10));
        assert_eq!(
            cwn,
            StrategySpec::Cwn {
                radius: 9,
                horizon: 1
            }
        );
        assert_eq!(
            gm,
            StrategySpec::Gradient {
                low_water_mark: 1,
                high_water_mark: 2,
                interval: 20
            }
        );

        let (cwn, _) = paper_strategies(&TopologySpec::dlm(10));
        assert_eq!(
            cwn,
            StrategySpec::Cwn {
                radius: 5,
                horizon: 1
            }
        );

        let (cwn, _) = paper_strategies(&TopologySpec::Hypercube { dim: 6 });
        assert_eq!(
            cwn,
            StrategySpec::Cwn {
                radius: 6,
                horizon: 2
            }
        );
    }

    #[test]
    fn builder_knobs_apply() {
        let cfg = SimulationBuilder::new()
            .seed(99)
            .sampling_interval(42)
            .per_pe_series(true)
            .coprocessor(false)
            .config();
        assert_eq!(cfg.machine.seed, 99);
        assert_eq!(cfg.machine.sampling_interval, 42);
        assert!(cfg.machine.per_pe_series);
        assert!(!cfg.machine.coprocessor);
    }
}
