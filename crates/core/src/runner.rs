//! Deterministic parallel execution of simulation batches.
//!
//! The paper's 240 comparison runs took "between 15 minutes to 3 hours" each
//! on a VAX-750; ours take milliseconds to seconds, and since every run is a
//! pure function of its [`RunSpec`], a batch is embarrassingly parallel.
//! Results come back in input order regardless of scheduling, so harness
//! output is reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};

use oracle_model::{Report, SimError};
use parking_lot::Mutex;

use crate::builder::RunConfig;

/// One entry of a batch: a label (carried through to the results) plus the
/// full run configuration.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Caller-defined label identifying the run in the batch output.
    pub label: String,
    /// The run configuration.
    pub config: RunConfig,
}

impl RunSpec {
    /// A labelled run.
    pub fn new(label: impl Into<String>, config: RunConfig) -> Self {
        RunSpec {
            label: label.into(),
            config,
        }
    }
}

/// Run every spec (validated against analytic results), in parallel, and
/// return the reports in input order.
pub fn run_batch(specs: &[RunSpec]) -> Vec<(String, Result<Report, SimError>)> {
    run_batch_with_threads(specs, default_threads())
}

/// Process-wide override for [`default_threads`]; 0 means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The `--threads` grammar, quoted by every rejection of an invalid count
/// so the message itself teaches the rule.
pub const THREADS_GRAMMAR: &str = "--threads N (N >= 1; omit the flag for auto)";

/// Set the worker-thread count every subsequent [`run_batch`] uses — the
/// hook behind the CLI's `--threads N` flag, which has to reach batches
/// buried inside the experiment harnesses without threading a parameter
/// through every table/plot signature. Thread count never affects results,
/// only wall clock: `run_batch` writes each result into its input slot.
/// Undo with [`clear_default_threads`].
///
/// # Panics
///
/// Panics on `threads == 0`: zero used to fall back to "auto" silently,
/// which swallowed typos like `--threads $UNSET_VAR`. The valid grammar is
/// [`THREADS_GRAMMAR`].
pub fn set_default_threads(threads: usize) {
    assert!(
        threads >= 1,
        "thread count 0 is not a degree of parallelism; use {THREADS_GRAMMAR}"
    );
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Remove the [`set_default_threads`] override: [`default_threads`] returns
/// to the machine's available parallelism.
pub fn clear_default_threads() {
    THREAD_OVERRIDE.store(0, Ordering::Relaxed);
}

/// Process-wide default shard count for single-run execution; 0 means "not
/// set" (sequential). Distinct from [`THREAD_OVERRIDE`]: threads spread a
/// *batch* across runs, shards split *one run* across workers. The two
/// compose — each batch worker may itself run sharded — but oversubscribing
/// a small machine with both rarely pays.
static SHARD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set the shard count every subsequent [`RunConfig::run`][crate::builder::RunConfig::run]
/// uses — the hook behind the CLI's `--shards N|auto` flag. Values of 0 or
/// 1 select the sequential engine (there is nothing invalid about them:
/// one shard *is* sequential execution). Shard count never affects results
/// — the parallel engine is bit-identical, and ineligible configurations
/// fall back to sequential execution transparently.
pub fn set_default_shards(shards: usize) {
    SHARD_OVERRIDE.store(shards, Ordering::Relaxed);
}

/// Remove the [`set_default_shards`] override: runs go back to the
/// sequential engine.
pub fn clear_default_shards() {
    SHARD_OVERRIDE.store(0, Ordering::Relaxed);
}

/// Shard count single runs use by default: the [`set_default_shards`]
/// value if set, else 1 (sequential).
pub fn default_shards() -> usize {
    SHARD_OVERRIDE.load(Ordering::Relaxed).max(1)
}

/// Number of worker threads used by [`run_batch`]: the
/// [`set_default_threads`] override if one is set, else the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// [`run_batch`] with an explicit thread count (1 = fully sequential).
///
/// # Panics
///
/// Panics on `threads == 0` (formerly clamped to 1 silently — a zero here
/// is always a caller bug, e.g. an empty env var parsed as 0). The valid
/// grammar is [`THREADS_GRAMMAR`].
pub fn run_batch_with_threads(
    specs: &[RunSpec],
    threads: usize,
) -> Vec<(String, Result<Report, SimError>)> {
    assert!(
        threads >= 1,
        "thread count 0 is not a degree of parallelism; use {THREADS_GRAMMAR}"
    );
    let threads = threads.min(specs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<Report, SimError>>>> =
        specs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let result = specs[i].config.run_validated();
                *slots[i].lock() = Some(result);
            });
        }
    });

    specs
        .iter()
        .zip(slots)
        .map(|(spec, slot)| {
            let result = slot
                .into_inner()
                .expect("every batch slot is filled before scope exit");
            (spec.label.clone(), result)
        })
        .collect()
}

/// Summary of one configuration run under several seeds: quantifies how
/// much of a measured effect is placement luck vs mechanism.
#[derive(Debug, Clone)]
pub struct SeedSummary {
    /// Speedups observed, one per seed (in seed order).
    pub speedups: Vec<f64>,
    /// Completion times observed.
    pub completion_times: Vec<u64>,
    /// Aggregate statistics over the speedups.
    pub stats: oracle_des::OnlineStats,
}

impl SeedSummary {
    /// Mean speedup across seeds.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Population standard deviation of the speedups.
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Relative spread: std-dev over mean (0 = fully seed-independent).
    pub fn relative_spread(&self) -> f64 {
        if self.mean() > 0.0 {
            self.std_dev() / self.mean()
        } else {
            0.0
        }
    }

    /// Half-width of the ~95% confidence interval on the mean speedup
    /// (normal approximation, 1.96 standard errors).
    pub fn confidence95(&self) -> f64 {
        let n = self.speedups.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        1.96 * self.std_dev() / n.sqrt()
    }
}

/// Run `config` under seeds `0..n_seeds` (offset by `base_seed`) in
/// parallel and summarize the speedups.
///
/// # Panics
///
/// Panics if `n_seeds == 0` or any run fails — seed sweeps are measurement
/// tools; a failing configuration should be debugged with a single run.
pub fn seed_sweep(config: RunConfig, base_seed: u64, n_seeds: u64) -> SeedSummary {
    assert!(n_seeds > 0, "need at least one seed");
    let specs: Vec<RunSpec> = (0..n_seeds)
        .map(|i| {
            let mut c = config.clone();
            c.machine.seed = base_seed + i;
            RunSpec::new(format!("seed {}", base_seed + i), c)
        })
        .collect();
    let mut speedups = Vec::with_capacity(specs.len());
    let mut completion_times = Vec::with_capacity(specs.len());
    let mut stats = oracle_des::OnlineStats::new();
    for (label, result) in run_batch(&specs) {
        let r = result.unwrap_or_else(|e| panic!("{label}: {e}"));
        stats.record(r.speedup);
        speedups.push(r.speedup);
        completion_times.push(r.completion_time);
    }
    SeedSummary {
        speedups,
        completion_times,
        stats,
    }
}

/// Duration of a suite-line open run when `duration=` is not given.
pub const DEFAULT_OPEN_DURATION: u64 = 20_000;

/// Parse a batch-suite description into run specs.
///
/// One run per non-empty, non-`#` line:
///
/// ```text
/// # topology   strategy   workload   [seed=N] [faults=PLAN] [arrivals=SPEC] [duration=T] [warmup=T]
/// #                                  [deadline=T] [retry=MAXxBASE] [admission=POLICY] [breaker=T]
/// grid:10      cwn:9x1    fib:15
/// grid:10      gm:1x2x20  fib:15     seed=7
/// dlm:10       cwn:5x1    dc:987
/// grid:6       cwn:5x1    fib:12     seed=3   faults=crash:7@400+loss:1%+recover:500x8
/// grid:6       cwn:5x1    fib:10     arrivals=poisson:4 duration=20000
/// grid:6       cwn:5x1    fib:10     arrivals=poisson:40 deadline=800 retry=3x100 admission=queue:8
/// ```
///
/// `arrivals=` switches the line to the open-traffic regime (see
/// [`oracle_model::open`]); `duration=`/`warmup=` set its measurement
/// windows (defaults: 20000 and one tenth of the duration). The
/// overload-protection knobs — `deadline=` (per-request deadline),
/// `retry=` (cap × base backoff), `admission=`
/// (`queue:MAX`/`util:FRACTION`/`bucket:RATExBURST`), and `breaker=`
/// (circuit-breaker cooldown) — also require `arrivals=` on the same
/// line.
///
/// Labels are generated from the three specs. Errors name the offending
/// line.
pub fn parse_suite(text: &str) -> Result<Vec<RunSpec>, String> {
    let mut specs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if !(3..=12).contains(&fields.len()) {
            return Err(format!(
                "line {}: expected `topology strategy workload [seed=N] [faults=PLAN] \
                 [arrivals=SPEC] [duration=T] [warmup=T] [deadline=T] [retry=MAXxBASE] \
                 [admission=POLICY] [breaker=T]`, got {raw:?}",
                lineno + 1
            ));
        }
        let err = |what: &str, e: String| format!("line {}: bad {what}: {e}", lineno + 1);
        let topology: oracle_topo::TopologySpec = fields[0]
            .parse()
            .map_err(|e: oracle_topo::spec::ParseSpecError| err("topology", e.to_string()))?;
        let strategy: oracle_strategies::StrategySpec =
            fields[1]
                .parse()
                .map_err(|e: oracle_strategies::spec::ParseStrategyError| {
                    err("strategy", e.to_string())
                })?;
        let workload: oracle_workloads::WorkloadSpec =
            fields[2]
                .parse()
                .map_err(|e: oracle_workloads::spec::ParseWorkloadError| {
                    err("workload", e.to_string())
                })?;
        let mut config = crate::builder::SimulationBuilder::new()
            .topology(topology)
            .strategy(strategy)
            .workload(workload)
            .config();
        let mut label_suffix = String::new();
        let mut arrivals: Option<oracle_model::ArrivalSpec> = None;
        let mut duration: Option<u64> = None;
        let mut warmup: Option<u64> = None;
        let mut deadline: Option<u64> = None;
        let mut retry: Option<oracle_model::RetryPolicy> = None;
        let mut admission: Option<oracle_model::AdmissionPolicy> = None;
        let mut breaker: Option<u64> = None;
        for extra in &fields[3..] {
            if let Some(v) = extra.strip_prefix("seed=") {
                config.machine.seed = v
                    .parse()
                    .map_err(|_| err("seed", format!("{extra:?} (expected seed=N)")))?;
            } else if let Some(v) = extra.strip_prefix("faults=") {
                config.machine.fault_plan =
                    v.parse()
                        .map_err(|e: oracle_model::faults::ParseFaultPlanError| {
                            err("faults", format!("{v:?}: {e}"))
                        })?;
                label_suffix.push_str(&format!(" faults={v}"));
            } else if let Some(v) = extra.strip_prefix("arrivals=") {
                arrivals = Some(v.parse().map_err(|e: oracle_model::ParseArrivalError| {
                    err("arrivals", e.to_string())
                })?);
                label_suffix.push_str(&format!(" arrivals={v}"));
            } else if let Some(v) = extra.strip_prefix("duration=") {
                duration =
                    Some(v.parse().map_err(|_| {
                        err("duration", format!("{extra:?} (expected duration=T)"))
                    })?);
            } else if let Some(v) = extra.strip_prefix("warmup=") {
                warmup = Some(
                    v.parse()
                        .map_err(|_| err("warmup", format!("{extra:?} (expected warmup=T)")))?,
                );
            } else if let Some(v) = extra.strip_prefix("deadline=") {
                deadline =
                    Some(v.parse().map_err(|_| {
                        err("deadline", format!("{extra:?} (expected deadline=T)"))
                    })?);
                label_suffix.push_str(&format!(" deadline={v}"));
            } else if let Some(v) = extra.strip_prefix("retry=") {
                retry =
                    Some(v.parse().map_err(|e: oracle_model::ParseOverloadError| {
                        err("retry", e.to_string())
                    })?);
                label_suffix.push_str(&format!(" retry={v}"));
            } else if let Some(v) = extra.strip_prefix("admission=") {
                admission = Some(v.parse().map_err(|e: oracle_model::ParseOverloadError| {
                    err("admission", e.to_string())
                })?);
                label_suffix.push_str(&format!(" admission={v}"));
            } else if let Some(v) = extra.strip_prefix("breaker=") {
                breaker = Some(
                    v.parse()
                        .map_err(|_| err("breaker", format!("{extra:?} (expected breaker=T)")))?,
                );
                label_suffix.push_str(&format!(" breaker={v}"));
            } else {
                return Err(err(
                    "field",
                    format!(
                        "{extra:?} (expected seed=N, faults=PLAN, arrivals=SPEC, duration=T, \
                         warmup=T, deadline=T, retry=MAXxBASE, admission=POLICY, or breaker=T)"
                    ),
                ));
            }
        }
        match arrivals {
            Some(spec) => {
                let mut open =
                    oracle_model::OpenTraffic::new(spec, duration.unwrap_or(DEFAULT_OPEN_DURATION));
                if let Some(w) = warmup {
                    open.warmup = w;
                }
                open.deadline = deadline;
                open.retry = retry;
                open.admission = admission;
                open.breaker = breaker;
                config.machine.open = Some(open);
            }
            None if duration.is_some()
                || warmup.is_some()
                || deadline.is_some()
                || retry.is_some()
                || admission.is_some()
                || breaker.is_some() =>
            {
                return Err(err(
                    "field",
                    "duration=/warmup=/deadline=/retry=/admission=/breaker= require \
                     arrivals=SPEC on the same line"
                        .into(),
                ));
            }
            None => {}
        }
        specs.push(RunSpec::new(
            format!("{} {} {}{label_suffix}", fields[0], fields[1], fields[2]),
            config,
        ));
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SimulationBuilder;
    use oracle_strategies::StrategySpec;
    use oracle_topo::TopologySpec;
    use oracle_workloads::WorkloadSpec;

    fn spec(n: i64, seed: u64) -> RunSpec {
        RunSpec::new(
            format!("fib{n}-s{seed}"),
            SimulationBuilder::new()
                .topology(TopologySpec::grid(4))
                .strategy(StrategySpec::Cwn {
                    radius: 4,
                    horizon: 1,
                })
                .workload(WorkloadSpec::fib(n))
                .seed(seed)
                .config(),
        )
    }

    #[test]
    fn batch_preserves_order_and_labels() {
        let specs: Vec<RunSpec> = (8..14).map(|n| spec(n, 1)).collect();
        let results = run_batch(&specs);
        assert_eq!(results.len(), 6);
        for (i, (label, report)) in results.iter().enumerate() {
            assert_eq!(label, &specs[i].label);
            report.as_ref().unwrap().check_invariants();
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let specs: Vec<RunSpec> = (8..12).map(|n| spec(n, 3)).collect();
        let par = run_batch_with_threads(&specs, 4);
        let seq = run_batch_with_threads(&specs, 1);
        for ((_, a), (_, b)) in par.iter().zip(&seq) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.completion_time, b.completion_time);
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(&[]).is_empty());
    }

    #[test]
    fn thread_override_is_respected_and_clearable() {
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        clear_default_threads();
        assert!(
            default_threads() >= 1,
            "cleared must mean auto, not zero workers"
        );
    }

    #[test]
    fn zero_threads_is_rejected_loudly() {
        let err = std::panic::catch_unwind(|| set_default_threads(0))
            .expect_err("thread count 0 must panic, not silently mean auto");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains(THREADS_GRAMMAR),
            "rejection must cite the grammar, got: {msg}"
        );
        assert!(std::panic::catch_unwind(|| run_batch_with_threads(&[], 0)).is_err());
    }

    #[test]
    fn shard_override_is_respected_and_clearable() {
        set_default_shards(4);
        assert_eq!(default_shards(), 4);
        clear_default_shards();
        assert_eq!(default_shards(), 1, "default is the sequential engine");
    }

    #[test]
    fn seed_sweep_summarizes() {
        let config = SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            })
            .workload(WorkloadSpec::fib(11))
            .config();
        let s = seed_sweep(config, 1, 6);
        assert_eq!(s.speedups.len(), 6);
        assert!(s.mean() > 1.0);
        // Different seeds produce different runs, but not wildly different.
        assert!(s.std_dev() > 0.0, "seeds had no effect at all");
        assert!(
            s.relative_spread() < 0.5,
            "speedup should be mechanism-driven, spread = {}",
            s.relative_spread()
        );
    }

    #[test]
    fn confidence_interval_shrinks_with_more_seeds() {
        let config = SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            })
            .workload(WorkloadSpec::fib(10))
            .config();
        let few = seed_sweep(config.clone(), 1, 3);
        let many = seed_sweep(config.clone(), 1, 12);
        assert!(many.confidence95() < few.confidence95() * 1.5);
        assert!(few.confidence95() > 0.0);
        assert_eq!(seed_sweep(config, 1, 1).confidence95(), 0.0);
    }

    #[test]
    fn parse_suite_accepts_comments_and_seeds() {
        let text = "\n# a comment\ngrid:4 cwn:4x1 fib:10\nring:5 local fib:8 seed=9 # inline\n";
        let specs = parse_suite(text).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].label, "grid:4 cwn:4x1 fib:10");
        assert_eq!(specs[1].config.machine.seed, 9);
        // And the parsed suite actually runs.
        for (label, r) in run_batch(&specs) {
            r.unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn parse_suite_reports_line_numbers() {
        let err = parse_suite("grid:4 cwn:4x1 fib:10\nbogus line\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_suite("nonsense:4 cwn:4x1 fib:10").unwrap_err();
        assert!(err.contains("bad topology"), "{err}");
        let err = parse_suite("grid:4 cwn:4x1 fib:10 sneed=2").unwrap_err();
        assert!(err.contains("seed=N, faults=PLAN"), "{err}");
        let err = parse_suite("grid:4 cwn:4x1 fib:10 faults=crash:zz").unwrap_err();
        assert!(err.contains("bad faults"), "{err}");
    }

    #[test]
    fn parse_suite_accepts_fault_plans() {
        let text = "grid:6 cwn:5x1 fib:10 seed=3 faults=crash:7@400+recover:500x8\n";
        let specs = parse_suite(text).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].config.machine.seed, 3);
        assert_eq!(specs[0].config.machine.fault_plan.pe_crashes.len(), 1);
        assert!(specs[0].config.machine.fault_plan.recovery.is_some());
        assert!(specs[0].label.contains("faults="), "{}", specs[0].label);
        // Order of the trailing fields must not matter.
        let swapped =
            parse_suite("grid:6 cwn:5x1 fib:10 faults=crash:7@400+recover:500x8 seed=3\n").unwrap();
        assert_eq!(swapped[0].config, specs[0].config);
    }

    #[test]
    fn parse_suite_accepts_open_arrivals() {
        let text = "grid:4 cwn:4x1 fib:8 arrivals=poisson:3 duration=4000 warmup=500 seed=2\n";
        let specs = parse_suite(text).unwrap();
        assert_eq!(specs.len(), 1);
        let open = specs[0].config.machine.open.as_ref().unwrap();
        assert_eq!(open.duration, 4000);
        assert_eq!(open.warmup, 500);
        assert_eq!(open.arrivals.to_string(), "poisson:3");
        assert_eq!(specs[0].config.machine.seed, 2);
        assert!(specs[0].label.contains("arrivals="), "{}", specs[0].label);

        // Default duration/warmup apply when omitted.
        let specs = parse_suite("grid:4 cwn:4x1 fib:8 arrivals=poisson:3\n").unwrap();
        let open = specs[0].config.machine.open.as_ref().unwrap();
        assert_eq!(open.duration, DEFAULT_OPEN_DURATION);
        assert_eq!(open.warmup, DEFAULT_OPEN_DURATION / 10);

        // And an open suite line actually runs to a report with metrics.
        let specs = parse_suite("grid:4 cwn:4x1 fib:8 arrivals=poisson:2 duration=2000\n").unwrap();
        for (label, r) in run_batch(&specs) {
            let r = r.unwrap_or_else(|e| panic!("{label}: {e}"));
            assert!(r.open.is_some(), "{label}: no open metrics");
        }
    }

    #[test]
    fn parse_suite_rejects_bad_open_fields() {
        let err = parse_suite("grid:4 cwn:4x1 fib:8 arrivals=nope:3\n").unwrap_err();
        assert!(err.contains("bad arrivals"), "{err}");
        assert!(err.contains("poisson:RATE"), "{err}");
        let err = parse_suite("grid:4 cwn:4x1 fib:8 duration=4000\n").unwrap_err();
        assert!(err.contains("require arrivals"), "{err}");
        let err = parse_suite("grid:4 cwn:4x1 fib:8 arrivals=poisson:3 duration=zz\n").unwrap_err();
        assert!(err.contains("bad duration"), "{err}");
    }

    #[test]
    fn parse_suite_accepts_overload_knobs() {
        let text = "grid:4 cwn:4x1 fib:8 arrivals=poisson:30 deadline=800 retry=3x100 \
                    admission=queue:8 breaker=400\n";
        let specs = parse_suite(text).unwrap();
        assert_eq!(specs.len(), 1);
        let open = specs[0].config.machine.open.as_ref().unwrap();
        assert_eq!(open.deadline, Some(800));
        assert_eq!(open.retry.as_ref().unwrap().to_string(), "3x100");
        assert_eq!(open.admission.as_ref().unwrap().to_string(), "queue:8");
        assert_eq!(open.breaker, Some(400));
        for knob in [
            "deadline=800",
            "retry=3x100",
            "admission=queue:8",
            "breaker=400",
        ] {
            assert!(specs[0].label.contains(knob), "{}", specs[0].label);
        }

        // All three admission grammars parse.
        for policy in ["util:0.8", "bucket:12x5"] {
            let line = format!("grid:4 cwn:4x1 fib:8 arrivals=poisson:3 admission={policy}\n");
            let specs = parse_suite(&line).unwrap();
            let open = specs[0].config.machine.open.as_ref().unwrap();
            assert_eq!(open.admission.as_ref().unwrap().to_string(), policy);
        }
    }

    #[test]
    fn parse_suite_rejects_bad_overload_fields() {
        let err = parse_suite("grid:4 cwn:4x1 fib:8 deadline=800\n").unwrap_err();
        assert!(err.contains("require arrivals"), "{err}");
        let err = parse_suite("grid:4 cwn:4x1 fib:8 admission=queue:8\n").unwrap_err();
        assert!(err.contains("require arrivals"), "{err}");
        let err = parse_suite("grid:4 cwn:4x1 fib:8 arrivals=poisson:3 retry=zz\n").unwrap_err();
        assert!(err.contains("bad retry"), "{err}");
        let err =
            parse_suite("grid:4 cwn:4x1 fib:8 arrivals=poisson:3 admission=magic:9\n").unwrap_err();
        assert!(err.contains("bad admission"), "{err}");
        let err =
            parse_suite("grid:4 cwn:4x1 fib:8 arrivals=poisson:3 deadline=soon\n").unwrap_err();
        assert!(err.contains("bad deadline"), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_sweep_panics() {
        let config = SimulationBuilder::new().config();
        seed_sweep(config, 0, 0);
    }
}
