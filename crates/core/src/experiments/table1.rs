//! Table 1 — the parameter-optimization pre-experiments.
//!
//! "In the interest of fairness, the parameters must be chosen in such a way
//! each scheme is working at its best. We chose a few sample points in the
//! space of planned experiments, and ran the simulations for various
//! combination of parameters. The winning combinations were used for the
//! comparison experiments."

use oracle_model::MachineConfig;
use oracle_strategies::StrategySpec;
use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;

use super::Fidelity;
use crate::builder::SimulationBuilder;
use crate::runner::{run_batch, RunSpec};
use crate::table::{f2, Table};

/// Mean speedup of one parameter combination over the sample points.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// The candidate parameterization.
    pub strategy: StrategySpec,
    /// Mean speedup across the sample points.
    pub mean_speedup: f64,
}

/// The optimization result for one topology family.
#[derive(Debug, Clone)]
pub struct Optimization {
    /// Family name ("grid" or "dlm").
    pub family: &'static str,
    /// All CWN candidates, best first.
    pub cwn_sweep: Vec<SweepEntry>,
    /// All GM candidates, best first.
    pub gm_sweep: Vec<SweepEntry>,
}

impl Optimization {
    /// The winning CWN parameterization.
    pub fn best_cwn(&self) -> StrategySpec {
        self.cwn_sweep[0].strategy
    }

    /// The winning GM parameterization.
    pub fn best_gm(&self) -> StrategySpec {
        self.gm_sweep[0].strategy
    }
}

/// Sample points for one family at one fidelity.
fn sample_points(fidelity: Fidelity, grid: bool) -> (TopologySpec, Vec<WorkloadSpec>) {
    match fidelity {
        Fidelity::Paper => (
            if grid {
                TopologySpec::grid(10)
            } else {
                TopologySpec::dlm(10)
            },
            vec![WorkloadSpec::fib(13), WorkloadSpec::dc(377)],
        ),
        Fidelity::Quick => (
            if grid {
                TopologySpec::grid(4)
            } else {
                TopologySpec::dlm(5)
            },
            vec![WorkloadSpec::fib(10)],
        ),
    }
}

/// Candidate CWN parameterizations for a family.
fn cwn_candidates(fidelity: Fidelity, grid: bool) -> Vec<StrategySpec> {
    let (radii, horizons): (&[u32], &[u32]) = match (fidelity, grid) {
        (Fidelity::Paper, true) => (&[3, 5, 7, 9, 11], &[0, 1, 2, 3]),
        (Fidelity::Paper, false) => (&[2, 3, 5, 7], &[0, 1, 2]),
        (Fidelity::Quick, _) => (&[3, 5], &[1, 2]),
    };
    let mut v = Vec::new();
    for &radius in radii {
        for &horizon in horizons {
            if horizon < radius {
                v.push(StrategySpec::Cwn { radius, horizon });
            }
        }
    }
    v
}

/// Candidate GM parameterizations.
fn gm_candidates(fidelity: Fidelity) -> Vec<StrategySpec> {
    let (lwms, hwms, intervals): (&[u32], &[u32], &[u64]) = match fidelity {
        Fidelity::Paper => (&[1, 2], &[1, 2, 3], &[10, 20, 40]),
        Fidelity::Quick => (&[1], &[1, 2], &[20]),
    };
    let mut v = Vec::new();
    for &lwm in lwms {
        for &hwm in hwms {
            if hwm < lwm {
                continue;
            }
            for &interval in intervals {
                v.push(StrategySpec::Gradient {
                    low_water_mark: lwm,
                    high_water_mark: hwm,
                    interval,
                });
            }
        }
    }
    v
}

/// Sweep one candidate list over the sample points, best first.
fn sweep(
    topology: TopologySpec,
    workloads: &[WorkloadSpec],
    candidates: Vec<StrategySpec>,
    seed: u64,
) -> Vec<SweepEntry> {
    let mut specs = Vec::new();
    for &strategy in &candidates {
        for &w in workloads {
            specs.push(RunSpec::new(
                format!("{strategy}/{w}"),
                SimulationBuilder::new()
                    .topology(topology)
                    .strategy(strategy)
                    .workload(w)
                    .machine(MachineConfig::default().with_seed(seed))
                    .config(),
            ));
        }
    }
    let results = run_batch(&specs);
    let mut entries: Vec<SweepEntry> = candidates
        .iter()
        .enumerate()
        .map(|(i, &strategy)| {
            let base = i * workloads.len();
            let sum: f64 = (0..workloads.len())
                .map(|j| {
                    results[base + j]
                        .1
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{}: {e}", results[base + j].0))
                        .speedup
                })
                .sum();
            SweepEntry {
                strategy,
                mean_speedup: sum / workloads.len() as f64,
            }
        })
        .collect();
    entries.sort_by(|a, b| b.mean_speedup.total_cmp(&a.mean_speedup));
    entries
}

/// Run the optimization pre-experiments for one topology family.
pub fn optimize(fidelity: Fidelity, grid: bool, seed: u64) -> Optimization {
    let (topology, workloads) = sample_points(fidelity, grid);
    Optimization {
        family: if grid { "grid" } else { "dlm" },
        cwn_sweep: sweep(topology, &workloads, cwn_candidates(fidelity, grid), seed),
        gm_sweep: sweep(topology, &workloads, gm_candidates(fidelity), seed),
    }
}

/// Render the winning parameters in the layout of the paper's Table 1.
pub fn render(grid: &Optimization, dlm: &Optimization) -> Table {
    let mut table = Table::new(
        "Selected parameters (paper Table 1)",
        &["parameter", "grid topologies", "lattice-meshes"],
    );
    let get = |s: StrategySpec| match s {
        StrategySpec::Cwn { radius, horizon } => (radius.to_string(), horizon.to_string()),
        _ => unreachable!("cwn sweep yields cwn specs"),
    };
    let (g_r, g_h) = get(grid.best_cwn());
    let (d_r, d_h) = get(dlm.best_cwn());
    table.row(vec!["CWN: radius".into(), g_r, d_r]);
    table.row(vec!["CWN: horizon".into(), g_h, d_h]);
    let getg = |s: StrategySpec| match s {
        StrategySpec::Gradient {
            low_water_mark,
            high_water_mark,
            interval,
        } => (
            high_water_mark.to_string(),
            low_water_mark.to_string(),
            interval.to_string(),
        ),
        _ => unreachable!("gm sweep yields gm specs"),
    };
    let (g_hwm, g_lwm, g_int) = getg(grid.best_gm());
    let (d_hwm, d_lwm, d_int) = getg(dlm.best_gm());
    table.row(vec!["GM: high-water-mark".into(), g_hwm, d_hwm]);
    table.row(vec!["GM: low-water-mark".into(), g_lwm, d_lwm]);
    table.row(vec!["GM: interval".into(), g_int, d_int]);
    table
}

/// Render a full sweep (diagnostic output behind the selection).
pub fn render_sweep(title: &str, entries: &[SweepEntry]) -> Table {
    let mut table = Table::new(title, &["parameters", "mean speedup"]);
    for e in entries {
        table.row(vec![e.strategy.to_string(), f2(e.mean_speedup)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_optimization_runs() {
        let grid = optimize(Fidelity::Quick, true, 1);
        assert_eq!(grid.cwn_sweep.len(), 4);
        assert_eq!(grid.gm_sweep.len(), 2);
        // Sorted best-first.
        assert!(grid.cwn_sweep[0].mean_speedup >= grid.cwn_sweep[1].mean_speedup);
        assert!(matches!(grid.best_cwn(), StrategySpec::Cwn { .. }));
        assert!(matches!(grid.best_gm(), StrategySpec::Gradient { .. }));
    }

    #[test]
    fn render_produces_five_parameter_rows() {
        let grid = optimize(Fidelity::Quick, true, 1);
        let dlm = optimize(Fidelity::Quick, false, 1);
        let t = render(&grid, &dlm);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn candidate_sets_respect_constraints() {
        for c in cwn_candidates(Fidelity::Paper, true) {
            if let StrategySpec::Cwn { radius, horizon } = c {
                assert!(horizon < radius);
            }
        }
        for c in gm_candidates(Fidelity::Paper) {
            if let StrategySpec::Gradient {
                low_water_mark,
                high_water_mark,
                ..
            } = c
            {
                assert!(low_water_mark <= high_water_mark);
            }
        }
    }
}
