//! Presets regenerating every table and figure of the paper's evaluation.
//!
//! | Paper item | Module / function |
//! |---|---|
//! | Table 1 (selected parameters) | [`table1::optimize`] |
//! | Table 2 (speedup of CWN over GM, 120 cells) | [`table2::run`] |
//! | Table 3 (distribution of message distances) | [`table3::run`] |
//! | Plots 1–10 (utilization vs #goals, dc) | [`plots::util_vs_goals`] |
//! | fib analogues ("very similar, so we omit them") | [`plots::util_vs_goals`] |
//! | Plots 11–16 (utilization vs time, fib) | [`plots::util_vs_time`] |
//! | Appendix A-1..A-8 (hypercubes) | [`appendix`] |
//! | §5 design-choice ablations | [`ablations`] |
//! | Resilience under faults (extension) | [`resilience`] |
//! | Open-traffic capacity search (extension) | [`capacity`] |
//! | Graceful degradation under overload (extension) | [`degradation`] |
//!
//! Every function takes a [`Fidelity`]: `Paper` reruns the full
//! configuration grid (minutes), `Quick` a miniature that exercises the same
//! code paths in well under a second (used by tests and Criterion benches).

pub mod ablations;
pub mod appendix;
pub mod capacity;
pub mod degradation;
pub mod plots;
pub mod resilience;
pub mod table1;
pub mod table2;
pub mod table3;

use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;

/// Scale of an experiment preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// The paper's full configuration grid.
    Paper,
    /// A miniature of the same experiment for tests and micro-benchmarks.
    Quick,
}

impl Fidelity {
    /// The paper's five square-grid sides (25–400 PEs), or a miniature.
    pub fn grid_sides(self) -> &'static [usize] {
        match self {
            Fidelity::Paper => &[5, 8, 10, 16, 20],
            Fidelity::Quick => &[4, 5],
        }
    }

    /// Fibonacci problem sizes.
    pub fn fib_sizes(self) -> &'static [i64] {
        match self {
            Fidelity::Paper => &oracle_workloads::PAPER_FIB_SIZES,
            Fidelity::Quick => &[9, 11],
        }
    }

    /// Divide-and-conquer problem sizes (`dc(1, x)`).
    pub fn dc_sizes(self) -> &'static [i64] {
        match self {
            Fidelity::Paper => &oracle_workloads::PAPER_DC_SIZES,
            Fidelity::Quick => &[21, 55],
        }
    }

    /// Hypercube dimensions (appendix experiments).
    pub fn hypercube_dims(self) -> &'static [u32] {
        match self {
            Fidelity::Paper => &[5, 6, 7],
            Fidelity::Quick => &[3, 4],
        }
    }
}

/// The two paper topology families, by square side.
pub fn paper_topologies(side: usize) -> [TopologySpec; 2] {
    [TopologySpec::grid(side), TopologySpec::dlm(side)]
}

/// The paper's twelve workloads (6 dc + 6 fib), paired by goal count.
pub fn paper_workloads() -> Vec<WorkloadSpec> {
    let mut v: Vec<WorkloadSpec> = oracle_workloads::PAPER_DC_SIZES
        .iter()
        .map(|&x| WorkloadSpec::dc(x))
        .collect();
    v.extend(
        oracle_workloads::PAPER_FIB_SIZES
            .iter()
            .map(|&n| WorkloadSpec::fib(n)),
    );
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_scales() {
        assert_eq!(Fidelity::Paper.grid_sides().len(), 5);
        assert_eq!(Fidelity::Quick.grid_sides().len(), 2);
        assert_eq!(Fidelity::Paper.fib_sizes(), &[7, 9, 11, 13, 15, 18]);
    }

    #[test]
    fn paper_workloads_are_twelve() {
        assert_eq!(paper_workloads().len(), 12);
    }

    #[test]
    fn topology_pairs() {
        let [grid, dlm] = paper_topologies(10);
        assert_eq!(grid.num_pes(), 100);
        assert_eq!(dlm.num_pes(), 100);
    }
}
