//! Graceful degradation — goodput under overload and faults, protected vs
//! unprotected, CWN vs GM.
//!
//! The robustness analogue of the capacity search: instead of asking how
//! much traffic the machine *can* carry, offer it more than it can carry
//! (roughly 2–8× the measured capacity knee), crash a growing fraction of
//! the PEs mid-window, and measure how much *goodput* — completions within
//! their deadline per 1000 time units — each configuration preserves. Every
//! (topology, strategy, fault level) cell runs twice:
//!
//! * **baseline** — deadline accounting only. Arrivals are never refused,
//!   so the backlog grows without bound, sojourns blow past the deadline,
//!   and goodput collapses even though the machine is busy the whole time.
//! * **protected** — the full overload stack: token-bucket admission at
//!   the edge, retry with exponential backoff for requests lost to
//!   crashes, and the per-region circuit breaker. Shedding keeps the
//!   admitted population small enough that what *is* admitted finishes
//!   inside its deadline.
//!
//! All runs of a sweep execute as one parallel batch; results are a pure
//! function of (fidelity, seed) and independent of thread count.

use oracle_model::{
    ArrivalSpec, FaultPlan, MachineConfig, OpenMetrics, OpenTraffic, PeCrash, RecoveryParams,
};
use oracle_strategies::StrategySpec;
use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;

use super::{paper_topologies, Fidelity};
use crate::builder::{paper_strategies, SimulationBuilder};
use crate::runner::{run_batch, RunSpec};
use crate::table::{f2, Table};

/// Tuning of one degradation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Grid side of the two paper topologies swept.
    pub side: usize,
    /// Task tree spawned by every arriving request.
    pub workload: WorkloadSpec,
    /// Simulated duration of each run.
    pub duration: u64,
    /// Warmup excluded from each run's statistics.
    pub warmup: u64,
    /// Offered Poisson rate (arrivals per 1000 units) — deliberately past
    /// every cell's capacity knee.
    pub rate: f64,
    /// Per-request deadline; completions past it are dead losses.
    pub deadline: u64,
    /// Retry policy of the protected variant (`MAXxBASE` grammar).
    pub retry: &'static str,
    /// Admission policy of the protected variant.
    pub admission: &'static str,
    /// Circuit-breaker cooldown of the protected variant.
    pub breaker: u64,
    /// Fraction of PEs crashed per fault level (`none` is implicit).
    pub crash_fractions: [f64; 2],
    /// Message-loss rate per fault level.
    pub loss: [f64; 2],
}

/// Sweep parameters for a fidelity level.
pub fn params(fidelity: Fidelity) -> Params {
    match fidelity {
        Fidelity::Paper => Params {
            side: 10,
            workload: WorkloadSpec::fib(11),
            duration: 20_000,
            warmup: 2_000,
            rate: 30.0,
            deadline: 2_500,
            retry: "3x200",
            admission: "bucket:3x8",
            breaker: 500,
            crash_fractions: [0.2, 0.4],
            loss: [0.01, 0.02],
        },
        Fidelity::Quick => Params {
            side: 4,
            workload: WorkloadSpec::fib(8),
            duration: 4_000,
            warmup: 400,
            rate: 40.0,
            deadline: 1_000,
            retry: "2x100",
            admission: "bucket:2x4",
            breaker: 300,
            crash_fractions: [0.2, 0.4],
            loss: [0.01, 0.02],
        },
    }
}

/// Names of the fault levels, in increasing intensity.
pub const FAULT_LEVELS: [&str; 3] = ["none", "moderate", "heavy"];

/// The fault plan of one level: `none`, or a deterministic set of crash
/// victims spread across the PE range (staggered after warmup, so the
/// system degrades mid-measurement) plus message loss. Faulted levels
/// enable the goal-level ack/respawn recovery layer — without it a
/// several-hundred-goal tree almost surely loses a goal to 1% message loss
/// and no request would ever complete, drowning the request-level signal
/// this experiment measures.
fn fault_plan(p: &Params, level: usize, num_pes: usize) -> FaultPlan {
    if level == 0 {
        return FaultPlan::default();
    }
    let mut plan = FaultPlan::default().with_recovery(RecoveryParams::default());
    let crashes = ((num_pes as f64 * p.crash_fractions[level - 1]).round() as usize).max(1);
    let stagger = (p.duration / 2).saturating_sub(p.warmup + 500) / crashes.max(1) as u64;
    for i in 0..crashes {
        plan.pe_crashes.push(PeCrash {
            // Spread victims across the id range so no neighborhood
            // survives untouched (and the breaker has regions to isolate).
            pe: ((i * num_pes) / crashes) as u32,
            at: p.warmup + 500 + i as u64 * stagger.max(1),
        });
    }
    plan.message_loss = p.loss[level - 1];
    plan
}

fn open_traffic(p: &Params, protected: bool) -> OpenTraffic {
    let arrivals: ArrivalSpec = format!("poisson:{}", p.rate)
        .parse()
        .expect("sweep rates are positive finite numbers");
    let mut open = OpenTraffic::new(arrivals, p.duration);
    open.warmup = p.warmup;
    open.deadline = Some(p.deadline);
    if protected {
        open.retry = Some(p.retry.parse().expect("params retry grammar is valid"));
        open.admission = Some(
            p.admission
                .parse()
                .expect("params admission grammar is valid"),
        );
        open.breaker = Some(p.breaker);
    }
    open
}

/// One (topology, strategy, fault level) cell of the sweep.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Topology of the cell.
    pub topology: TopologySpec,
    /// Strategy of the cell.
    pub strategy: StrategySpec,
    /// Index into [`FAULT_LEVELS`].
    pub fault_level: usize,
    /// Metrics of the unprotected run (deadline accounting only).
    pub baseline: OpenMetrics,
    /// Metrics of the run with admission + retry + breaker active.
    pub protected: OpenMetrics,
}

impl Cell {
    /// Name of this cell's fault level.
    pub fn fault_name(&self) -> &'static str {
        FAULT_LEVELS[self.fault_level]
    }

    /// Protected-over-baseline goodput ratio: `inf` when only the
    /// protected run preserved anything, 0 when neither did.
    pub fn protection_ratio(&self) -> f64 {
        if self.baseline.goodput == 0.0 {
            if self.protected.goodput == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.protected.goodput / self.baseline.goodput
        }
    }
}

/// Run the degradation sweep: one cell per (topology, strategy, fault
/// level), each holding a baseline and a protected run.
pub fn run(fidelity: Fidelity, seed: u64) -> Vec<Cell> {
    let p = params(fidelity);
    let mut shape = Vec::new();
    let mut specs = Vec::new();
    for topology in paper_topologies(p.side) {
        let (cwn, gm) = paper_strategies(&topology);
        for strategy in [cwn, gm] {
            for (level, level_name) in FAULT_LEVELS.iter().enumerate() {
                let plan = fault_plan(&p, level, topology.num_pes());
                for protected in [false, true] {
                    let variant = if protected { "protected" } else { "baseline" };
                    specs.push(RunSpec::new(
                        format!("degradation/{topology}/{strategy}/{level_name}/{variant}"),
                        SimulationBuilder::new()
                            .topology(topology)
                            .strategy(strategy)
                            .workload(p.workload)
                            .machine(MachineConfig::default().with_seed(seed))
                            .fault_plan(plan.clone())
                            .open(Some(open_traffic(&p, protected)))
                            .config(),
                    ));
                }
                shape.push((topology, strategy, level));
            }
        }
    }

    let mut reports = run_batch(&specs).into_iter().map(|(label, result)| {
        let report = result.unwrap_or_else(|e| panic!("{label}: {e}"));
        report
            .open
            .unwrap_or_else(|| panic!("{label}: no open metrics"))
    });
    shape
        .into_iter()
        .map(|(topology, strategy, fault_level)| Cell {
            topology,
            strategy,
            fault_level,
            baseline: reports.next().expect("one baseline report per cell"),
            protected: reports.next().expect("one protected report per cell"),
        })
        .collect()
}

/// Check the physics of a sweep: per configuration and variant, goodput
/// must be monotone non-increasing in fault intensity (with a small
/// tolerance for stochastic jitter between single-seed runs), and every
/// run must conserve arrivals across completed + shed + abandoned +
/// in-flight. Returns every violation found.
pub fn verify(cells: &[Cell]) -> Result<(), String> {
    let mut problems = Vec::new();
    for c in cells {
        for (variant, m) in [("baseline", &c.baseline), ("protected", &c.protected)] {
            let settled = m.completions + m.shed + m.abandoned_deadline + m.abandoned_retries;
            if m.arrivals != settled + m.inflight_at_end {
                problems.push(format!(
                    "{}/{}/{}/{variant}: arrivals {} != completed {} + shed {} + abandoned \
                     {} + in-flight {}",
                    c.topology,
                    c.strategy,
                    c.fault_name(),
                    m.arrivals,
                    m.completions,
                    m.shed,
                    m.abandoned_deadline + m.abandoned_retries,
                    m.inflight_at_end
                ));
            }
        }
    }
    // Fault levels of one configuration are adjacent in sweep order.
    for pair in cells.chunks(FAULT_LEVELS.len()) {
        for w in pair.windows(2) {
            let (lo, hi) = (&w[0], &w[1]);
            for (variant, a, b) in [
                ("baseline", lo.baseline.goodput, hi.baseline.goodput),
                ("protected", lo.protected.goodput, hi.protected.goodput),
            ] {
                // 5% relative + 0.1 absolute slack: the sweep is one seed
                // per cell, so tiny non-monotonicities are sampling noise,
                // not a broken model.
                if b > a * 1.05 + 0.1 {
                    problems.push(format!(
                        "{}/{}/{variant}: goodput rose from {} ({}) to {} ({})",
                        lo.topology,
                        lo.strategy,
                        f2(a),
                        lo.fault_name(),
                        f2(b),
                        hi.fault_name()
                    ));
                }
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

/// Render the sweep: one row per (topology, strategy, fault level).
pub fn render(cells: &[Cell], fidelity: Fidelity) -> Table {
    let p = params(fidelity);
    let mut table = Table::new(
        format!(
            "Goodput under overload (poisson:{} of {} per request, deadline {}, duration {}, \
             warmup {}) — unprotected vs deadline+retry:{}+admission:{}+breaker:{}",
            f2(p.rate),
            p.workload,
            p.deadline,
            p.duration,
            p.warmup,
            p.retry,
            p.admission,
            p.breaker
        ),
        &[
            "configuration",
            "faults",
            "goodput base",
            "goodput prot",
            "ratio",
            "p99-in-deadline",
            "shed %",
            "abandoned %",
        ],
    );
    for c in cells {
        table.row(vec![
            format!("{}/{}", c.topology, c.strategy),
            c.fault_name().to_string(),
            f2(c.baseline.goodput),
            f2(c.protected.goodput),
            if c.baseline.goodput > 0.0 {
                f2(c.protection_ratio())
            } else {
                "inf".into()
            },
            c.protected.sojourn_p99.to_string(),
            f2(c.protected.shed_rate * 100.0),
            f2(c.protected.abandonment_rate * 100.0),
        ]);
    }
    table
}

/// Machine-readable dump of every cell (hand-rolled JSON; the involved
/// strings are free of quotes and backslashes).
pub fn to_json(cells: &[Cell]) -> String {
    let mut out = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            concat!(
                "  {{\"topology\": \"{}\", \"strategy\": \"{}\", \"faults\": \"{}\", ",
                "\"goodput_baseline\": {:.4}, \"goodput_protected\": {:.4}, ",
                "\"p99_in_deadline\": {}, \"shed_rate\": {:.4}, ",
                "\"abandonment_rate\": {:.4}, \"retries\": {}, \"breaker_opens\": {}}}{}\n"
            ),
            c.topology,
            c.strategy,
            c.fault_name(),
            c.baseline.goodput,
            c.protected.goodput,
            c.protected.sojourn_p99,
            c.protected.shed_rate,
            c.protected.abandonment_rate,
            c.protected.retries,
            c.protected.breaker_opens,
            sep
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_protection_and_passes_its_own_checks() {
        let cells = run(Fidelity::Quick, 1);
        // 2 topologies x 2 strategies x 3 fault levels.
        assert_eq!(cells.len(), 12);
        verify(&cells).unwrap_or_else(|e| panic!("physics check failed:\n{e}"));
        for c in &cells {
            assert!(
                c.protected.shed > 0,
                "{}/{}/{}: admission shed nothing under overload",
                c.topology,
                c.strategy,
                c.fault_name()
            );
            assert!(
                c.protected.sojourn_p99 <= params(Fidelity::Quick).deadline,
                "{}/{}/{}: measured sojourns are within-deadline by construction",
                c.topology,
                c.strategy,
                c.fault_name()
            );
        }
        // The headline claim: at least one cell where admission control
        // preserves more than twice the unprotected goodput.
        assert!(
            cells
                .iter()
                .any(|c| c.protected.goodput > 2.0 * c.baseline.goodput),
            "no cell demonstrates >2x goodput protection: {:?}",
            cells
                .iter()
                .map(|c| (c.baseline.goodput, c.protected.goodput))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        crate::runner::set_default_threads(1);
        let seq = run(Fidelity::Quick, 7);
        crate::runner::set_default_threads(4);
        let par = run(Fidelity::Quick, 7);
        crate::runner::clear_default_threads();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(format!("{:?}", a.baseline), format!("{:?}", b.baseline));
            assert_eq!(format!("{:?}", a.protected), format!("{:?}", b.protected));
        }
    }

    #[test]
    fn render_and_json_cover_every_cell() {
        let cells = run(Fidelity::Quick, 1);
        let table = render(&cells, Fidelity::Quick);
        assert_eq!(table.len(), 12);
        let json = to_json(&cells);
        assert_eq!(json.matches("\"goodput_protected\"").count(), cells.len());
        assert!(json.starts_with('['), "{json}");
        assert!(json.ends_with(']'));
    }
}
