//! Table 2 — "Speedup of CWN over GM": the paper's main result.
//!
//! 240 runs (2 problem types × 6 sizes × 2 topology families × 5 sizes × 2
//! strategies), reduced to 120 ratio cells. The paper found CWN better in
//! 118 of 120 cells, significantly (>10%) better in 110, and up to ~3× on
//! the large grids.

use oracle_model::MachineConfig;
use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;

use super::{paper_topologies, Fidelity};
use crate::builder::{paper_strategies, SimulationBuilder};
use crate::runner::{run_batch, RunSpec};
use crate::table::{f2, Table};

/// One cell of Table 2.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload of this row.
    pub workload: WorkloadSpec,
    /// Topology of this column.
    pub topology: TopologySpec,
    /// Number of PEs.
    pub pes: usize,
    /// Speedup achieved by CWN.
    pub cwn_speedup: f64,
    /// Speedup achieved by the Gradient Model.
    pub gm_speedup: f64,
}

impl Cell {
    /// The cell value: speedup of CWN over GM.
    pub fn ratio(&self) -> f64 {
        self.cwn_speedup / self.gm_speedup
    }
}

/// Run the full comparison grid and return one cell per
/// (workload, topology).
pub fn run(fidelity: Fidelity, seed: u64) -> Vec<Cell> {
    let mut workloads: Vec<WorkloadSpec> = fidelity
        .dc_sizes()
        .iter()
        .map(|&x| WorkloadSpec::dc(x))
        .collect();
    workloads.extend(fidelity.fib_sizes().iter().map(|&n| WorkloadSpec::fib(n)));

    let mut cells = Vec::new();
    let mut specs = Vec::new();
    for &side in fidelity.grid_sides() {
        for topology in paper_topologies(side) {
            let (cwn, gm) = paper_strategies(&topology);
            for &workload in &workloads {
                for strategy in [cwn, gm] {
                    specs.push(RunSpec::new(
                        format!("{workload}/{topology}/{strategy}"),
                        SimulationBuilder::new()
                            .topology(topology)
                            .strategy(strategy)
                            .workload(workload)
                            .machine(MachineConfig::default().with_seed(seed))
                            .config(),
                    ));
                }
                cells.push((workload, topology, side));
            }
        }
    }

    let results = run_batch(&specs);
    cells
        .into_iter()
        .enumerate()
        .map(|(i, (workload, topology, side))| {
            let cwn = results[2 * i]
                .1
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: {e}", results[2 * i].0));
            let gm = results[2 * i + 1]
                .1
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: {e}", results[2 * i + 1].0));
            Cell {
                workload,
                topology,
                pes: side * side,
                cwn_speedup: cwn.speedup,
                gm_speedup: gm.speedup,
            }
        })
        .collect()
}

/// Render the cells in the paper's layout: one row per workload, one column
/// per (family, PE count).
pub fn render(cells: &[Cell]) -> Table {
    let mut pes: Vec<usize> = cells.iter().map(|c| c.pes).collect();
    pes.sort_unstable();
    pes.dedup();

    let mut header: Vec<String> = vec!["workload".into()];
    for family in ["grid", "dlm"] {
        for &p in &pes {
            header.push(format!("{family}-{p}"));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("Speedup of CWN over GM (paper Table 2)", &header_refs);

    let mut workloads: Vec<WorkloadSpec> = Vec::new();
    for c in cells {
        if !workloads.contains(&c.workload) {
            workloads.push(c.workload);
        }
    }

    for w in workloads {
        let mut row = vec![w.to_string()];
        for grid in [true, false] {
            for &p in &pes {
                let cell = cells.iter().find(|c| {
                    c.workload == w
                        && c.pes == p
                        && matches!(c.topology, TopologySpec::Mesh2D { .. }) == grid
                });
                row.push(cell.map_or_else(|| "-".into(), |c| f2(c.ratio())));
            }
        }
        table.row(row);
    }
    table
}

/// Summary statistics in the paper's terms: how many cells favour CWN, how
/// many significantly (>10%), and the extreme ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total ratio cells.
    pub cells: usize,
    /// Cells with ratio > 1 (CWN better).
    pub cwn_wins: usize,
    /// Cells with ratio > 1.1 (significantly better).
    pub significant: usize,
    /// Smallest ratio.
    pub min_ratio: f64,
    /// Largest ratio.
    pub max_ratio: f64,
}

/// Summarize a cell set.
pub fn summarize(cells: &[Cell]) -> Summary {
    let ratios: Vec<f64> = cells.iter().map(Cell::ratio).collect();
    Summary {
        cells: cells.len(),
        cwn_wins: ratios.iter().filter(|&&r| r > 1.0).count(),
        significant: ratios.iter().filter(|&&r| r > 1.1).count(),
        min_ratio: ratios.iter().copied().fold(f64::INFINITY, f64::min),
        max_ratio: ratios.iter().copied().fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_reproduces_the_headline() {
        let cells = run(Fidelity::Quick, 1);
        // 2 sides x 2 families x 4 workloads.
        assert_eq!(cells.len(), 16);
        let s = summarize(&cells);
        assert_eq!(s.cells, 16);
        // The paper: CWN wins nearly everywhere. At miniature scale demand
        // a clear majority rather than 118/120.
        assert!(
            s.cwn_wins * 10 >= s.cells * 7,
            "CWN won only {}/{} cells",
            s.cwn_wins,
            s.cells
        );
        assert!(s.max_ratio > 1.1, "no significant win at all");
    }

    #[test]
    fn render_shapes_like_the_paper() {
        let cells = run(Fidelity::Quick, 1);
        let table = render(&cells);
        assert_eq!(table.len(), 4, "one row per workload");
        let csv = table.to_csv();
        assert!(csv.starts_with("workload,grid-16,grid-25,dlm-16,dlm-25"));
    }
}
