//! Capacity — maximum sustainable open-traffic arrival rate, CWN vs GM.
//!
//! The paper measures how fast one task tree finishes; a production load
//! balancer is sized by a different question: *how much sustained traffic
//! can the machine hold before latency explodes?* This experiment answers
//! it per (topology, strategy): binary-search the Poisson arrival rate for
//! the largest value whose steady-state p99 sojourn time stays under a
//! target, with runs that outrun the machine ending in a truthful
//! `Saturated` outcome instead of spinning.
//!
//! The search is deterministic: a doubling phase brackets the knee (every
//! probe at a power-of-two multiple of the starting rate), then a fixed
//! number of bisections narrow it. Probes for all four (topology, strategy)
//! pairs run as one parallel batch per round, so wall-clock scales with
//! rounds, not cells, and results are independent of thread count.

use oracle_model::{ArrivalSpec, MachineConfig, OpenMetrics, OpenTraffic};
use oracle_strategies::StrategySpec;
use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;

use super::{paper_topologies, Fidelity};
use crate::builder::{paper_strategies, SimulationBuilder};
use crate::runner::{run_batch, RunSpec};
use crate::table::{f2, Table};

/// Tuning of one capacity search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Grid side of the two paper topologies probed.
    pub side: usize,
    /// Task tree spawned by every arriving request.
    pub workload: WorkloadSpec,
    /// Simulated duration of each probe run.
    pub duration: u64,
    /// Warmup excluded from each probe's statistics.
    pub warmup: u64,
    /// The latency SLO: sustainable means p99 sojourn <= this.
    pub p99_target: u64,
    /// First probe rate (arrivals per 1000 time units).
    pub start_rate: f64,
    /// Doubling probes bracketing the knee.
    pub doublings: u32,
    /// Bisection probes narrowing it.
    pub bisections: u32,
}

/// Search parameters for a fidelity level.
pub fn params(fidelity: Fidelity) -> Params {
    match fidelity {
        Fidelity::Paper => Params {
            side: 10,
            workload: WorkloadSpec::fib(11),
            duration: 20_000,
            warmup: 2_000,
            p99_target: 2_500,
            start_rate: 4.0,
            doublings: 4,
            bisections: 5,
        },
        Fidelity::Quick => Params {
            side: 4,
            workload: WorkloadSpec::fib(8),
            duration: 3_000,
            warmup: 300,
            p99_target: 1_000,
            start_rate: 2.0,
            doublings: 3,
            bisections: 3,
        },
    }
}

/// One probe of the search: a rate and what the run said about it.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Offered Poisson rate (arrivals per 1000 time units).
    pub rate: f64,
    /// Whether this rate met the SLO (completed, unsaturated, p99 under
    /// target, and at least one measured completion).
    pub sustainable: bool,
    /// The run's open metrics (`None` if the run itself errored).
    pub metrics: Option<OpenMetrics>,
}

/// Search outcome for one (topology, strategy) pair.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Topology of the search.
    pub topology: TopologySpec,
    /// Strategy of the search.
    pub strategy: StrategySpec,
    /// Largest sustainable rate found (0 when even the first probe failed).
    pub max_rate: f64,
    /// Open metrics of the run at `max_rate` (`None` when `max_rate` is 0).
    pub at_max: Option<OpenMetrics>,
    /// Every probe, in the order the search made them.
    pub probes: Vec<Probe>,
}

/// Mutable state of one pair's binary search.
struct Search {
    topology: TopologySpec,
    strategy: StrategySpec,
    /// Largest known-sustainable rate.
    lo: f64,
    /// Current upper probe (doubling) or smallest known-unsustainable rate
    /// (bisection).
    hi: f64,
    /// Still in the doubling phase?
    doubling: bool,
    best: Option<OpenMetrics>,
    probes: Vec<Probe>,
}

fn probe_config(p: &Params, s: &Search, rate: f64, seed: u64) -> RunSpec {
    let arrivals: ArrivalSpec = format!("poisson:{rate}")
        .parse()
        .expect("probe rates are positive finite numbers");
    let mut open = OpenTraffic::new(arrivals, p.duration);
    open.warmup = p.warmup;
    RunSpec::new(
        format!("capacity/{}/{}/r{rate}", s.topology, s.strategy),
        SimulationBuilder::new()
            .topology(s.topology)
            .strategy(s.strategy)
            .workload(p.workload)
            .machine(MachineConfig::default().with_seed(seed))
            .open(Some(open))
            .config(),
    )
}

fn sustainable(p: &Params, m: &OpenMetrics) -> bool {
    !m.outcome.is_saturated() && m.completions_measured > 0 && m.sojourn_p99 <= p.p99_target
}

/// Run the capacity search and return one cell per (topology, strategy).
pub fn run(fidelity: Fidelity, seed: u64) -> Vec<Cell> {
    let p = params(fidelity);
    let mut searches: Vec<Search> = Vec::new();
    for topology in paper_topologies(p.side) {
        let (cwn, gm) = paper_strategies(&topology);
        for strategy in [cwn, gm] {
            searches.push(Search {
                topology,
                strategy,
                lo: 0.0,
                hi: p.start_rate,
                doubling: true,
                best: None,
                probes: Vec::new(),
            });
        }
    }

    // Doubling rounds bracket the knee; bisection rounds narrow it. Every
    // round probes each still-active search once, as one parallel batch.
    let rounds = p.doublings + p.bisections;
    for round in 0..rounds {
        let bisecting = round >= p.doublings;
        let mut idx = Vec::new();
        let mut specs = Vec::new();
        for (i, s) in searches.iter_mut().enumerate() {
            if bisecting && s.doubling {
                // Out of doubling budget: treat the last hi as the
                // unsustainable upper bound and switch to bisection.
                s.doubling = false;
            }
            let rate = if s.doubling {
                s.hi
            } else {
                (s.lo + s.hi) / 2.0
            };
            if rate <= s.lo {
                continue; // interval collapsed (e.g. first probe failed)
            }
            specs.push(probe_config(&p, s, rate, seed));
            idx.push((i, rate));
        }
        if specs.is_empty() {
            break;
        }
        for ((i, rate), (label, result)) in idx.into_iter().zip(run_batch(&specs)) {
            let s = &mut searches[i];
            let metrics = match result {
                Ok(r) => Some(r.open.unwrap_or_else(|| panic!("{label}: no open metrics"))),
                Err(_) => None,
            };
            let ok = metrics.as_ref().is_some_and(|m| sustainable(&p, m));
            if ok {
                s.lo = rate;
                s.best = metrics.clone();
                if s.doubling {
                    s.hi = rate * 2.0;
                }
            } else {
                s.hi = rate;
                s.doubling = false;
            }
            s.probes.push(Probe {
                rate,
                sustainable: ok,
                metrics,
            });
        }
    }

    searches
        .into_iter()
        .map(|s| Cell {
            topology: s.topology,
            strategy: s.strategy,
            max_rate: s.lo,
            at_max: s.best,
            probes: s.probes,
        })
        .collect()
}

/// Render the search results: one row per (topology, strategy).
pub fn render(cells: &[Cell], fidelity: Fidelity) -> Table {
    let p = params(fidelity);
    let mut table = Table::new(
        format!(
            "Max sustainable arrival rate (req per 1000 units) at p99 sojourn <= {} \
             ({} per request, duration {}, warmup {})",
            p.p99_target, p.workload, p.duration, p.warmup
        ),
        &[
            "configuration",
            "max req/1k",
            "p99 sojourn",
            "mean sojourn",
            "throughput/1k",
            "probes",
        ],
    );
    for c in cells {
        let (p99, mean, thr) = c.at_max.as_ref().map_or_else(
            || ("-".into(), "-".into(), "-".into()),
            |m| {
                (
                    m.sojourn_p99.to_string(),
                    f2(m.sojourn_mean),
                    f2(m.throughput),
                )
            },
        );
        table.row(vec![
            format!("{}/{}", c.topology, c.strategy),
            f2(c.max_rate),
            p99,
            mean,
            thr,
            c.probes.len().to_string(),
        ]);
    }
    table
}

/// Machine-readable dump of every cell (hand-rolled JSON; the involved
/// strings are free of quotes and backslashes).
pub fn to_json(cells: &[Cell]) -> String {
    let mut out = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let (p99, thr) = c
            .at_max
            .as_ref()
            .map_or((0, 0.0), |m| (m.sojourn_p99, m.throughput));
        out.push_str(&format!(
            concat!(
                "  {{\"topology\": \"{}\", \"strategy\": \"{}\", ",
                "\"max_rate\": {:.4}, \"p99_at_max\": {}, ",
                "\"throughput_at_max\": {:.4}, \"probes\": {}}}{}\n"
            ),
            c.topology,
            c.strategy,
            c.max_rate,
            p99,
            thr,
            c.probes.len(),
            sep
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_search_finds_a_positive_capacity() {
        let cells = run(Fidelity::Quick, 1);
        // 2 topologies x 2 strategies.
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert!(
                c.max_rate > 0.0,
                "{}/{}: no sustainable rate found ({} probes)",
                c.topology,
                c.strategy,
                c.probes.len()
            );
            let m = c.at_max.as_ref().unwrap();
            assert!(!m.outcome.is_saturated());
            assert!(m.sojourn_p99 <= params(Fidelity::Quick).p99_target);
            // The search bracketed: at least one probe was unsustainable,
            // or the doubling budget was exhausted while sustainable.
            assert!(!c.probes.is_empty());
        }
    }

    #[test]
    fn search_is_deterministic_across_thread_counts() {
        crate::runner::set_default_threads(1);
        let seq = run(Fidelity::Quick, 7);
        crate::runner::set_default_threads(4);
        let par = run(Fidelity::Quick, 7);
        crate::runner::clear_default_threads();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.max_rate, b.max_rate);
            assert_eq!(
                a.at_max.as_ref().map(|m| m.sojourn_p99),
                b.at_max.as_ref().map(|m| m.sojourn_p99)
            );
        }
    }

    #[test]
    fn render_and_json_cover_every_cell() {
        let cells = run(Fidelity::Quick, 1);
        let table = render(&cells, Fidelity::Quick);
        assert_eq!(table.len(), 4);
        let json = to_json(&cells);
        assert_eq!(json.matches("\"max_rate\"").count(), cells.len());
        assert!(json.starts_with('['), "{json}");
        assert!(json.ends_with(']'));
    }
}
