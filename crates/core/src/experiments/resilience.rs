//! Resilience — CWN vs GM under injected faults.
//!
//! The paper assumes a fault-free machine; this experiment asks how the two
//! strategies degrade when the machine misbehaves. For each (topology,
//! strategy) pair we first run a fault-free baseline, then re-run under a
//! grid of scenarios (crash count × message-loss rate) with the recovery
//! layer enabled. Crash times are placed at even fractions of the baseline
//! makespan so every scenario actually interrupts live work, and the
//! recovery ack-timeout is scaled from the baseline so retries neither spin
//! nor sleep through the run.
//!
//! Reported per cell: completion, makespan degradation (faulty / baseline),
//! and the fault counters (goals lost, re-spawned, messages dropped,
//! retries exhausted).

use oracle_model::{FaultMetrics, FaultPlan, MachineConfig, RecoveryParams};
use oracle_strategies::StrategySpec;
use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;

use super::{paper_topologies, Fidelity};
use crate::builder::{paper_strategies, SimulationBuilder};
use crate::runner::{run_batch, RunSpec};
use crate::table::{f2, Table};

/// One fault scenario of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Number of PEs crashed during the run.
    pub crashes: u32,
    /// Per-transfer message-loss probability, in percent.
    pub loss_pct: u32,
}

impl Scenario {
    /// `c2l1`-style label used in tables and JSON.
    pub fn label(&self) -> String {
        format!("c{}l{}", self.crashes, self.loss_pct)
    }
}

/// One cell: a (topology, strategy, scenario) run compared to its
/// fault-free baseline.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Topology of the run.
    pub topology: TopologySpec,
    /// Strategy of the run.
    pub strategy: StrategySpec,
    /// The injected scenario.
    pub scenario: Scenario,
    /// Whether the run completed with the correct result.
    pub completed: bool,
    /// Fault-free makespan of the same configuration.
    pub baseline_makespan: u64,
    /// Makespan under the scenario (0 when the run failed).
    pub makespan: u64,
    /// Fault counters of the faulty run.
    pub faults: FaultMetrics,
    /// Error text when the run failed, for diagnostics.
    pub error: Option<String>,
}

impl Cell {
    /// Makespan degradation: faulty / baseline (1.0 = unharmed).
    pub fn degradation(&self) -> f64 {
        if self.completed && self.baseline_makespan > 0 {
            self.makespan as f64 / self.baseline_makespan as f64
        } else {
            f64::NAN
        }
    }
}

/// The scenario grid for a fidelity level.
pub fn scenarios(fidelity: Fidelity) -> Vec<Scenario> {
    let (crash_counts, loss_rates): (&[u32], &[u32]) = match fidelity {
        Fidelity::Paper => (&[0, 1, 2, 4], &[0, 1, 2]),
        Fidelity::Quick => (&[0, 1, 2], &[0, 1]),
    };
    let mut out = Vec::new();
    for &crashes in crash_counts {
        for &loss_pct in loss_rates {
            out.push(Scenario { crashes, loss_pct });
        }
    }
    out
}

fn workload(fidelity: Fidelity) -> WorkloadSpec {
    match fidelity {
        Fidelity::Paper => WorkloadSpec::fib(15),
        Fidelity::Quick => WorkloadSpec::fib(12),
    }
}

fn side(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Paper => 10,
        Fidelity::Quick => 6,
    }
}

/// Build the fault plan for a scenario against a measured baseline.
///
/// Crashed PEs are spread over the interior of the machine (never the root,
/// which defaults to PE 0) and crash times sit at even fractions of the
/// baseline makespan, so a "2-crash" scenario loses work twice while the
/// computation is demonstrably still alive.
pub fn plan_for(scenario: Scenario, num_pes: usize, baseline_makespan: u64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for i in 0..scenario.crashes {
        // Stride through the PEs starting away from the root corner.
        let pe = (1 + (i as usize * (num_pes / 3 + 1))) % num_pes;
        let pe = if pe == 0 { 1 } else { pe };
        let at = baseline_makespan * (i as u64 + 1) / (scenario.crashes as u64 + 1);
        plan = plan.crash(pe as u32, at.max(1));
    }
    if scenario.loss_pct > 0 {
        plan = plan.with_loss(scenario.loss_pct as f64 / 100.0);
    }
    if !plan.is_empty() {
        // Ack timeout ~ a quarter of the healthy run: long enough that slow
        // but live subtrees are not respawned in storms, short enough that
        // several retries fit before the event-limit watchdog.
        plan = plan.with_recovery(RecoveryParams {
            ack_timeout: (baseline_makespan / 4).max(200),
            max_retries: 8,
        });
    }
    plan
}

/// Run the resilience grid and return one cell per
/// (topology, strategy, scenario).
pub fn run(fidelity: Fidelity, seed: u64) -> Vec<Cell> {
    let workload = workload(fidelity);
    let mut pairs = Vec::new();
    for topology in paper_topologies(side(fidelity)) {
        let (cwn, gm) = paper_strategies(&topology);
        pairs.push((topology, cwn));
        pairs.push((topology, gm));
    }

    // Phase 1: fault-free baselines, one per (topology, strategy).
    let baseline_specs: Vec<RunSpec> = pairs
        .iter()
        .map(|&(topology, strategy)| {
            RunSpec::new(
                format!("baseline/{topology}/{strategy}"),
                SimulationBuilder::new()
                    .topology(topology)
                    .strategy(strategy)
                    .workload(workload)
                    .machine(MachineConfig::default().with_seed(seed))
                    .config(),
            )
        })
        .collect();
    let baselines: Vec<u64> = run_batch(&baseline_specs)
        .into_iter()
        .map(|(label, r)| r.unwrap_or_else(|e| panic!("{label}: {e}")).completion_time)
        .collect();

    // Phase 2: the scenario grid, crash times derived from each baseline.
    let scenarios = scenarios(fidelity);
    let mut cells = Vec::new();
    let mut specs = Vec::new();
    for (&(topology, strategy), &baseline) in pairs.iter().zip(&baselines) {
        for &scenario in &scenarios {
            let plan = plan_for(scenario, topology.num_pes(), baseline);
            specs.push(RunSpec::new(
                format!("{}/{topology}/{strategy}", scenario.label()),
                SimulationBuilder::new()
                    .topology(topology)
                    .strategy(strategy)
                    .workload(workload)
                    .machine(MachineConfig::default().with_seed(seed))
                    .fault_plan(plan)
                    .config(),
            ));
            cells.push((topology, strategy, scenario, baseline));
        }
    }

    run_batch(&specs)
        .into_iter()
        .zip(cells)
        .map(
            |((_, result), (topology, strategy, scenario, baseline_makespan))| match result {
                Ok(r) => Cell {
                    topology,
                    strategy,
                    scenario,
                    completed: true,
                    baseline_makespan,
                    makespan: r.completion_time,
                    faults: r.faults,
                    error: None,
                },
                Err(e) => Cell {
                    topology,
                    strategy,
                    scenario,
                    completed: false,
                    baseline_makespan,
                    makespan: 0,
                    faults: FaultMetrics::default(),
                    error: Some(e.to_string()),
                },
            },
        )
        .collect()
}

/// Render the grid: one row per (topology, strategy), one degradation
/// column per scenario.
pub fn render(cells: &[Cell]) -> Table {
    let mut scenario_order: Vec<Scenario> = Vec::new();
    for c in cells {
        if !scenario_order.contains(&c.scenario) {
            scenario_order.push(c.scenario);
        }
    }
    let mut header: Vec<String> = vec!["configuration".into()];
    header.extend(scenario_order.iter().map(Scenario::label));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Makespan degradation under faults (crashes x loss%; recovery on)",
        &header_refs,
    );

    let mut rows: Vec<(TopologySpec, StrategySpec)> = Vec::new();
    for c in cells {
        if !rows.contains(&(c.topology, c.strategy)) {
            rows.push((c.topology, c.strategy));
        }
    }
    for (topology, strategy) in rows {
        let mut row = vec![format!("{topology}/{strategy}")];
        for &s in &scenario_order {
            let cell = cells
                .iter()
                .find(|c| c.topology == topology && c.strategy == strategy && c.scenario == s);
            row.push(cell.map_or_else(
                || "-".into(),
                |c| {
                    if c.completed {
                        f2(c.degradation())
                    } else {
                        "FAIL".into()
                    }
                },
            ));
        }
        table.row(row);
    }
    table
}

/// Machine-readable dump of every cell (the repo has no JSON dependency, so
/// this is a small hand-rolled emitter; all strings involved are free of
/// quotes and backslashes).
pub fn to_json(cells: &[Cell]) -> String {
    fn f(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.4}")
        } else {
            "null".into()
        }
    }
    let mut out = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            concat!(
                "  {{\"topology\": \"{}\", \"strategy\": \"{}\", ",
                "\"crashes\": {}, \"loss_pct\": {}, \"completed\": {}, ",
                "\"baseline_makespan\": {}, \"makespan\": {}, ",
                "\"makespan_degradation\": {}, \"goals_lost\": {}, ",
                "\"goals_respawned\": {}, \"messages_dropped\": {}, ",
                "\"duplicate_responses\": {}, \"retries_exhausted\": {}, ",
                "\"pes_crashed\": {}}}{}\n"
            ),
            c.topology,
            c.strategy,
            c.scenario.crashes,
            c.scenario.loss_pct,
            c.completed,
            c.baseline_makespan,
            c.makespan,
            f(c.degradation()),
            c.faults.goals_lost,
            c.faults.goals_respawned,
            c.faults.messages_dropped,
            c.faults.duplicate_responses,
            c.faults.retries_exhausted,
            c.faults.pes_crashed,
            sep
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_completes_under_faults() {
        let cells = run(Fidelity::Quick, 1);
        // 2 topologies x 2 strategies x 6 scenarios.
        assert_eq!(cells.len(), 24);
        for c in &cells {
            assert!(
                c.completed,
                "{}/{}/{}: {}",
                c.topology,
                c.strategy,
                c.scenario.label(),
                c.error.as_deref().unwrap_or("?")
            );
        }
        // The fault-free scenario is the baseline re-run: unharmed.
        for c in cells.iter().filter(|c| {
            c.scenario
                == Scenario {
                    crashes: 0,
                    loss_pct: 0,
                }
        }) {
            assert_eq!(
                c.makespan, c.baseline_makespan,
                "{}/{}",
                c.topology, c.strategy
            );
        }
        // Crashing PEs really happened and really lost work somewhere.
        let crashed: Vec<&Cell> = cells.iter().filter(|c| c.scenario.crashes > 0).collect();
        assert!(crashed
            .iter()
            .all(|c| c.faults.pes_crashed == c.scenario.crashes));
        assert!(
            crashed
                .iter()
                .any(|c| c.faults.goals_lost > 0 && c.faults.goals_respawned > 0),
            "no crash scenario lost + recovered work"
        );
        // Message loss really dropped transfers somewhere.
        assert!(
            cells
                .iter()
                .filter(|c| c.scenario.loss_pct > 0)
                .any(|c| c.faults.messages_dropped > 0),
            "1% loss never dropped a message"
        );
    }

    #[test]
    fn degradation_is_measured_against_the_baseline() {
        let cells = run(Fidelity::Quick, 3);
        let hurt = cells
            .iter()
            .filter(|c| c.completed && c.scenario.crashes > 0)
            .map(Cell::degradation);
        for d in hurt {
            assert!(d.is_finite() && d > 0.0);
        }
    }

    #[test]
    fn render_and_json_cover_every_cell() {
        let cells = run(Fidelity::Quick, 1);
        let table = render(&cells);
        assert_eq!(table.len(), 4, "one row per (topology, strategy)");
        let json = to_json(&cells);
        assert_eq!(
            json.matches("\"makespan_degradation\"").count(),
            cells.len()
        );
        assert!(json.contains("\"goals_lost\""));
        assert!(json.starts_with('['), "{json}");
        assert!(json.ends_with(']'));
    }

    #[test]
    fn plans_scale_with_the_scenario() {
        let p = plan_for(
            Scenario {
                crashes: 2,
                loss_pct: 1,
            },
            36,
            1000,
        );
        assert_eq!(p.pe_crashes.len(), 2);
        assert!(
            p.pe_crashes.iter().all(|c| c.pe != 0),
            "never crash the root"
        );
        assert!((p.message_loss - 0.01).abs() < 1e-12);
        assert!(p.recovery.is_some());
        let empty = plan_for(
            Scenario {
                crashes: 0,
                loss_pct: 0,
            },
            36,
            1000,
        );
        assert!(empty.is_empty());
    }
}
