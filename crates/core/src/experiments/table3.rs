//! Table 3 — "distribution of message distance": how far goal messages
//! travel under each scheme (fib(18) on a 10×10 grid in the paper).
//!
//! The paper's observations to reproduce: CWN's average distance ≈ 3 with a
//! spike at the radius ("a message that has gone that far must stop"); GM's
//! average < 1 with a large mass at zero ("a significant number of goals
//! just stay at the PE they were created on").

use oracle_model::{MachineConfig, Report};
use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;

use super::Fidelity;
use crate::builder::{paper_strategies, SimulationBuilder};
use crate::table::{f2, Table};

/// The two hop-distance distributions.
#[derive(Debug, Clone)]
pub struct HopDistributions {
    /// Full report of the CWN run.
    pub cwn: Report,
    /// Full report of the GM run.
    pub gm: Report,
}

/// Run the Table-3 experiment.
pub fn run(fidelity: Fidelity, seed: u64) -> HopDistributions {
    let (topology, workload) = match fidelity {
        Fidelity::Paper => (TopologySpec::grid(10), WorkloadSpec::fib(18)),
        Fidelity::Quick => (TopologySpec::grid(5), WorkloadSpec::fib(11)),
    };
    let (cwn, gm) = paper_strategies(&topology);
    let mk = |strategy| {
        SimulationBuilder::new()
            .topology(topology)
            .strategy(strategy)
            .workload(workload)
            .machine(MachineConfig::default().with_seed(seed))
            .run_validated()
            .expect("table 3 run failed")
    };
    HopDistributions {
        cwn: mk(cwn),
        gm: mk(gm),
    }
}

/// Render in the paper's layout: one row per scheme, one column per hop
/// count, plus the average. Goals that travelled beyond the histogram's
/// bucket range get their own explicit column (instead of silently
/// vanishing from the table): the columns of a row always sum to that
/// run's executed goals.
pub fn render(d: &HopDistributions) -> Table {
    let width = d.cwn.hop_histogram.len().max(d.gm.hop_histogram.len());
    let overflow = d.cwn.hop_overflow > 0 || d.gm.hop_overflow > 0;
    let mut header: Vec<String> = vec!["Hops".into()];
    header.extend((0..width).map(|h| h.to_string()));
    if overflow {
        header.push(format!(">{}", width - 1));
    }
    header.push("Average".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Distribution of message distances (paper Table 3)",
        &header_refs,
    );
    for (name, r) in [("CWN", &d.cwn), ("GM", &d.gm)] {
        let mut row = vec![name.to_string()];
        for h in 0..width {
            row.push(
                r.hop_histogram
                    .get(h)
                    .map_or_else(|| "0".into(), |c| c.to_string()),
            );
        }
        if overflow {
            row.push(r.hop_overflow.to_string());
        }
        row.push(f2(r.avg_goal_distance));
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_shape() {
        let d = run(Fidelity::Quick, 1);
        // CWN ships everything out; GM keeps most goals at home.
        assert_eq!(d.cwn.hop_histogram[0], 0);
        assert!(d.gm.hop_histogram[0] > d.gm.goals_created / 3);
        assert!(
            d.cwn.avg_goal_distance > d.gm.avg_goal_distance,
            "CWN {} vs GM {}",
            d.cwn.avg_goal_distance,
            d.gm.avg_goal_distance
        );
        assert!(d.gm.avg_goal_distance < 1.5);
    }

    #[test]
    fn render_has_two_rows() {
        let d = run(Fidelity::Quick, 1);
        let t = render(&d);
        assert_eq!(t.len(), 2);
        assert!(t.to_string().contains("CWN"));
    }
}
