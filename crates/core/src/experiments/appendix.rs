//! Appendix I — "Simulation Experiments for the Hypercubes".
//!
//! Plots A-1..A-4: utilization vs number of goals for Fibonacci on
//! hypercubes of dimension 5, 6 and 7. Plots A-5..A-8: utilization vs time
//! for Fibonacci on a dimension-7 hypercube (fib 18 and 15; one small size
//! whose label is OCR-damaged in our copy — we use fib 9, matching the
//! small-size time plots of the main body).

use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;

use super::plots::{plot_workloads, util_vs_goals, util_vs_time, UtilVsGoals, UtilVsTime};
use super::Fidelity;

/// Utilization-vs-goals plots, one per hypercube dimension (A-1..A-4).
pub fn goals_plots(fidelity: Fidelity, seed: u64) -> Vec<UtilVsGoals> {
    let workloads = plot_workloads(fidelity, true);
    fidelity
        .hypercube_dims()
        .iter()
        .map(|&dim| util_vs_goals(TopologySpec::Hypercube { dim }, &workloads, seed))
        .collect()
}

/// Utilization-vs-time plots on the largest hypercube (A-5..A-8).
pub fn time_plots(fidelity: Fidelity, seed: u64) -> Vec<UtilVsTime> {
    let (dim, sizes, interval): (u32, &[i64], u64) = match fidelity {
        Fidelity::Paper => (7, &[18, 15, 9], 100),
        Fidelity::Quick => (4, &[11, 9], 50),
    };
    sizes
        .iter()
        .map(|&n| {
            util_vs_time(
                TopologySpec::Hypercube { dim },
                WorkloadSpec::fib(n),
                interval,
                seed,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_appendix_runs() {
        let plots = goals_plots(Fidelity::Quick, 1);
        assert_eq!(plots.len(), 2);
        for p in &plots {
            assert!(matches!(p.topology, TopologySpec::Hypercube { .. }));
            assert_eq!(p.cwn.points.len(), 2);
        }
        let times = time_plots(Fidelity::Quick, 1);
        assert_eq!(times.len(), 2);
        assert!(!times[0].cwn.is_empty());
    }
}
