//! Plots 1–16: utilization vs problem size, and utilization vs time.
//!
//! Plots 1–10 put "average PE utilization in percents" on the Y axis
//! against "the problem-size in total number of goals generated" on the X
//! axis, one plot per topology, two lines (CWN, GM) each. The paper shows
//! dc; the fib analogues were "very similar, so we omit them from the
//! plots" — both are available here.
//!
//! Plots 11–16 show "the utilizations during short sampling intervals
//! throughout the course of computation": utilization vs time for fib 18,
//! 15 and 9 on the 100-PE DLM (11–13) and the 100-PE grid (14–16). The key
//! shapes: CWN's much faster rise time; CWN's inability to hold 100%; GM
//! holding 100% once reached; GM's flattening on grids.

use oracle_model::MachineConfig;
use oracle_strategies::StrategySpec;
use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;

use super::Fidelity;
use crate::builder::{paper_strategies, SimulationBuilder};
use crate::runner::{run_batch, RunSpec};
use crate::table::{f1, Table};

/// One strategy's line on a utilization-vs-goals plot.
#[derive(Debug, Clone)]
pub struct Line {
    /// The strategy.
    pub strategy: StrategySpec,
    /// `(goals_generated, avg_utilization_percent)` per workload size.
    pub points: Vec<(u64, f64)>,
}

/// One utilization-vs-goals plot (one topology, both schemes).
#[derive(Debug, Clone)]
pub struct UtilVsGoals {
    /// The topology of this plot.
    pub topology: TopologySpec,
    /// CWN's line.
    pub cwn: Line,
    /// GM's line.
    pub gm: Line,
}

/// Run one utilization-vs-goals plot: the given workloads (increasing
/// size), both paper strategies.
pub fn util_vs_goals(topology: TopologySpec, workloads: &[WorkloadSpec], seed: u64) -> UtilVsGoals {
    let (cwn, gm) = paper_strategies(&topology);
    let mut specs = Vec::new();
    for &w in workloads {
        for s in [cwn, gm] {
            specs.push(RunSpec::new(
                format!("{w}/{s}"),
                SimulationBuilder::new()
                    .topology(topology)
                    .strategy(s)
                    .workload(w)
                    .machine(MachineConfig::default().with_seed(seed))
                    .config(),
            ));
        }
    }
    let results = run_batch(&specs);
    let line = |offset: usize, strategy| Line {
        strategy,
        points: workloads
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let r = results[2 * i + offset]
                    .1
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{}: {e}", results[2 * i + offset].0));
                // Report utilizations are fractions; plot axes are percent.
                (w.num_goals(), r.avg_utilization * 100.0)
            })
            .collect(),
    };
    UtilVsGoals {
        topology,
        cwn: line(0, cwn),
        gm: line(1, gm),
    }
}

/// The dc workload set for plots 1–10 (or fib for the omitted analogues).
pub fn plot_workloads(fidelity: Fidelity, fib: bool) -> Vec<WorkloadSpec> {
    if fib {
        fidelity
            .fib_sizes()
            .iter()
            .map(|&n| WorkloadSpec::fib(n))
            .collect()
    } else {
        fidelity
            .dc_sizes()
            .iter()
            .map(|&x| WorkloadSpec::dc(x))
            .collect()
    }
}

/// Render a utilization-vs-goals plot as a table (one row per size).
pub fn render_util_vs_goals(p: &UtilVsGoals) -> Table {
    let mut table = Table::new(
        format!(
            "Avg PE utilization (%) vs no. of goals — {} ({} PEs)",
            p.topology,
            p.topology.num_pes()
        ),
        &["goals", "CWN", "GM"],
    );
    for (i, &(goals, cwn_util)) in p.cwn.points.iter().enumerate() {
        table.row(vec![goals.to_string(), f1(cwn_util), f1(p.gm.points[i].1)]);
    }
    table
}

/// One utilization-vs-time plot: both schemes' sampled series.
#[derive(Debug, Clone)]
pub struct UtilVsTime {
    /// The topology.
    pub topology: TopologySpec,
    /// The workload.
    pub workload: WorkloadSpec,
    /// `(interval_start, utilization_percent)` for CWN.
    pub cwn: Vec<(u64, f64)>,
    /// `(interval_start, utilization_percent)` for GM.
    pub gm: Vec<(u64, f64)>,
}

/// Run one utilization-vs-time plot.
pub fn util_vs_time(
    topology: TopologySpec,
    workload: WorkloadSpec,
    sampling_interval: u64,
    seed: u64,
) -> UtilVsTime {
    let (cwn, gm) = paper_strategies(&topology);
    let series = |strategy| {
        let r = SimulationBuilder::new()
            .topology(topology)
            .strategy(strategy)
            .workload(workload)
            .sampling_interval(sampling_interval)
            .machine(MachineConfig {
                sampling_interval,
                seed,
                ..MachineConfig::default()
            })
            .run_validated()
            .expect("util_vs_time run failed");
        r.util_series
            .iter()
            .map(|&(t, f)| (t, f * 100.0))
            .collect::<Vec<_>>()
    };
    UtilVsTime {
        topology,
        workload,
        cwn: series(cwn),
        gm: series(gm),
    }
}

/// Render a utilization-vs-time plot as a table (one row per interval).
pub fn render_util_vs_time(p: &UtilVsTime) -> Table {
    let mut table = Table::new(
        format!(
            "PE utilization (%) over time — {} on {}",
            p.workload, p.topology
        ),
        &["t", "CWN", "GM"],
    );
    let rows = p.cwn.len().max(p.gm.len());
    for i in 0..rows {
        let t = p
            .cwn
            .get(i)
            .or_else(|| p.gm.get(i))
            .map(|&(t, _)| t)
            .unwrap_or_default();
        let cell = |s: &Vec<(u64, f64)>| s.get(i).map_or_else(|| "-".into(), |&(_, u)| f1(u));
        table.row(vec![t.to_string(), cell(&p.cwn), cell(&p.gm)]);
    }
    table
}

/// Time of the first sample at which a series reaches `pct` percent —
/// the "rise time" the paper compares (CWN's is much shorter).
pub fn rise_time(series: &[(u64, f64)], pct: f64) -> Option<u64> {
    series.iter().find(|&&(_, u)| u >= pct).map(|&(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn util_vs_goals_has_both_lines() {
        let workloads = plot_workloads(Fidelity::Quick, false);
        let p = util_vs_goals(TopologySpec::grid(5), &workloads, 1);
        assert_eq!(p.cwn.points.len(), 2);
        assert_eq!(p.gm.points.len(), 2);
        // Utilization grows with problem size for CWN on a small machine.
        assert!(p.cwn.points[1].1 > p.cwn.points[0].1);
        // X coordinates are goal counts.
        assert_eq!(p.cwn.points[0].0, 41);
        let t = render_util_vs_goals(&p);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn cwn_rises_faster_than_gm() {
        let p = util_vs_time(TopologySpec::grid(5), WorkloadSpec::fib(13), 50, 1);
        let cwn_rise = rise_time(&p.cwn, 40.0);
        let gm_rise = rise_time(&p.gm, 40.0);
        match (cwn_rise, gm_rise) {
            (Some(c), Some(g)) => assert!(c <= g, "CWN rise {c} vs GM rise {g}"),
            (Some(_), None) => {} // GM never reached 40% — also the paper's point.
            other => panic!("unexpected rise times: {other:?}"),
        }
    }

    #[test]
    fn render_time_plot() {
        let p = util_vs_time(TopologySpec::grid(4), WorkloadSpec::fib(10), 50, 1);
        let t = render_util_vs_time(&p);
        assert!(!t.is_empty());
    }

    #[test]
    fn rise_time_helper() {
        let s = vec![(0, 10.0), (50, 45.0), (100, 90.0)];
        assert_eq!(rise_time(&s, 40.0), Some(50));
        assert_eq!(rise_time(&s, 95.0), None);
    }
}
