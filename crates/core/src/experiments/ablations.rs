//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation varies one knob on a fixed (topology, workload) pair and
//! reports speedup, utilization, completion time and goal traffic, so the
//! effect of the knob is directly visible. The paper motivates each:
//!
//! * radius/horizon — CWN's own parameters and the "horizon effect" (§2.1);
//! * GM interval — how often the gradient process runs (§3.1 notes 20 units
//!   is "fairly low", favouring GM);
//! * load metric — queue length vs queue + future commitments (§4's
//!   extended-tail diagnosis);
//! * load information — instant oracle vs piggy-backed/periodic words;
//! * co-processor — §3.1: "without such a co-processor, the gradient model
//!   will suffer more";
//! * communication/computation ratio — §5: "when the ratio is higher, CWN
//!   may lose some of its edge";
//! * grid wraparound — the text/diameter discrepancy (DESIGN.md);
//! * strategy shootout — all schemes, including the baselines and the
//!   extensions, on one configuration.

use oracle_model::config::LoadInfoMode;
use oracle_model::{CostModel, MachineConfig};
use oracle_strategies::StrategySpec;
use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;

use super::Fidelity;
use crate::builder::{paper_strategies, RunConfig, SimulationBuilder};
use crate::runner::{run_batch, RunSpec};
use crate::table::{f1, f2, Table};

/// One ablation data point.
#[derive(Debug, Clone)]
pub struct Point {
    /// What was varied.
    pub label: String,
    /// Speedup (the paper's headline metric).
    pub speedup: f64,
    /// Average PE utilization (%), including any software-routing time.
    pub utilization: f64,
    /// Useful-work efficiency (%): user computation over `P * T`.
    pub efficiency: f64,
    /// Completion time (units).
    pub completion_time: u64,
    /// Goal-message hops (communication cost of placement).
    pub goal_hops: u64,
    /// High-water mark of any PE's work queue (memory proxy).
    pub peak_queue: usize,
}

/// Run a list of labelled configurations into ablation points.
fn run_points(configs: Vec<(String, RunConfig)>) -> Vec<Point> {
    let specs: Vec<RunSpec> = configs
        .iter()
        .map(|(label, config)| RunSpec::new(label.clone(), config.clone()))
        .collect();
    run_batch(&specs)
        .into_iter()
        .map(|(label, result)| {
            let r = result.unwrap_or_else(|e| panic!("{label}: {e}"));
            Point {
                label,
                speedup: r.speedup,
                // Report utilizations are fractions; Points carry percent.
                utilization: r.avg_utilization * 100.0,
                efficiency: r.efficiency * 100.0,
                completion_time: r.completion_time,
                goal_hops: r.traffic.goal_hops,
                peak_queue: r.peak_queue_len,
            }
        })
        .collect()
}

/// Render ablation points as a table.
pub fn render(title: &str, points: &[Point]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "variant",
            "speedup",
            "util %",
            "eff %",
            "time",
            "goal hops",
            "peak q",
        ],
    );
    for p in points {
        t.row(vec![
            p.label.clone(),
            f2(p.speedup),
            f1(p.utilization),
            f1(p.efficiency),
            p.completion_time.to_string(),
            p.goal_hops.to_string(),
            p.peak_queue.to_string(),
        ]);
    }
    t
}

/// The fixed scenario each ablation runs on.
fn scenario(fidelity: Fidelity) -> (TopologySpec, WorkloadSpec) {
    match fidelity {
        Fidelity::Paper => (TopologySpec::grid(10), WorkloadSpec::fib(15)),
        Fidelity::Quick => (TopologySpec::grid(5), WorkloadSpec::fib(11)),
    }
}

fn base(topology: TopologySpec, workload: WorkloadSpec, seed: u64) -> SimulationBuilder {
    SimulationBuilder::new()
        .topology(topology)
        .strategy(paper_strategies(&topology).0)
        .workload(workload)
        .machine(MachineConfig::default().with_seed(seed))
}

/// CWN radius sweep (fixed horizon).
pub fn radius_sweep(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let (topology, workload) = scenario(fidelity);
    let radii: &[u32] = match fidelity {
        Fidelity::Paper => &[1, 2, 3, 5, 7, 9, 12, 15],
        Fidelity::Quick => &[1, 3, 5],
    };
    run_points(
        radii
            .iter()
            .map(|&radius| {
                let horizon = 2.min(radius.saturating_sub(1));
                (
                    format!("radius={radius}"),
                    base(topology, workload, seed)
                        .strategy(StrategySpec::Cwn { radius, horizon })
                        .config(),
                )
            })
            .collect(),
    )
}

/// CWN horizon sweep (fixed radius): the "look over the horizon" cost.
pub fn horizon_sweep(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let (topology, workload) = scenario(fidelity);
    let (radius, horizons): (u32, &[u32]) = match fidelity {
        Fidelity::Paper => (9, &[0, 1, 2, 3, 4]),
        Fidelity::Quick => (5, &[0, 1, 2]),
    };
    run_points(
        horizons
            .iter()
            .map(|&horizon| {
                (
                    format!("horizon={horizon}"),
                    base(topology, workload, seed)
                        .strategy(StrategySpec::Cwn { radius, horizon })
                        .config(),
                )
            })
            .collect(),
    )
}

/// Gradient-process interval sweep.
pub fn gm_interval_sweep(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let (topology, workload) = scenario(fidelity);
    let intervals: &[u64] = match fidelity {
        Fidelity::Paper => &[5, 10, 20, 40, 80, 160],
        Fidelity::Quick => &[10, 20, 40],
    };
    run_points(
        intervals
            .iter()
            .map(|&interval| {
                (
                    format!("interval={interval}"),
                    base(topology, workload, seed)
                        .strategy(StrategySpec::Gradient {
                            low_water_mark: 1,
                            high_water_mark: 2,
                            interval,
                        })
                        .config(),
                )
            })
            .collect(),
    )
}

/// Load metric: plain queue length vs queue + future commitments (for CWN).
pub fn load_metric(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let (topology, workload) = scenario(fidelity);
    run_points(
        [0u32, 1, 2]
            .iter()
            .map(|&w| {
                let mut cfg = base(topology, workload, seed).config();
                cfg.machine.future_commitment_weight = w;
                (format!("future-weight={w}"), cfg)
            })
            .collect(),
    )
}

/// Load information: instant oracle vs piggy-back-only vs periodic words.
pub fn load_info(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let (topology, workload) = scenario(fidelity);
    let modes = [
        ("instant", LoadInfoMode::Instant),
        ("piggyback-only", LoadInfoMode::Piggyback { period: 0 }),
        ("piggyback+20", LoadInfoMode::Piggyback { period: 20 }),
        ("piggyback+80", LoadInfoMode::Piggyback { period: 80 }),
    ];
    run_points(
        modes
            .iter()
            .map(|&(name, mode)| {
                let mut cfg = base(topology, workload, seed).config();
                cfg.machine.load_info = mode;
                (name.to_string(), cfg)
            })
            .collect(),
    )
}

/// Communication co-processor on/off, for both schemes. The paper predicts
/// GM suffers more without one.
pub fn coprocessor(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let (topology, workload) = scenario(fidelity);
    let (cwn, gm) = paper_strategies(&topology);
    let mut configs = Vec::new();
    for (name, strategy) in [("cwn", cwn), ("gm", gm)] {
        for (suffix, on) in [("coproc", true), ("software", false)] {
            configs.push((
                format!("{name}/{suffix}"),
                base(topology, workload, seed)
                    .strategy(strategy)
                    .coprocessor(on)
                    .config(),
            ));
        }
    }
    run_points(configs)
}

/// Communication/computation ratio sweep, for both schemes.
pub fn comm_ratio(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let (topology, workload) = scenario(fidelity);
    let (cwn, gm) = paper_strategies(&topology);
    let scales: &[u64] = match fidelity {
        Fidelity::Paper => &[1, 2, 5, 10, 15],
        Fidelity::Quick => &[1, 5],
    };
    // Include Adaptive CWN: the paper's §5 remedies ("techniques mentioned
    // in the last paragraph will then be necessary") are aimed exactly at
    // the high-communication regime.
    let (radius, horizon) = match cwn {
        StrategySpec::Cwn { radius, horizon } => (radius, horizon),
        _ => unreachable!("paper strategy pair starts with CWN"),
    };
    let acwn = StrategySpec::AdaptiveCwn {
        radius,
        horizon,
        saturation: 3,
        redistribute: true,
    };
    let mut configs = Vec::new();
    for &scale in scales {
        for (name, strategy) in [("cwn", cwn), ("gm", gm), ("acwn", acwn)] {
            configs.push((
                format!("{name}/comm-x{scale}"),
                base(topology, workload, seed)
                    .strategy(strategy)
                    .costs(CostModel::paper_default().with_comm_scaled(scale, 1))
                    .config(),
            ));
        }
    }
    run_points(configs)
}

/// Grid with and without wraparound, both schemes.
pub fn wraparound(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let side = match fidelity {
        Fidelity::Paper => 10,
        Fidelity::Quick => 5,
    };
    let workload = scenario(fidelity).1;
    let mut configs = Vec::new();
    for (name, wrap) in [("grid", false), ("torus", true)] {
        let topology = TopologySpec::Mesh2D {
            width: side,
            height: side,
            wraparound: wrap,
        };
        let (cwn, gm) = paper_strategies(&topology);
        for (sname, strategy) in [("cwn", cwn), ("gm", gm)] {
            configs.push((
                format!("{sname}/{name}"),
                base(topology, workload, seed).strategy(strategy).config(),
            ));
        }
    }
    run_points(configs)
}

/// All strategies on one configuration: the floor (local), the oblivious
/// baselines, the paper's two, and the extensions.
pub fn shootout(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let (topology, workload) = scenario(fidelity);
    let (cwn, gm) = paper_strategies(&topology);
    let (radius, horizon) = match cwn {
        StrategySpec::Cwn { radius, horizon } => (radius, horizon),
        _ => unreachable!(),
    };
    let strategies = [
        ("local", StrategySpec::Local),
        ("round-robin", StrategySpec::RoundRobin),
        ("random-walk-2", StrategySpec::RandomWalk { hops: 2 }),
        ("cwn", cwn),
        ("gm", gm),
        (
            "acwn",
            StrategySpec::AdaptiveCwn {
                radius,
                horizon,
                saturation: 3,
                redistribute: true,
            },
        ),
        (
            "work-stealing",
            StrategySpec::WorkStealing { retry_delay: 40 },
        ),
        (
            "diffusion",
            StrategySpec::Diffusion {
                interval: 20,
                threshold: 2,
                max_per_cycle: 2,
            },
        ),
        ("global-random", StrategySpec::GlobalRandom),
        (
            "threshold-probe",
            StrategySpec::ThresholdProbe {
                threshold: 2,
                probe_limit: 3,
            },
        ),
    ];
    run_points(
        strategies
            .iter()
            .map(|&(name, strategy)| {
                (
                    name.to_string(),
                    base(topology, workload, seed).strategy(strategy).config(),
                )
            })
            .collect(),
    )
}

/// Global-random placement vs CWN as the machine grows: §2.1's scalability
/// argument made measurable. On small machines uniform placement balances
/// perfectly; as the grid grows, its mean route length (and the contention
/// it causes) grows with it, while CWN's neighbourhood traffic does not.
pub fn global_scalability(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let sides: &[usize] = match fidelity {
        Fidelity::Paper => &[4, 6, 8, 10, 13, 16],
        Fidelity::Quick => &[4, 6],
    };
    let workload = WorkloadSpec::fib(15);
    let mut configs = Vec::new();
    for &side in sides {
        let topology = TopologySpec::grid(side);
        let (cwn, _) = paper_strategies(&topology);
        for (name, strategy) in [("cwn", cwn), ("global", StrategySpec::GlobalRandom)] {
            configs.push((
                format!("{name}/grid-{}", side * side),
                SimulationBuilder::new()
                    .topology(topology)
                    .strategy(strategy)
                    .workload(workload)
                    .machine(MachineConfig::default().with_seed(seed))
                    .config(),
            ));
        }
    }
    run_points(configs)
}

/// External validity: does the headline (CWN over GM) survive beyond the
/// paper's two well-behaved workloads? Runs both schemes over the extension
/// workloads — strongly skewed trees, seeded random trees with
/// heterogeneous grains, cyclic-parallelism phases, and the Takeuchi
/// benchmark.
pub fn workload_breadth(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let (topology, workloads): (TopologySpec, Vec<WorkloadSpec>) = match fidelity {
        Fidelity::Paper => (
            TopologySpec::grid(10),
            vec![
                WorkloadSpec::fib(15),
                WorkloadSpec::Lopsided {
                    budget: 2000,
                    skew_pct: 85,
                },
                WorkloadSpec::RandomTree {
                    budget: 2000,
                    max_children: 4,
                    grain_spread: 3,
                    seed: 11,
                },
                WorkloadSpec::Cyclic {
                    phases: 4,
                    width: 16,
                    leaves: 64,
                },
                WorkloadSpec::Tak { x: 14, y: 7, z: 0 },
            ],
        ),
        Fidelity::Quick => (
            TopologySpec::grid(5),
            vec![
                WorkloadSpec::Lopsided {
                    budget: 300,
                    skew_pct: 85,
                },
                WorkloadSpec::Tak { x: 8, y: 4, z: 0 },
            ],
        ),
    };
    let (cwn, gm) = paper_strategies(&topology);
    let mut configs = Vec::new();
    for &workload in &workloads {
        for (name, strategy) in [("cwn", cwn), ("gm", gm)] {
            configs.push((
                format!("{name}/{workload}"),
                base(topology, workload, seed).strategy(strategy).config(),
            ));
        }
    }
    run_points(configs)
}

/// Queue discipline: the order a PE picks queued work. LIFO executes
/// depth-first and bounds each queue by roughly the tree depth, where FIFO
/// holds a whole breadth level — the memory/throughput trade-off that
/// every tree-parallel runtime since has had to pick a side on. Watch the
/// `peak q` column; note also that depth-first disciplines *hurt* GM — its
/// export primitive takes the newest queued goal, which under LIFO is
/// exactly the goal the PE would have executed next.
pub fn queue_discipline(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    use oracle_model::config::QueueDiscipline as Q;
    let (topology, workload) = scenario(fidelity);
    let (cwn, gm) = paper_strategies(&topology);
    let mut configs = Vec::new();
    for (dname, d) in [
        ("fifo", Q::Fifo),
        ("lifo", Q::Lifo),
        ("deepest", Q::DeepestFirst),
    ] {
        for (name, strategy) in [("cwn", cwn), ("gm", gm)] {
            let mut cfg = base(topology, workload, seed).strategy(strategy).config();
            cfg.machine.queue_discipline = d;
            configs.push((format!("{name}/{dname}"), cfg));
        }
    }
    run_points(configs)
}

/// Heterogeneous hardware: as per-PE speed spread grows, how do the
/// schemes cope? Load-informed placement (CWN's gradient, GM's watermarks)
/// reads queue lengths, which on a mixed-speed machine no longer proxy
/// remaining work — an adversarial setting for both. Compare by
/// `time`: utilization (and hence "speedup") counts a slow PE's stretched
/// busy hours as if they were useful, so it flatters heterogeneous runs.
pub fn heterogeneity(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let (topology, workload) = scenario(fidelity);
    let (cwn, gm) = paper_strategies(&topology);
    let spreads: &[u64] = match fidelity {
        Fidelity::Paper => &[1, 2, 4, 8],
        Fidelity::Quick => &[1, 4],
    };
    let mut configs = Vec::new();
    for &spread in spreads {
        for (name, strategy) in [("cwn", cwn), ("gm", gm)] {
            let mut cfg = base(topology, workload, seed).strategy(strategy).config();
            cfg.machine.pe_speed_spread = spread;
            configs.push((format!("{name}/speed-spread-{spread}"), cfg));
        }
    }
    run_points(configs)
}

/// Dimensionality at a fixed PE count: 64 PEs as a ring (64-ary 1-cube),
/// an 8×8 torus, a 4-ary 3-cube, and a binary 6-cube. Diameter falls from
/// 32 to 6 while degree rises from 2 to 6 — where does CWN's neighbourhood
/// contracting benefit most?
pub fn dimensionality(fidelity: Fidelity, seed: u64) -> Vec<Point> {
    let cubes: &[(usize, u32)] = match fidelity {
        Fidelity::Paper => &[(64, 1), (8, 2), (4, 3), (2, 6)],
        Fidelity::Quick => &[(16, 1), (4, 2)],
    };
    let workload = match fidelity {
        Fidelity::Paper => WorkloadSpec::fib(15),
        Fidelity::Quick => WorkloadSpec::fib(11),
    };
    let mut configs = Vec::new();
    for &(k, n) in cubes {
        let topology = TopologySpec::KAryNCube { k, n };
        let (cwn, gm) = paper_strategies(&topology);
        for (name, strategy) in [("cwn", cwn), ("gm", gm)] {
            configs.push((
                format!("{name}/{k}-ary {n}-cube"),
                base(topology, workload, seed).strategy(strategy).config(),
            ));
        }
    }
    run_points(configs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_sweep_runs_and_orders() {
        let pts = radius_sweep(Fidelity::Quick, 1);
        assert_eq!(pts.len(), 3);
        // Larger radius means more hops travelled in total.
        assert!(pts[0].goal_hops <= pts[2].goal_hops);
    }

    #[test]
    fn shootout_includes_floor_and_all_schemes() {
        let pts = shootout(Fidelity::Quick, 1);
        assert_eq!(pts.len(), 10);
        let local = &pts[0];
        let cwn = pts.iter().find(|p| p.label == "cwn").unwrap();
        assert!(
            cwn.speedup > local.speedup * 2.0,
            "cwn {} should dominate local {}",
            cwn.speedup,
            local.speedup
        );
    }

    #[test]
    fn comm_ratio_erodes_cwn_edge() {
        let pts = comm_ratio(Fidelity::Quick, 1);
        let get = |label: &str| pts.iter().find(|p| p.label == label).unwrap().speedup;
        let edge_low = get("cwn/comm-x1") / get("gm/comm-x1");
        let edge_high = get("cwn/comm-x5") / get("gm/comm-x5");
        // §5: "When the ratio is higher, CWN may lose some of its edge."
        assert!(
            edge_high <= edge_low * 1.3,
            "edge did not erode: {edge_low} -> {edge_high}"
        );
    }

    #[test]
    fn workload_breadth_favours_cwn() {
        let pts = workload_breadth(Fidelity::Quick, 1);
        assert_eq!(pts.len(), 4);
        for pair in pts.chunks(2) {
            assert!(
                pair[0].speedup > pair[1].speedup * 0.9,
                "{}: CWN {} vs GM {}",
                pair[0].label,
                pair[0].speedup,
                pair[1].speedup
            );
        }
    }

    #[test]
    fn lifo_caps_the_queue_on_tree_workloads() {
        use oracle_model::config::QueueDiscipline as Q;
        let run = |d| {
            let mut cfg = SimulationBuilder::new()
                .topology(TopologySpec::Ring { n: 4 })
                .strategy(StrategySpec::Local)
                .workload(WorkloadSpec::dc(144))
                .config();
            cfg.machine.queue_discipline = d;
            cfg.run_validated().unwrap()
        };
        let fifo = run(Q::Fifo);
        let lifo = run(Q::Lifo);
        assert_eq!(fifo.completion_time, lifo.completion_time, "same work");
        assert!(
            lifo.peak_queue_len * 5 < fifo.peak_queue_len,
            "LIFO should slash the peak queue ({} vs {})",
            lifo.peak_queue_len,
            fifo.peak_queue_len
        );
    }

    #[test]
    fn heterogeneity_slows_everyone_down() {
        let pts = heterogeneity(Fidelity::Quick, 1);
        assert_eq!(pts.len(), 4);
        let uniform_cwn = &pts[0];
        let spread_cwn = &pts[2];
        assert!(spread_cwn.completion_time > uniform_cwn.completion_time);
    }

    #[test]
    fn dimensionality_runs_both_extremes() {
        let pts = dimensionality(Fidelity::Quick, 1);
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|p| p.speedup > 0.0));
    }

    #[test]
    fn render_ablation_table() {
        let pts = load_metric(Fidelity::Quick, 1);
        let t = render("load metric", &pts);
        assert_eq!(t.len(), 3);
    }
}
