//! Chaos-fuzzing harness: seeded random fault plans thrown at random
//! workload × topology × strategy combinations, every case run with the
//! invariant auditor on, under a panic catcher and a wall-clock watchdog.
//!
//! The harness answers one question continuously: does any combination of
//! injected faults drive the simulator into a state it does not handle —
//! a panic, an invariant violation, an unplanned goal loss, or a hang?
//! Modelling outcomes (a run that legitimately ends in
//! [`SimError::GoalsLost`] because its fault plan destroyed needed work, a
//! stall behind a dead PE, communication stagnation) are *contained*: they
//! are the simulator doing its job.
//!
//! Determinism: the whole case list is generated up front from one master
//! RNG, and each case is a pure function of its own configuration, so a
//! sweep's outcomes are identical regardless of `threads` — the worker
//! pool only decides wall-clock order. Failing cases are then shrunk
//! sequentially (drop fault-plan terms, shrink the workload; keep any
//! reduction that reproduces the same failure kind) into a minimal
//! reproducer line ready for `parse_suite` / `oracle-cli run --suite`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use oracle_des::Rng;
use oracle_model::{
    AdmissionPolicy, CostModel, FaultPlan, LinkWindow, MachineConfig, OpenTraffic, PeCrash,
    RecoveryParams, RetryPolicy, SimError, Slowdown,
};
use oracle_strategies::StrategySpec;
use oracle_topo::TopologySpec;
use oracle_workloads::WorkloadSpec;
use parking_lot::Mutex;

use crate::builder::RunConfig;

/// Knobs of one chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of cases to generate and run.
    pub cases: usize,
    /// Master seed: same seed, same case list, same outcomes.
    pub seed: u64,
    /// Worker threads (affects wall clock only, never outcomes).
    pub threads: usize,
    /// Wall-clock budget per case before it is declared hung.
    pub stall_timeout: Duration,
    /// Auditor interval forwarded to every case (0 disables — not
    /// recommended; the auditor is most of the point).
    pub audit_every: u64,
    /// Event-limit safety valve per case (also bounds how long an
    /// abandoned hung case can burn CPU after its watchdog fires).
    pub max_events: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            cases: 32,
            seed: 1,
            threads: crate::runner::default_threads(),
            stall_timeout: Duration::from_secs(30),
            audit_every: 64,
            max_events: 5_000_000,
        }
    }
}

/// One generated chaos case: a complete run description.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Position in the sweep (stable across thread counts).
    pub index: usize,
    /// Interconnection topology.
    pub topology: TopologySpec,
    /// Load-distribution strategy.
    pub strategy: StrategySpec,
    /// Simulated computation.
    pub workload: WorkloadSpec,
    /// Per-case machine seed.
    pub seed: u64,
    /// The injected fault schedule (possibly empty: fault-free cases keep
    /// the auditor honest on the happy path too).
    pub plan: FaultPlan,
    /// Open-arrival traffic for roughly a third of the cases, so the
    /// harness fuzzes the open regime (arrivals × faults × overload
    /// knobs), not just closed trees.
    pub open: Option<OpenTraffic>,
}

impl ChaosCase {
    /// The full run configuration for this case.
    pub fn run_config(&self, chaos: &ChaosConfig) -> RunConfig {
        RunConfig {
            topology: self.topology,
            strategy: self.strategy,
            workload: self.workload,
            costs: CostModel::paper_default(),
            machine: MachineConfig {
                seed: self.seed,
                audit_every: chaos.audit_every,
                max_events: chaos.max_events,
                fault_plan: self.plan.clone(),
                open: self.open.clone(),
                ..MachineConfig::default()
            },
        }
    }

    /// One-line label for progress output.
    pub fn label(&self) -> String {
        let open = match &self.open {
            Some(o) => format!(" arrivals={}", o.arrivals),
            None => String::new(),
        };
        format!(
            "case {:03}: {} {} {} seed={} faults={}{open}",
            self.index, self.topology, self.strategy, self.workload, self.seed, self.plan
        )
    }

    /// A `parse_suite`-compatible line reproducing this case.
    pub fn suite_line(&self) -> String {
        let mut line = format!(
            "{} {} {} seed={}",
            self.topology, self.strategy, self.workload, self.seed
        );
        if !self.plan.is_empty() {
            line.push_str(&format!(" faults={}", self.plan));
        }
        if let Some(open) = &self.open {
            line.push_str(&format!(
                " arrivals={} duration={} warmup={}",
                open.arrivals, open.duration, open.warmup
            ));
            if let Some(d) = open.deadline {
                line.push_str(&format!(" deadline={d}"));
            }
            if let Some(p) = &open.retry {
                line.push_str(&format!(" retry={p}"));
            }
            if let Some(p) = &open.admission {
                line.push_str(&format!(" admission={p}"));
            }
            if let Some(c) = open.breaker {
                line.push_str(&format!(" breaker={c}"));
            }
        }
        line
    }
}

/// How one chaos case ended.
#[derive(Debug, Clone)]
pub enum ChaosOutcome {
    /// Ran to completion with a valid report.
    Completed,
    /// Failed in a way the fault plan makes legitimate (planned goal loss,
    /// a stall behind dead PEs, stagnation, the event-limit valve).
    Contained(SimError),
    /// The simulator panicked — always a bug.
    Panicked(String),
    /// The auditor found inconsistent state, goals were lost with *no*
    /// plan to blame, or the run rejected its own generated configuration
    /// — always a bug.
    Violation(SimError),
    /// No answer within the wall-clock budget (seconds shown) — a hang the
    /// in-simulation watchdogs did not catch.
    TimedOut(u64),
}

impl ChaosOutcome {
    /// True for outcomes that fail the sweep.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            ChaosOutcome::Panicked(_) | ChaosOutcome::Violation(_) | ChaosOutcome::TimedOut(_)
        )
    }

    /// Stable name of the outcome class (shrinking preserves this).
    pub fn kind(&self) -> &'static str {
        match self {
            ChaosOutcome::Completed => "completed",
            ChaosOutcome::Contained(_) => "contained",
            ChaosOutcome::Panicked(_) => "panic",
            ChaosOutcome::Violation(_) => "violation",
            ChaosOutcome::TimedOut(_) => "timeout",
        }
    }
}

impl std::fmt::Display for ChaosOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosOutcome::Completed => write!(f, "completed"),
            ChaosOutcome::Contained(e) => write!(f, "contained: {e}"),
            ChaosOutcome::Panicked(msg) => write!(f, "PANIC: {msg}"),
            ChaosOutcome::Violation(e) => write!(f, "VIOLATION: {e}"),
            ChaosOutcome::TimedOut(secs) => write!(f, "TIMEOUT: no answer within {secs}s"),
        }
    }
}

/// A failing case, shrunk to a minimal reproducer.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The original failing case.
    pub case: ChaosCase,
    /// How the original case failed.
    pub outcome: ChaosOutcome,
    /// The minimal case still failing the same way.
    pub shrunk: ChaosCase,
    /// The shrunk case's outcome (same `kind` as `outcome`).
    pub shrunk_outcome: ChaosOutcome,
}

impl ChaosFailure {
    /// Ready-to-run reproducer: comment header plus a `parse_suite` line.
    pub fn reproducer(&self) -> String {
        format!(
            "# chaos reproducer: case {} of master seed {} — {}\n\
             # original: {}\n\
             # shrunk outcome: {}\n\
             # run with: oracle-cli batch <this file>\n\
             {}\n",
            self.case.index,
            self.case.seed,
            self.outcome,
            self.case.suite_line(),
            self.shrunk_outcome,
            self.shrunk.suite_line()
        )
    }
}

/// Results of a chaos sweep.
#[derive(Debug)]
pub struct ChaosReport {
    /// Outcome of every case, in case order (thread-count independent).
    pub outcomes: Vec<(ChaosCase, ChaosOutcome)>,
    /// Shrunk reproducers for every failing case.
    pub failures: Vec<ChaosFailure>,
}

impl ChaosReport {
    /// Count of cases with the given outcome kind.
    pub fn count(&self, kind: &str) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| o.kind() == kind)
            .count()
    }
}

// ---------------------------------------------------------------------
// Case generation: every random decision happens here, sequentially, off
// one master RNG — the parallel phase below never touches randomness.
// ---------------------------------------------------------------------

fn random_topology(rng: &mut Rng) -> TopologySpec {
    match rng.below(4) {
        0 => TopologySpec::grid(4),
        1 => TopologySpec::grid(5),
        2 => TopologySpec::Ring { n: 8 },
        _ => TopologySpec::Hypercube { dim: 3 },
    }
}

fn random_strategy(rng: &mut Rng) -> StrategySpec {
    match rng.below(10) {
        0 => StrategySpec::Cwn {
            radius: 4,
            horizon: 1,
        },
        1 => StrategySpec::Gradient {
            low_water_mark: 1,
            high_water_mark: 2,
            interval: 20,
        },
        2 => StrategySpec::AdaptiveCwn {
            radius: 4,
            horizon: 1,
            saturation: 3,
            redistribute: true,
        },
        3 => StrategySpec::WorkStealing { retry_delay: 25 },
        4 => StrategySpec::ThresholdProbe {
            threshold: 2,
            probe_limit: 3,
        },
        5 => StrategySpec::Diffusion {
            interval: 20,
            threshold: 2,
            max_per_cycle: 2,
        },
        6 => StrategySpec::GlobalRandom,
        7 => StrategySpec::RoundRobin,
        8 => StrategySpec::RandomWalk { hops: 3 },
        _ => StrategySpec::Local,
    }
}

fn random_workload(rng: &mut Rng) -> WorkloadSpec {
    match rng.below(4) {
        0 => WorkloadSpec::fib(10),
        1 => WorkloadSpec::fib(11),
        2 => WorkloadSpec::fib(12),
        _ => WorkloadSpec::dc(63),
    }
}

fn random_plan(rng: &mut Rng, num_pes: usize, num_channels: usize) -> FaultPlan {
    // One case in eight runs fault-free: the auditor must stay quiet on
    // the happy path too.
    if rng.below(8) == 0 {
        return FaultPlan::default();
    }
    let mut plan = FaultPlan::default();
    // Distinct crash victims (a PE never crashes twice) at distinct times.
    let crashes = rng.below(3) as usize;
    let mut victims: Vec<u32> = (0..num_pes as u32).collect();
    rng.shuffle(&mut victims);
    for &pe in victims.iter().take(crashes) {
        plan.pe_crashes.push(PeCrash {
            pe,
            at: rng.range_inclusive(50, 2000),
        });
    }
    // Link windows on distinct channels (same-channel windows must not
    // overlap; distinct channels sidestep the question entirely).
    let windows = rng.below(3) as usize;
    let mut channels: Vec<u32> = (0..num_channels as u32).collect();
    rng.shuffle(&mut channels);
    for &channel in channels.iter().take(windows) {
        let down_at = rng.range_inclusive(50, 1500);
        plan.link_windows.push(LinkWindow {
            channel,
            down_at,
            up_at: down_at + rng.range_inclusive(50, 500),
        });
    }
    // Integer percent so the plan grammar round-trips exactly.
    plan.message_loss = rng.below(4) as f64 / 100.0;
    if rng.below(4) == 0 {
        let from = rng.range_inclusive(50, 1000);
        plan.slowdowns.push(Slowdown {
            pe: rng.below(num_pes as u64) as u32,
            from,
            until: from + rng.range_inclusive(100, 600),
            factor: rng.range_inclusive(2, 4),
        });
    }
    // Recovery on for most cases: it is the most stateful (and therefore
    // most fuzz-worthy) part of the fault machinery.
    if rng.below(4) != 0 {
        plan.recovery = Some(RecoveryParams {
            ack_timeout: rng.range_inclusive(200, 800),
            max_retries: rng.range_inclusive(2, 6) as u32,
        });
    }
    plan
}

/// Open-arrival traffic for roughly a third of the cases. Rates stay
/// modest and horizons short (2000–6000) so a case still runs in
/// milliseconds; the overload knobs are sampled independently so the
/// auditor sees every combination of deadline × retry × admission ×
/// breaker over time.
fn random_open(rng: &mut Rng) -> Option<OpenTraffic> {
    if rng.below(3) != 0 {
        return None;
    }
    let spec = if rng.below(4) == 0 {
        format!(
            "burst:{}x1x{}x{}",
            rng.range_inclusive(3, 8),
            rng.range_inclusive(100, 300),
            rng.range_inclusive(200, 500)
        )
    } else {
        format!("poisson:{}", rng.range_inclusive(2, 8))
    };
    let spec = spec.parse().expect("generated arrival specs are valid");
    let mut open = OpenTraffic::new(spec, rng.range_inclusive(2000, 6000));
    if rng.below(2) == 0 {
        open.deadline = Some(rng.range_inclusive(500, 3000));
    }
    if rng.below(2) == 0 {
        open.retry = Some(RetryPolicy {
            max: rng.range_inclusive(1, 4) as u32,
            base: rng.range_inclusive(50, 300),
        });
    }
    match rng.below(4) {
        0 => {
            open.admission = Some(AdmissionPolicy::QueueDepth {
                max: rng.range_inclusive(4, 16),
            })
        }
        1 => {
            open.admission = Some(AdmissionPolicy::TokenBucket {
                rate: rng.range_inclusive(2, 10) as f64,
                burst: rng.range_inclusive(2, 8),
            })
        }
        _ => {}
    }
    if rng.below(3) == 0 {
        open.breaker = Some(rng.range_inclusive(200, 800));
    }
    Some(open)
}

/// Generate the full case list for a sweep (pure function of the config).
pub fn generate_cases(config: &ChaosConfig) -> Vec<ChaosCase> {
    let mut rng = Rng::seed_from_u64(config.seed ^ 0xC4A0_5EED);
    (0..config.cases)
        .map(|index| {
            let topology = random_topology(&mut rng);
            let topo = topology.build();
            ChaosCase {
                index,
                strategy: random_strategy(&mut rng),
                workload: random_workload(&mut rng),
                seed: rng.below(1 << 32),
                plan: random_plan(&mut rng, topo.num_pes(), topo.num_channels()),
                open: random_open(&mut rng),
                topology,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Guarded execution.
// ---------------------------------------------------------------------

fn classify(error: SimError, plan_is_empty: bool) -> ChaosOutcome {
    match &error {
        SimError::InvariantViolation { .. } | SimError::InvalidConfig(_) => {
            ChaosOutcome::Violation(error)
        }
        SimError::GoalsLost {
            expected_by_plan: false,
            ..
        } => ChaosOutcome::Violation(error),
        // With no faults injected, *any* failure is the simulator's fault.
        _ if plan_is_empty => ChaosOutcome::Violation(error),
        _ => ChaosOutcome::Contained(error),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one case under the panic catcher and wall-clock watchdog.
pub fn run_case(case: &ChaosCase, config: &ChaosConfig) -> ChaosOutcome {
    let run = case.run_config(config);
    let plan_is_empty = case.plan.is_empty();
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::Builder::new()
        .name(format!("chaos-case-{}", case.index))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| run.run()));
            // The receiver may have timed out and walked away.
            let _ = tx.send(result);
        })
        .expect("spawn chaos case thread");
    match rx.recv_timeout(config.stall_timeout) {
        Ok(result) => {
            let _ = worker.join();
            match result {
                Ok(Ok(_report)) => ChaosOutcome::Completed,
                Ok(Err(e)) => classify(e, plan_is_empty),
                Err(payload) => ChaosOutcome::Panicked(panic_message(payload)),
            }
        }
        // Abandon the worker: it self-terminates at the event limit.
        Err(_) => ChaosOutcome::TimedOut(config.stall_timeout.as_secs()),
    }
}

// ---------------------------------------------------------------------
// Shrinking.
// ---------------------------------------------------------------------

/// Every one-step reduction of a case: drop one fault-plan term, zero the
/// loss rate, drop recovery, drop one overload knob (or the open traffic
/// wholesale), or shrink the workload.
fn reductions(case: &ChaosCase) -> Vec<ChaosCase> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut ChaosCase)| {
        let mut c = case.clone();
        f(&mut c);
        out.push(c);
    };
    for i in 0..case.plan.pe_crashes.len() {
        push(&|c: &mut ChaosCase| {
            c.plan.pe_crashes.remove(i);
        });
    }
    for i in 0..case.plan.link_windows.len() {
        push(&|c: &mut ChaosCase| {
            c.plan.link_windows.remove(i);
        });
    }
    for i in 0..case.plan.slowdowns.len() {
        push(&|c: &mut ChaosCase| {
            c.plan.slowdowns.remove(i);
        });
    }
    if case.plan.message_loss > 0.0 {
        push(&|c: &mut ChaosCase| c.plan.message_loss = 0.0);
    }
    if case.plan.recovery.is_some() {
        push(&|c: &mut ChaosCase| c.plan.recovery = None);
    }
    if let Some(open) = &case.open {
        if open.deadline.is_some() {
            push(&|c: &mut ChaosCase| c.open.as_mut().unwrap().deadline = None);
        }
        if open.retry.is_some() {
            push(&|c: &mut ChaosCase| c.open.as_mut().unwrap().retry = None);
        }
        if open.admission.is_some() {
            push(&|c: &mut ChaosCase| c.open.as_mut().unwrap().admission = None);
        }
        if open.breaker.is_some() {
            push(&|c: &mut ChaosCase| c.open.as_mut().unwrap().breaker = None);
        }
        push(&|c: &mut ChaosCase| c.open = None);
    }
    match case.workload {
        WorkloadSpec::Fibonacci { n } if n > 8 => {
            push(&|c: &mut ChaosCase| c.workload = WorkloadSpec::fib(n - 1));
        }
        WorkloadSpec::DivideConquer { m, n } if n > 15 => {
            push(&|c: &mut ChaosCase| {
                c.workload = WorkloadSpec::DivideConquer { m, n: n / 2 };
            });
        }
        _ => {}
    }
    out
}

/// Greedily shrink a failing case: keep applying the first one-step
/// reduction that still fails with the same outcome kind, until none does
/// (or the re-run budget is spent).
pub fn shrink_case(
    case: &ChaosCase,
    outcome: &ChaosOutcome,
    config: &ChaosConfig,
) -> (ChaosCase, ChaosOutcome) {
    let kind = outcome.kind();
    let mut best = case.clone();
    let mut best_outcome = outcome.clone();
    let mut budget: u32 = 100;
    'outer: while budget > 0 {
        for candidate in reductions(&best) {
            budget -= 1;
            let candidate_outcome = run_case(&candidate, config);
            if candidate_outcome.kind() == kind {
                best = candidate;
                best_outcome = candidate_outcome;
                continue 'outer;
            }
            if budget == 0 {
                break;
            }
        }
        break;
    }
    (best, best_outcome)
}

// ---------------------------------------------------------------------
// The sweep driver.
// ---------------------------------------------------------------------

/// Run a full chaos sweep: generate, execute in parallel, shrink failures.
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    let cases = generate_cases(config);
    let threads = config.threads.clamp(1, cases.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ChaosOutcome>>> = cases.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cases.len() {
                    break;
                }
                let outcome = run_case(&cases[i], config);
                *slots[i].lock() = Some(outcome);
            });
        }
    });

    let outcomes: Vec<(ChaosCase, ChaosOutcome)> = cases
        .into_iter()
        .zip(slots)
        .map(|(case, slot)| {
            let outcome = slot
                .into_inner()
                .expect("every chaos slot is filled before scope exit");
            (case, outcome)
        })
        .collect();

    // Shrink failures sequentially, in case order, so the reproducer set
    // is as deterministic as the sweep itself.
    let failures = outcomes
        .iter()
        .filter(|(_, o)| o.is_failure())
        .map(|(case, outcome)| {
            let (shrunk, shrunk_outcome) = shrink_case(case, outcome, config);
            ChaosFailure {
                case: case.clone(),
                outcome: outcome.clone(),
                shrunk,
                shrunk_outcome,
            }
        })
        .collect();

    ChaosReport { outcomes, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(cases: usize, seed: u64) -> ChaosConfig {
        ChaosConfig {
            cases,
            seed,
            threads: 4,
            stall_timeout: Duration::from_secs(60),
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn case_generation_is_deterministic_and_valid() {
        let a = generate_cases(&quick_config(12, 7));
        let b = generate_cases(&quick_config(12, 7));
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.suite_line(), y.suite_line());
            let topo = x.topology.build();
            x.plan
                .validate(topo.num_pes(), topo.num_channels())
                .unwrap_or_else(|e| panic!("generated invalid plan {}: {e}", x.plan));
        }
        let c = generate_cases(&quick_config(12, 8));
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.suite_line() != y.suite_line()),
            "different master seeds produced identical sweeps"
        );
    }

    #[test]
    fn suite_lines_parse_back() {
        for case in generate_cases(&quick_config(8, 3)) {
            let specs = crate::runner::parse_suite(&case.suite_line())
                .unwrap_or_else(|e| panic!("{}: {e}", case.suite_line()));
            assert_eq!(specs.len(), 1);
            assert_eq!(specs[0].config.machine.seed, case.seed);
            assert_eq!(specs[0].config.machine.fault_plan, case.plan);
            assert_eq!(
                specs[0].config.machine.open,
                case.open,
                "{}",
                case.suite_line()
            );
        }
    }

    #[test]
    fn sweep_samples_the_open_regime() {
        let cases = generate_cases(&quick_config(48, 9));
        let open: Vec<_> = cases.iter().filter_map(|c| c.open.as_ref()).collect();
        assert!(
            open.len() >= 8,
            "only {} of 48 cases are open-arrival",
            open.len()
        );
        assert!(
            open.iter().any(|o| o.deadline.is_some())
                && open.iter().any(|o| o.retry.is_some())
                && open.iter().any(|o| o.admission.is_some())
                && open.iter().any(|o| o.breaker.is_some()),
            "overload knobs are not all exercised"
        );
        for o in open {
            o.validate().expect("generated open traffic is valid");
            assert!((2000..=6000).contains(&o.duration));
        }
    }

    #[test]
    fn outcomes_are_thread_count_independent() {
        let mut sequential = quick_config(6, 11);
        sequential.threads = 1;
        let mut parallel = quick_config(6, 11);
        parallel.threads = 4;
        let a = run_chaos(&sequential);
        let b = run_chaos(&parallel);
        let kinds = |r: &ChaosReport| r.outcomes.iter().map(|(_, o)| o.kind()).collect::<Vec<_>>();
        assert_eq!(kinds(&a), kinds(&b));
    }

    #[test]
    fn sweep_contains_all_faults() {
        let report = run_chaos(&quick_config(10, 5));
        assert_eq!(report.outcomes.len(), 10);
        for (case, outcome) in &report.outcomes {
            assert!(!outcome.is_failure(), "{}: {outcome}", case.label());
        }
        assert!(report.failures.is_empty());
    }

    #[test]
    fn shrinking_reduces_a_synthetic_failure() {
        // A panicking case fabricated by breaking the strategy parameters
        // is hard to arrange without touching real code; instead verify
        // the shrinker's mechanics on a *contained* outcome by treating it
        // as the target kind: every reduction either reproduces the kind
        // (shrinks) or is rejected, and the result still has that kind.
        let config = quick_config(40, 2);
        let cases = generate_cases(&config);
        let Some((case, outcome)) = cases
            .iter()
            .map(|c| (c, run_case(c, &config)))
            .find(|(_, o)| matches!(o, ChaosOutcome::Contained(_)))
        else {
            // Every case completed: nothing to shrink, nothing to check.
            return;
        };
        let (shrunk, shrunk_outcome) = shrink_case(case, &outcome, &config);
        assert_eq!(shrunk_outcome.kind(), outcome.kind());
        let original_terms =
            case.plan.pe_crashes.len() + case.plan.link_windows.len() + case.plan.slowdowns.len();
        let shrunk_terms = shrunk.plan.pe_crashes.len()
            + shrunk.plan.link_windows.len()
            + shrunk.plan.slowdowns.len();
        assert!(shrunk_terms <= original_terms);
    }
}
