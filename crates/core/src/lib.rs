//! # oracle — reproducing "Comparing the Performance of Two Dynamic Load
//! Distribution Methods" (Kale, ICPP 1988)
//!
//! This crate is the public facade of the reproduction: a builder API over
//! the ORACLE-style multiprocessor simulator, the paper's two competitors
//! (CWN and the Gradient Model) plus extensions, and presets that regenerate
//! every table and figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use oracle::prelude::*;
//!
//! let report = SimulationBuilder::new()
//!     .topology(TopologySpec::grid(5))
//!     .strategy(StrategySpec::Cwn { radius: 4, horizon: 1 })
//!     .workload(WorkloadSpec::fib(11))
//!     .seed(42)
//!     .run()
//!     .unwrap();
//!
//! assert_eq!(report.result, 89); // the machine really computed fib(11)
//! println!(
//!     "{}: {:.1}% utilization, speedup {:.1} on {} PEs",
//!     report.strategy,
//!     report.avg_utilization * 100.0, // utilizations are fractions in [0, 1]
//!     report.speedup,
//!     report.num_pes
//! );
//! ```
//!
//! ## Layout
//!
//! * [`builder`] — [`SimulationBuilder`]: one simulation run.
//! * [`runner`] — deterministic parallel execution of run batches.
//! * [`checkpoint`] — crash-safe on-disk checkpoints and bit-identical
//!   resume.
//! * [`chaos`] — seeded chaos-fuzzing sweeps with shrinking reproducers.
//! * [`experiments`] — presets for every table and figure in the paper.
//! * [`table`] — plain-text table rendering for harness output.
//! * [`chart`] — ASCII line charts (the plot harnesses draw the paper's
//!   figures in the terminal).
//! * [`heatmap`] — the paper's red/blue load monitor as PPM images.
//! * [`traceio`] — structured trace export (JSONL and Chrome
//!   `trace_event`), format validators, and the utilization-series CSV.
//! * [`prelude`] — one-stop imports.

pub mod builder;
pub mod chaos;
pub mod chart;
pub mod checkpoint;
pub mod experiments;
pub mod heatmap;
pub mod runner;
pub mod table;
pub mod traceio;

pub use builder::SimulationBuilder;

// Re-export the component crates under stable names.
pub use oracle_des as des;
pub use oracle_model as model;
pub use oracle_strategies as strategies;
pub use oracle_topo as topo;
pub use oracle_workloads as workloads;

/// Convenient glob import for applications and examples.
pub mod prelude {
    pub use crate::builder::SimulationBuilder;
    pub use crate::experiments;
    pub use crate::runner::{run_batch, RunSpec};
    pub use crate::table::Table;
    pub use crate::traceio::{
        export_series_csv, export_trace, validate_trace, TraceFormat, TraceSummary,
    };
    pub use oracle_model::{
        AdmissionPolicy, ArrivalSpec, Continuation, CostModel, Expansion, MachineConfig,
        OpenMetrics, OpenOutcome, OpenTraffic, Program, Report, RetryPolicy, SimError, StateMode,
        Strategy, TaskSpec, Trace, TraceEvent, TraceMode,
    };
    pub use oracle_strategies::StrategySpec;
    pub use oracle_topo::TopologySpec;
    pub use oracle_workloads::{AnyWorkload, OpenWorkload, WorkloadSpec};
}
