//! Minimal plain-text table rendering for the benchmark harnesses.

use std::fmt;

/// A plain-text table: a title, a header row, and data rows. Columns are
/// sized to their widest cell; the first column is left-aligned, the rest
/// right-aligned (matching the paper's numeric tables).
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (header + rows, comma-separated, no quoting — cells in
    /// this project never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "{}", self.title)?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "{cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with the paper's two-decimal style.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with one decimal (utilization percentages).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "x"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["longer".into(), "12.34".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("longer  12.34"), "got:\n{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new("", &["a", "b"]).row(vec!["only".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(f1(99.96), "100.0");
    }
}
