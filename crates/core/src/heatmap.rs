//! Load-monitor heatmaps as portable pixmap (PPM) images.
//!
//! ORACLE's "specially formatted output … displayed on the graphics device
//! with a continuum of colors representing relative activity on each PE
//! (red: busy, blue: idle)". This module renders the same data — the
//! per-PE, per-interval utilization series — as a binary PPM (P6) image:
//! one row per PE, one column per sampling interval, colour interpolated
//! from blue (idle) through violet to red (busy). PPM needs no image
//! library and every viewer (and converter) understands it.

use std::io::Write as _;
use std::path::Path;

/// The idle colour (blue), matching the paper's monitor.
const IDLE: [u8; 3] = [30, 60, 220];
/// The busy colour (red).
const BUSY: [u8; 3] = [225, 45, 30];

/// A simple RGB raster with PPM (P6) serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ppm {
    width: usize,
    height: usize,
    pixels: Vec<u8>, // RGB, row-major
}

impl Ppm {
    /// A black image of the given size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Ppm {
            width,
            height,
            pixels: vec![0; width * height * 3],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Set one pixel.
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let i = (y * self.width + x) * 3;
        self.pixels[i..i + 3].copy_from_slice(&rgb);
    }

    /// Read one pixel.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        let i = (y * self.width + x) * 3;
        [self.pixels[i], self.pixels[i + 1], self.pixels[i + 2]]
    }

    /// Serialize as binary PPM (P6).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pixels.len() + 32);
        let _ = write!(out, "P6\n{} {}\n255\n", self.width, self.height);
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Write to a file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }
}

/// Map a utilization fraction in `[0, 1]` onto the blue-to-red continuum.
pub fn colormap(util: f64) -> [u8; 3] {
    let u = util.clamp(0.0, 1.0);
    let lerp = |a: u8, b: u8| (a as f64 + (b as f64 - a as f64) * u).round() as u8;
    [
        lerp(IDLE[0], BUSY[0]),
        lerp(IDLE[1], BUSY[1]),
        lerp(IDLE[2], BUSY[2]),
    ]
}

/// Render a per-PE utilization series (`series[pe][interval]`, fractions in
/// `[0, 1]`) as a heatmap: one row of cells per PE, one column per sampling
/// interval, each cell `scale × scale` pixels.
///
/// # Panics
///
/// Panics if the series is empty or `scale == 0`.
pub fn render(series: &[Vec<f64>], scale: usize) -> Ppm {
    assert!(!series.is_empty(), "no PEs in the series");
    assert!(scale > 0, "scale must be positive");
    let intervals = series.iter().map(Vec::len).max().unwrap_or(0);
    assert!(intervals > 0, "no sampling intervals in the series");

    let mut img = Ppm::new(intervals * scale, series.len() * scale);
    for (pe, row) in series.iter().enumerate() {
        for i in 0..intervals {
            let u = row.get(i).copied().unwrap_or(0.0);
            let rgb = colormap(u);
            for dy in 0..scale {
                for dx in 0..scale {
                    img.set(i * scale + dx, pe * scale + dy, rgb);
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colormap_endpoints() {
        assert_eq!(colormap(0.0), IDLE);
        assert_eq!(colormap(1.0), BUSY);
        assert_eq!(colormap(-5.0), IDLE); // clamped
        assert_eq!(colormap(7.0), BUSY);
        // Midpoint is between the endpoints channel-wise.
        let mid = colormap(0.5);
        assert!(mid[0] > IDLE[0] && mid[0] < BUSY[0]);
        assert!(mid[2] < IDLE[2] && mid[2] > BUSY[2]);
    }

    #[test]
    fn ppm_bytes_have_the_right_header_and_size() {
        let img = Ppm::new(3, 2);
        let bytes = img.to_bytes();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 3 * 2 * 3);
    }

    #[test]
    fn set_get_round_trip() {
        let mut img = Ppm::new(4, 4);
        img.set(2, 3, [9, 8, 7]);
        assert_eq!(img.get(2, 3), [9, 8, 7]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn render_scales_cells() {
        let series = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let img = render(&series, 3);
        assert_eq!(img.width(), 6);
        assert_eq!(img.height(), 6);
        // Top-left cell idle blue, top-right busy red.
        assert_eq!(img.get(0, 0), IDLE);
        assert_eq!(img.get(5, 0), BUSY);
        assert_eq!(img.get(0, 5), BUSY);
        assert_eq!(img.get(5, 5), IDLE);
    }

    #[test]
    fn ragged_series_pads_with_idle() {
        let series = vec![vec![1.0, 1.0], vec![1.0]];
        let img = render(&series, 1);
        assert_eq!(img.get(1, 1), IDLE, "missing samples render idle");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_pixel_panics() {
        Ppm::new(2, 2).set(2, 0, [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "no PEs")]
    fn empty_series_panics() {
        render(&[], 1);
    }
}
