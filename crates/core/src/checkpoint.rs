//! Crash-safe checkpoint files: versioned on-disk snapshots of a running
//! simulation.
//!
//! A checkpoint file carries two things:
//!
//! 1. The full [`RunConfig`] — topology, strategy, and workload specs (in
//!    their compact string grammars), the cost model, and every machine
//!    knob including the fault plan. Resuming rebuilds the immutable half
//!    of the machine from this, so a checkpoint is self-contained: no
//!    flags need repeating on the resume command line.
//! 2. The machine snapshot blob ([`Machine::snapshot_bytes`]) — every
//!    piece of mutable run state, down to RNG words and raw IEEE-754
//!    statistics bits.
//!
//! Because the simulator is deterministic and the snapshot captures all
//! mutable state, a resumed run produces a **bit-identical** final report
//! to the uninterrupted run (`tests/robustness.rs` pins this per
//! strategy, per queue backend, and under active fault plans).
//!
//! Files are written atomically: the blob goes to a temporary file in the
//! target directory which is then renamed into place, so a crash mid-write
//! can leave a stale temp file behind but never a torn checkpoint.

use std::fmt;
use std::path::{Path, PathBuf};

use oracle_des::snapshot::{SnapError, SnapReader, SnapWriter};
use oracle_model::config::{LoadInfoMode, QueueDiscipline};
use oracle_model::StateMode;
use oracle_model::{CostModel, Machine, MachineConfig, QueueBackend, Report, SimError};

use crate::builder::RunConfig;

/// Magic prefix of a checkpoint file (`"OCKP"`).
pub const CHECKPOINT_MAGIC: u32 = 0x4F43_4B50;
/// Version of the checkpoint layout. Bumped on any layout change; reading
/// refuses other versions rather than guessing.
///
/// v2 added the open-traffic configuration (arrival spec, measurement
/// windows, saturation threshold) alongside the v2 machine snapshot.
///
/// v3 added the overload-protection knobs (deadline, retry policy,
/// admission policy, breaker cooldown) alongside the v3 machine snapshot.
///
/// v4 added the progress-watchdog window (`progress_window`) — a resumed
/// run must arm its stall detector exactly like the uninterrupted one.
///
/// v5 added the memory-model knobs (`state_mode`, `per_pe_metrics`)
/// alongside the v5 machine snapshot: the restored machine must pick the
/// same dense/sparse representation and the same report shape.
pub const CHECKPOINT_VERSION: u32 = 5;

/// Everything that can go wrong writing, reading, or resuming a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (create, write, rename, read).
    Io(std::io::Error),
    /// The file is not a checkpoint, is from a different layout version, or
    /// is corrupt or truncated.
    Format(String),
    /// The checkpoint decoded fine but the simulator rejected it (or the
    /// resumed run itself failed).
    Sim(SimError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(msg) => write!(f, "bad checkpoint file: {msg}"),
            CheckpointError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<SimError> for CheckpointError {
    fn from(e: SimError) -> Self {
        CheckpointError::Sim(e)
    }
}

impl From<SnapError> for CheckpointError {
    fn from(e: SnapError) -> Self {
        CheckpointError::Format(e.to_string())
    }
}

// ---------------------------------------------------------------------
// RunConfig codec. Specs use their compact string grammars (the same
// round-trippable Display/FromStr pairs the suite parser uses); numeric
// knobs are written field by field.
// ---------------------------------------------------------------------

fn put_config(w: &mut SnapWriter, config: &RunConfig) {
    w.str(&config.topology.to_string());
    w.str(&config.strategy.to_string());
    w.str(&config.workload.to_string());

    let c = &config.costs;
    w.u64(c.split_cost);
    w.u64(c.leaf_cost);
    w.u64(c.combine_cost);
    w.u64(c.goal_hop_cost);
    w.u64(c.response_hop_cost);
    w.u64(c.control_hop_cost);
    w.u64(c.software_routing_cost);

    let m = &config.machine;
    w.u64(m.seed);
    w.u32(m.root_pe);
    w.u64(m.sampling_interval);
    match m.load_info {
        LoadInfoMode::Piggyback { period } => {
            w.u8(0);
            w.u64(period);
        }
        LoadInfoMode::Instant => w.u8(1),
    }
    w.bool(m.count_responses_in_load);
    w.u32(m.future_commitment_weight);
    w.bool(m.optimistic_accounting);
    w.bool(m.coprocessor);
    w.bool(m.per_pe_series);
    w.u8(match m.state_mode {
        StateMode::Auto => 0,
        StateMode::Dense => 1,
        StateMode::Sparse => 2,
    });
    w.bool(m.per_pe_metrics);
    w.u64(m.max_events);
    w.u64(m.progress_window);
    w.usize(m.trace_capacity);
    w.u8(match m.queue_discipline {
        QueueDiscipline::Fifo => 0,
        QueueDiscipline::Lifo => 1,
        QueueDiscipline::DeepestFirst => 2,
    });
    w.u8(match m.queue_backend {
        QueueBackend::Heap => 0,
        QueueBackend::Calendar => 1,
    });
    match m.fail_pe {
        Some((pe, at)) => {
            w.bool(true);
            w.u32(pe);
            w.u64(at);
        }
        None => w.bool(false),
    }
    w.str(&m.fault_plan.to_string());
    w.u64(m.audit_every);
    match &m.open {
        Some(open) => {
            w.bool(true);
            w.str(&open.arrivals.to_string());
            w.u64(open.duration);
            w.u64(open.warmup);
            w.u64(open.saturation_inflight);
            match open.deadline {
                Some(d) => {
                    w.bool(true);
                    w.u64(d);
                }
                None => w.bool(false),
            }
            // Retry and admission policies travel in their compact string
            // grammars (the same round-trippable Display/FromStr pairs the
            // CLI flags use).
            match &open.retry {
                Some(p) => {
                    w.bool(true);
                    w.str(&p.to_string());
                }
                None => w.bool(false),
            }
            match &open.admission {
                Some(p) => {
                    w.bool(true);
                    w.str(&p.to_string());
                }
                None => w.bool(false),
            }
            match open.breaker {
                Some(c) => {
                    w.bool(true);
                    w.u64(c);
                }
                None => w.bool(false),
            }
        }
        None => w.bool(false),
    }
    w.u64(m.pe_speed_spread);
}

fn get_config(r: &mut SnapReader) -> Result<RunConfig, CheckpointError> {
    let parse = |what: &'static str, s: &str, e: String| {
        CheckpointError::Format(format!("bad {what} spec {s:?}: {e}"))
    };
    let topology = r.str()?;
    let topology = topology
        .parse()
        .map_err(|e: oracle_topo::spec::ParseSpecError| {
            parse("topology", topology, e.to_string())
        })?;
    let strategy = r.str()?;
    let strategy = strategy
        .parse()
        .map_err(|e: oracle_strategies::spec::ParseStrategyError| {
            parse("strategy", strategy, e.to_string())
        })?;
    let workload = r.str()?;
    let workload = workload
        .parse()
        .map_err(|e: oracle_workloads::spec::ParseWorkloadError| {
            parse("workload", workload, e.to_string())
        })?;

    let costs = CostModel {
        split_cost: r.u64()?,
        leaf_cost: r.u64()?,
        combine_cost: r.u64()?,
        goal_hop_cost: r.u64()?,
        response_hop_cost: r.u64()?,
        control_hop_cost: r.u64()?,
        software_routing_cost: r.u64()?,
    };

    let seed = r.u64()?;
    let root_pe = r.u32()?;
    let sampling_interval = r.u64()?;
    let load_info = match r.u8()? {
        0 => LoadInfoMode::Piggyback { period: r.u64()? },
        1 => LoadInfoMode::Instant,
        t => {
            return Err(CheckpointError::Format(format!(
                "unknown load-info mode tag {t}"
            )))
        }
    };
    let count_responses_in_load = r.bool()?;
    let future_commitment_weight = r.u32()?;
    let optimistic_accounting = r.bool()?;
    let coprocessor = r.bool()?;
    let per_pe_series = r.bool()?;
    let state_mode = match r.u8()? {
        0 => StateMode::Auto,
        1 => StateMode::Dense,
        2 => StateMode::Sparse,
        t => {
            return Err(CheckpointError::Format(format!(
                "unknown state-mode tag {t}"
            )))
        }
    };
    let per_pe_metrics = r.bool()?;
    let max_events = r.u64()?;
    let progress_window = r.u64()?;
    let trace_capacity = r.usize()?;
    let queue_discipline = match r.u8()? {
        0 => QueueDiscipline::Fifo,
        1 => QueueDiscipline::Lifo,
        2 => QueueDiscipline::DeepestFirst,
        t => {
            return Err(CheckpointError::Format(format!(
                "unknown queue-discipline tag {t}"
            )))
        }
    };
    let queue_backend = match r.u8()? {
        0 => QueueBackend::Heap,
        1 => QueueBackend::Calendar,
        t => {
            return Err(CheckpointError::Format(format!(
                "unknown queue-backend tag {t}"
            )))
        }
    };
    let fail_pe = if r.bool()? {
        Some((r.u32()?, r.u64()?))
    } else {
        None
    };
    let fault_plan = r.str()?;
    let fault_plan =
        fault_plan
            .parse()
            .map_err(|e: oracle_model::faults::ParseFaultPlanError| {
                parse("fault-plan", fault_plan, e.to_string())
            })?;
    let audit_every = r.u64()?;
    let open = if r.bool()? {
        let arrivals = r.str()?;
        let arrivals = arrivals
            .parse()
            .map_err(|e: oracle_model::ParseArrivalError| {
                parse("arrival", arrivals, e.to_string())
            })?;
        let duration = r.u64()?;
        let warmup = r.u64()?;
        let saturation_inflight = r.u64()?;
        let deadline = if r.bool()? { Some(r.u64()?) } else { None };
        let retry =
            if r.bool()? {
                let s = r.str()?;
                Some(s.parse().map_err(|e: oracle_model::ParseOverloadError| {
                    parse("retry", s, e.to_string())
                })?)
            } else {
                None
            };
        let admission = if r.bool()? {
            let s = r.str()?;
            Some(s.parse().map_err(|e: oracle_model::ParseOverloadError| {
                parse("admission", s, e.to_string())
            })?)
        } else {
            None
        };
        let breaker = if r.bool()? { Some(r.u64()?) } else { None };
        Some(oracle_model::OpenTraffic {
            arrivals,
            duration,
            warmup,
            saturation_inflight,
            deadline,
            retry,
            admission,
            breaker,
        })
    } else {
        None
    };
    let pe_speed_spread = r.u64()?;

    Ok(RunConfig {
        topology,
        strategy,
        workload,
        costs,
        machine: MachineConfig {
            seed,
            root_pe,
            sampling_interval,
            load_info,
            count_responses_in_load,
            future_commitment_weight,
            optimistic_accounting,
            coprocessor,
            per_pe_series,
            state_mode,
            per_pe_metrics,
            max_events,
            progress_window,
            trace_capacity,
            // Observability knobs: the trace ring mode and the profiler are
            // not part of a snapshot (a resumed run's trace/profile start at
            // the resume point), so checkpoints don't persist them.
            trace_mode: oracle_model::TraceMode::default(),
            profile: false,
            queue_discipline,
            queue_backend,
            fail_pe,
            fault_plan,
            audit_every,
            open,
            pe_speed_spread,
        },
    })
}

/// Serialize a checkpoint: header, run configuration, machine snapshot.
pub fn checkpoint_bytes(config: &RunConfig, machine: &mut Machine) -> Vec<u8> {
    let snapshot = machine.snapshot_bytes();
    let mut w = SnapWriter::with_capacity(snapshot.len() + 256);
    w.u32(CHECKPOINT_MAGIC);
    w.u32(CHECKPOINT_VERSION);
    put_config(&mut w, config);
    w.bytes(&snapshot);
    w.into_bytes()
}

/// A checkpoint read back from disk, ready to resume.
#[derive(Debug)]
pub struct Checkpoint {
    /// The full configuration of the interrupted run.
    pub config: RunConfig,
    /// The machine snapshot blob.
    machine_bytes: Vec<u8>,
}

impl Checkpoint {
    /// Decode a checkpoint blob.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = SnapReader::new(bytes);
        let magic = r.u32()?;
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::Format(format!(
                "not a checkpoint file (magic {magic:#010x}, expected {CHECKPOINT_MAGIC:#010x})"
            )));
        }
        let version = r.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Format(format!(
                "checkpoint layout version {version} is not supported \
                 (this build reads version {CHECKPOINT_VERSION})"
            )));
        }
        let config = get_config(&mut r)?;
        let machine_bytes = r.bytes()?.to_vec();
        r.finish()?;
        Ok(Checkpoint {
            config,
            machine_bytes,
        })
    }

    /// Read and decode a checkpoint file.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Rebuild the machine mid-run: construct it from the stored
    /// configuration, then restore the snapshot *instead of* beginning the
    /// run. The returned machine continues exactly where the checkpoint was
    /// taken.
    pub fn resume(&self) -> Result<Machine, CheckpointError> {
        let mut machine = self.config.machine()?;
        machine.restore_bytes(&self.machine_bytes)?;
        Ok(machine)
    }
}

/// Write a checkpoint atomically: serialize to `<dir>/.<name>.tmp-<pid>`,
/// then rename over the final path. A crash mid-write never leaves a torn
/// checkpoint under the final name.
pub fn write_checkpoint(
    path: &Path,
    config: &RunConfig,
    machine: &mut Machine,
) -> Result<(), CheckpointError> {
    let bytes = checkpoint_bytes(config, machine);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path.file_name().ok_or_else(|| {
        CheckpointError::Format(format!("checkpoint path {path:?} has no file name"))
    })?;
    let tmp = dir.unwrap_or(Path::new(".")).join(format!(
        ".{}.tmp-{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    std::fs::write(&tmp, &bytes)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Outcome of a checkpointed run: the final report plus every checkpoint
/// file written along the way.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// The final report (bit-identical to an un-checkpointed run).
    pub report: Report,
    /// Paths of the checkpoints written, in simulated-time order.
    pub checkpoints: Vec<PathBuf>,
}

/// Run `config` to completion, writing a checkpoint into `dir` every
/// `every` simulated time units (file names are
/// `ckpt-t<simulated-time>.oracle`). Checkpointing is observation only:
/// the final report is bit-identical to a plain [`RunConfig::run`].
pub fn run_with_checkpoints(
    config: &RunConfig,
    every: u64,
    dir: &Path,
) -> Result<CheckpointedRun, CheckpointError> {
    if every == 0 {
        return Err(CheckpointError::Sim(SimError::InvalidConfig(
            "checkpoint interval must be positive".into(),
        )));
    }
    std::fs::create_dir_all(dir)?;
    let mut machine = config.machine()?;
    machine.begin();
    let mut checkpoints = Vec::new();
    loop {
        let pause_at = machine.sim_time().saturating_add(every);
        let done = machine.advance_until(Some(pause_at))?;
        if done {
            break;
        }
        let path = dir.join(format!("ckpt-t{:012}.oracle", machine.sim_time()));
        write_checkpoint(&path, config, &mut machine)?;
        checkpoints.push(path);
    }
    let (report, _) = machine.finish()?;
    Ok(CheckpointedRun {
        report,
        checkpoints,
    })
}

/// Resume a checkpoint file and run to completion.
pub fn resume_run(path: &Path) -> Result<(RunConfig, Report), CheckpointError> {
    let checkpoint = Checkpoint::read(path)?;
    let mut machine = checkpoint.resume()?;
    machine.advance_until(None)?;
    let (report, _) = machine.finish()?;
    Ok((checkpoint.config, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SimulationBuilder;
    use oracle_strategies::StrategySpec;
    use oracle_topo::TopologySpec;
    use oracle_workloads::WorkloadSpec;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("oracle-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_config() -> RunConfig {
        SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            })
            .workload(WorkloadSpec::fib(12))
            .seed(41)
            .config()
    }

    #[test]
    fn config_codec_round_trips() {
        let mut config = sample_config();
        config.machine.fault_plan = "crash:3@900+loss:2%+recover:400x5".parse().unwrap();
        config.machine.audit_every = 64;
        config.machine.load_info = LoadInfoMode::Instant;
        config.machine.queue_backend = QueueBackend::Heap;
        config.machine.fail_pe = Some((2, 1234));
        config.machine.open = Some(oracle_model::OpenTraffic {
            warmup: 500,
            saturation_inflight: 77,
            deadline: Some(1500),
            retry: Some("3x200".parse().unwrap()),
            admission: Some("bucket:12x5".parse().unwrap()),
            breaker: Some(800),
            ..oracle_model::OpenTraffic::new("burst:8x0.5x2000x6000@3,7".parse().unwrap(), 9000)
        });
        let mut w = SnapWriter::new();
        put_config(&mut w, &config);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let decoded = get_config(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, config);
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_every_checkpoint_resumes() {
        let dir = scratch_dir("resume");
        let config = sample_config();
        let plain = config.run().unwrap();
        let checkpointed = run_with_checkpoints(&config, 300, &dir).unwrap();
        assert_eq!(
            format!("{plain:?}"),
            format!("{:?}", checkpointed.report),
            "checkpointing changed the simulation"
        );
        assert!(
            !checkpointed.checkpoints.is_empty(),
            "no checkpoints were written"
        );
        for path in &checkpointed.checkpoints {
            let (config_back, resumed) = resume_run(path).unwrap();
            assert_eq!(config_back, config);
            assert_eq!(
                format!("{plain:?}"),
                format!("{resumed:?}"),
                "resume from {path:?} diverged"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_run_resumed_mid_measurement_window_is_bit_identical() {
        let dir = scratch_dir("open");
        let mut config = sample_config();
        // Warmup ends at 300; checkpoints every 250 straddle the window
        // boundary, so at least one resume starts mid-measurement.
        config.machine.open = Some(oracle_model::OpenTraffic {
            warmup: 300,
            ..oracle_model::OpenTraffic::new("poisson:6".parse().unwrap(), 3000)
        });
        let plain = config.run().unwrap();
        assert!(plain.open.is_some(), "open run must report open metrics");
        let checkpointed = run_with_checkpoints(&config, 250, &dir).unwrap();
        assert_eq!(
            format!("{plain:?}"),
            format!("{:?}", checkpointed.report),
            "checkpointing changed the open-traffic simulation"
        );
        assert!(
            checkpointed.checkpoints.len() >= 3,
            "expected several checkpoints, got {:?}",
            checkpointed.checkpoints
        );
        for path in &checkpointed.checkpoints {
            let (config_back, resumed) = resume_run(path).unwrap();
            assert_eq!(config_back, config);
            assert_eq!(
                format!("{plain:?}"),
                format!("{resumed:?}"),
                "open resume from {path:?} diverged"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn saturated_run_resumed_mid_window_is_bit_identical() {
        let dir = scratch_dir("saturated");
        let mut config = sample_config();
        // Offered load far past capacity with a low trip wire: the run ends
        // `Saturated` mid-measurement-window. Checkpoints every 150 units
        // straddle both the warmup boundary and the trip, auditing the
        // trip-wire/checkpoint interaction the resume path must preserve.
        config.machine.open = Some(oracle_model::OpenTraffic {
            warmup: 200,
            saturation_inflight: 48,
            deadline: Some(900),
            ..oracle_model::OpenTraffic::new("poisson:60".parse().unwrap(), 6000)
        });
        let plain = config.run().unwrap();
        let open = plain.open.as_ref().expect("open metrics");
        assert!(
            matches!(open.outcome, oracle_model::OpenOutcome::Saturated { .. }),
            "run must trip the saturation wire, got {:?}",
            open.outcome
        );
        let checkpointed = run_with_checkpoints(&config, 150, &dir).unwrap();
        assert_eq!(
            format!("{plain:?}"),
            format!("{:?}", checkpointed.report),
            "checkpointing changed the saturated run"
        );
        assert!(
            !checkpointed.checkpoints.is_empty(),
            "saturated run tripped before the first checkpoint"
        );
        // The Debug rendering covers the full report — outcome, counters,
        // and every sojourn-histogram quantile — so equality here is the
        // bit-for-bit pin.
        for path in &checkpointed.checkpoints {
            let (config_back, resumed) = resume_run(path).unwrap();
            assert_eq!(config_back, config);
            assert_eq!(
                format!("{plain:?}"),
                format!("{resumed:?}"),
                "saturated resume from {path:?} diverged"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_is_identical_under_faults_and_audit() {
        let dir = scratch_dir("faults");
        let mut config = sample_config();
        config.machine.fault_plan = "crash:5@700+loss:1%+recover:400x6".parse().unwrap();
        config.machine.audit_every = 32;
        let plain = match config.run() {
            Ok(report) => format!("{report:?}"),
            Err(e) => format!("Err({e:?})"),
        };
        let checkpointed = run_with_checkpoints(&config, 400, &dir);
        match &checkpointed {
            Ok(run) => {
                assert_eq!(plain, format!("{:?}", run.report));
                for path in &run.checkpoints {
                    let (_, resumed) = resume_run(path).unwrap();
                    assert_eq!(plain, format!("{resumed:?}"));
                }
            }
            // The faulty run may legitimately end in GoalsLost; resume from
            // whatever checkpoints exist must reproduce the same error.
            Err(CheckpointError::Sim(e)) => {
                assert_eq!(plain, format!("Err({e:?})"));
                let mut paths: Vec<_> = std::fs::read_dir(&dir)
                    .unwrap()
                    .map(|entry| entry.unwrap().path())
                    .filter(|p| p.extension().is_some_and(|x| x == "oracle"))
                    .collect();
                paths.sort();
                for path in paths {
                    let err = resume_run(&path).unwrap_err();
                    assert_eq!(plain, format!("Err({:?})", unwrap_sim(err)));
                }
            }
            Err(e) => panic!("unexpected checkpoint failure: {e}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn unwrap_sim(e: CheckpointError) -> SimError {
        match e {
            CheckpointError::Sim(e) => e,
            other => panic!("expected a simulation error, got {other}"),
        }
    }

    #[test]
    fn rejects_garbage_and_wrong_versions() {
        let err = Checkpoint::from_bytes(&[0u8; 32]).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Format(ref m) if m.contains("magic")),
            "{err}"
        );

        let mut w = SnapWriter::new();
        w.u32(CHECKPOINT_MAGIC);
        w.u32(CHECKPOINT_VERSION + 1);
        let err = Checkpoint::from_bytes(&w.into_bytes()).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Format(ref m) if m.contains("version")),
            "{err}"
        );

        let config = sample_config();
        let mut machine = config.machine().unwrap();
        machine.begin();
        machine.advance_until(Some(100)).unwrap();
        let mut bytes = checkpoint_bytes(&config, &mut machine);
        bytes.truncate(bytes.len() - 7);
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        // Depending on where the cut lands the codec reports either a
        // truncation (Eof) or an impossible length field (Invalid).
        assert!(
            matches!(err, CheckpointError::Format(ref m)
                if m.contains("truncated") || m.contains("invalid snapshot field")),
            "{err}"
        );
    }

    #[test]
    fn atomic_write_leaves_no_temp_files() {
        let dir = scratch_dir("atomic");
        let config = sample_config();
        let mut machine = config.machine().unwrap();
        machine.begin();
        machine.advance_until(Some(200)).unwrap();
        let path = dir.join("snap.oracle");
        write_checkpoint(&path, &config, &mut machine).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|entry| entry.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["snap.oracle".to_string()], "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
