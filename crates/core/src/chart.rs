//! ASCII line charts for the plot harnesses.
//!
//! The paper presents Plots 1–16 as X/Y line charts with two series (CWN
//! and GM). The harness binaries print the exact numbers as tables; this
//! module additionally renders them as terminal charts so the *shapes* the
//! paper discusses (rise time, flattening, the extended tail) are visible
//! at a glance.

use std::fmt::Write;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points; need not be sorted (the chart sorts by x).
    pub points: Vec<(f64, f64)>,
    /// Glyph used for this series' points.
    pub glyph: char,
}

impl Series {
    /// A series with the given label and glyph.
    pub fn new(name: impl Into<String>, glyph: char, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
            glyph,
        }
    }
}

/// An ASCII chart: plot area, Y-axis labels, X-axis ticks, and a legend.
///
/// ```
/// use oracle::chart::{Chart, Series};
///
/// let out = Chart::new("demo", 32, 8)
///     .series(Series::new("line", '*', vec![(0.0, 0.0), (10.0, 10.0)]))
///     .render();
/// assert!(out.contains('*'));
/// assert!(out.contains("* line"));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
    y_max_hint: Option<f64>,
    x_label: String,
    y_label: String,
}

impl Chart {
    /// A chart with a `width × height` character plot area.
    ///
    /// # Panics
    ///
    /// Panics if the plot area is smaller than 8×4.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 4, "plot area too small");
        Chart {
            title: title.into(),
            width,
            height,
            series: Vec::new(),
            y_max_hint: None,
            x_label: String::new(),
            y_label: String::new(),
        }
    }

    /// Add a series.
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Force the Y-axis maximum (e.g. 100 for percentages).
    pub fn y_max(mut self, y: f64) -> Self {
        self.y_max_hint = Some(y);
        self
    }

    /// Set the axis labels.
    pub fn labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }

        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if all.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let x_min = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let x_max = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let y_min = 0.0f64.min(all.iter().map(|p| p.1).fold(f64::INFINITY, f64::min));
        let mut y_max = all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        if let Some(hint) = self.y_max_hint {
            y_max = y_max.max(hint);
        }
        if (y_max - y_min).abs() < f64::EPSILON {
            y_max = y_min + 1.0;
        }
        let x_span = (x_max - x_min).max(f64::EPSILON);
        let y_span = y_max - y_min;

        // Rasterize: last writer wins per cell; draw in series order so the
        // later series shows where they overlap (legend notes glyphs).
        let mut grid = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            let mut pts = s.points.clone();
            pts.sort_by(|a, b| a.0.total_cmp(&b.0));
            // Linear interpolation between consecutive points, one column
            // at a time, so sparse series still draw connected curves.
            for w in pts.windows(2) {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                let c0 = ((x0 - x_min) / x_span * (self.width - 1) as f64).round() as usize;
                let c1 = ((x1 - x_min) / x_span * (self.width - 1) as f64).round() as usize;
                #[allow(clippy::needless_range_loop)] // col indexes two axes
                for col in c0..=c1.min(self.width - 1) {
                    let frac = if c1 == c0 {
                        0.0
                    } else {
                        (col - c0) as f64 / (c1 - c0) as f64
                    };
                    let y = y0 + (y1 - y0) * frac;
                    let row = ((y - y_min) / y_span * (self.height - 1) as f64).round() as usize;
                    let r = self.height - 1 - row.min(self.height - 1);
                    grid[r][col] = s.glyph;
                }
            }
            if pts.len() == 1 {
                let (x, y) = pts[0];
                let col = ((x - x_min) / x_span * (self.width - 1) as f64).round() as usize;
                let row = ((y - y_min) / y_span * (self.height - 1) as f64).round() as usize;
                let r = self.height - 1 - row.min(self.height - 1);
                grid[r][col.min(self.width - 1)] = s.glyph;
            }
        }

        // Y axis: label the top, middle, and bottom rows.
        let y_at = |row: usize| y_max - (row as f64 / (self.height - 1) as f64) * y_span;
        let label_width = 8;
        for (row, line) in grid.iter().enumerate() {
            let label = if row == 0 || row == self.height / 2 || row == self.height - 1 {
                format!("{:>label_width$.1}", y_at(row))
            } else {
                " ".repeat(label_width)
            };
            let _ = writeln!(out, "{label} |{}", line.iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            "{} +{}",
            " ".repeat(label_width),
            "-".repeat(self.width)
        );
        let x_lo = format!("{x_min:.0}");
        let x_hi = format!("{x_max:.0}");
        let gap = self.width.saturating_sub(x_lo.len() + x_hi.len());
        let _ = writeln!(
            out,
            "{} {x_lo}{}{x_hi}",
            " ".repeat(label_width),
            " ".repeat(gap)
        );

        // Legend and axis names.
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|s| format!("{} {}", s.glyph, s.name))
            .collect();
        let _ = writeln!(out, "{} {}", " ".repeat(label_width), legend.join("   "));
        if !self.x_label.is_empty() || !self.y_label.is_empty() {
            let _ = writeln!(
                out,
                "{} x: {}, y: {}",
                " ".repeat(label_width),
                self.x_label,
                self.y_label
            );
        }
        out
    }
}

/// Convenience: the standard two-series (CWN vs GM) utilization chart used
/// by the plot harnesses.
pub fn cwn_gm_chart(
    title: impl Into<String>,
    x_label: &str,
    cwn: &[(u64, f64)],
    gm: &[(u64, f64)],
) -> String {
    let to_f = |pts: &[(u64, f64)]| pts.iter().map(|&(x, y)| (x as f64, y)).collect();
    Chart::new(title, 64, 16)
        .y_max(100.0)
        .labels(x_label, "avg PE utilization (%)")
        .series(Series::new("Gradient Model", '.', to_f(gm)))
        .series(Series::new("CWN", '*', to_f(cwn)))
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_two_series_with_legend() {
        let chart = Chart::new("demo", 32, 8)
            .y_max(100.0)
            .labels("time", "util")
            .series(Series::new(
                "a",
                '*',
                vec![(0.0, 0.0), (50.0, 80.0), (100.0, 20.0)],
            ))
            .series(Series::new("b", '.', vec![(0.0, 10.0), (100.0, 90.0)]));
        let s = chart.render();
        assert!(s.contains("demo"));
        assert!(s.contains('*'));
        assert!(s.contains('.'));
        assert!(s.contains("* a"));
        assert!(s.contains(". b"));
        assert!(s.contains("x: time, y: util"));
        assert!(s.contains("100.0"), "y-max label missing:\n{s}");
    }

    #[test]
    fn empty_chart_says_no_data() {
        let s = Chart::new("t", 16, 4).render();
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn single_point_series() {
        let s = Chart::new("t", 16, 4)
            .series(Series::new("p", '#', vec![(5.0, 5.0)]))
            .render();
        assert!(s.contains('#'));
    }

    #[test]
    fn rising_series_puts_glyphs_higher_on_the_right() {
        let chart =
            Chart::new("", 32, 8).series(Series::new("r", '*', vec![(0.0, 0.0), (10.0, 100.0)]));
        let s = chart.render();
        let rows: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        // Top plot row should have a '*' near the right; bottom near the left.
        let top = rows.first().unwrap();
        let bottom = rows.last().unwrap();
        assert!(top.rfind('*').unwrap() > bottom.rfind('*').unwrap());
    }

    #[test]
    fn flat_series_does_not_panic() {
        let s = Chart::new("", 16, 4)
            .series(Series::new("f", '-', vec![(0.0, 5.0), (10.0, 5.0)]))
            .render();
        assert!(s.contains('-'));
    }

    #[test]
    fn helper_builds_paper_style_chart() {
        let cwn = vec![(0u64, 10.0), (100, 90.0)];
        let gm = vec![(0u64, 5.0), (100, 40.0)];
        let s = cwn_gm_chart("Plot 14", "time", &cwn, &gm);
        assert!(s.contains("Plot 14"));
        assert!(s.contains("CWN"));
        assert!(s.contains("Gradient Model"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_area_panics() {
        Chart::new("", 4, 2);
    }
}
