//! Structured trace and series export — the observability layer's I/O.
//!
//! ORACLE's "form and content of the output information" was a first-class
//! input to the simulator; this module is the equivalent: it turns the
//! bounded in-memory [`Trace`] of a run into files other tools can read.
//! Two formats are produced, both hand-written (the workspace carries no
//! JSON dependency):
//!
//! * **JSONL** (`oracle-trace-v1`): a header object on the first line —
//!   run identity plus the `events_dropped` count, so a truncated trace can
//!   never pass for a complete one — then one JSON object per event.
//! * **Chrome `trace_event` JSON** (loadable in Perfetto or
//!   `chrome://tracing`): one track per PE plus a `network` track, goal
//!   execution slices as `B`/`E` duration events, message hops as `s`/`f`
//!   flow events chained hop to hop, everything else as instants. Simulated
//!   time units map 1:1 onto trace microseconds.
//!
//! The module also carries a minimal recursive-descent JSON parser and
//! validators for both formats (used by the proptests and by
//! `oracle-cli trace-check`, which CI runs against freshly exported files),
//! and the machine-readable per-PE utilization-series CSV that reproduces
//! the paper's load-monitor figure as data.

use std::fmt::Write as _;

use oracle_model::trace::TraceMode;
use oracle_model::{Report, Trace, TraceEvent};

/// On-disk trace format selector (`--trace-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// One JSON object per line, `oracle-trace-v1` schema.
    #[default]
    Jsonl,
    /// Chrome `trace_event` JSON for Perfetto / `chrome://tracing`.
    Chrome,
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" => Ok(TraceFormat::Jsonl),
            "chrome" => Ok(TraceFormat::Chrome),
            other => Err(format!("unknown trace format '{other}' (jsonl|chrome)")),
        }
    }
}

/// Escape `s` into a JSON string literal (without the quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A tiny append-only JSON object writer.
struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    fn new() -> Self {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    fn num(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    fn int(mut self, key: &str, value: i64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    fn opt_num(self, key: &str, value: Option<u64>) -> Self {
        match value {
            Some(v) => self.num(key, v),
            None => self.raw(key, "null"),
        }
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// The JSONL `kind` string of an event.
fn kind_name(e: &TraceEvent) -> &'static str {
    match e {
        TraceEvent::GoalCreated { .. } => "goal_created",
        TraceEvent::GoalForwarded { .. } => "goal_forwarded",
        TraceEvent::GoalAccepted { .. } => "goal_accepted",
        TraceEvent::GoalStarted { .. } => "goal_started",
        TraceEvent::GoalFinished { .. } => "goal_finished",
        TraceEvent::Responded { .. } => "responded",
        TraceEvent::ControlSent { .. } => "control_sent",
        TraceEvent::TimerFired { .. } => "timer_fired",
        TraceEvent::RootCompleted { .. } => "root_completed",
        TraceEvent::PeCrashed { .. } => "pe_crashed",
        TraceEvent::GoalLost { .. } => "goal_lost",
        TraceEvent::MessageDropped { .. } => "message_dropped",
        TraceEvent::LinkDown { .. } => "link_down",
        TraceEvent::LinkUp { .. } => "link_up",
        TraceEvent::GoalRespawned { .. } => "goal_respawned",
        TraceEvent::DuplicateResponse { .. } => "duplicate_response",
        TraceEvent::PeSlowed { .. } => "pe_slowed",
        TraceEvent::PeRestored { .. } => "pe_restored",
        TraceEvent::RequestArrived { .. } => "request_arrived",
        TraceEvent::RequestCompleted { .. } => "request_completed",
    }
}

fn trace_mode_name(mode: TraceMode) -> &'static str {
    match mode {
        TraceMode::KeepFirst => "keep-first",
        TraceMode::KeepLast => "keep-last",
    }
}

/// One event as a JSONL line (no trailing newline).
fn jsonl_event(e: &TraceEvent) -> String {
    let o = Obj::new().str("kind", kind_name(e)).num("t", e.time());
    match *e {
        TraceEvent::GoalCreated {
            goal, pe, parent, ..
        } => o
            .num("goal", goal.0)
            .num("pe", pe.0 as u64)
            .opt_num("parent", parent.map(|p| p.0)),
        TraceEvent::GoalForwarded {
            goal,
            from,
            to,
            hops,
            ..
        } => o
            .num("goal", goal.0)
            .num("from", from.0 as u64)
            .num("to", to.0 as u64)
            .num("hops", hops as u64),
        TraceEvent::GoalAccepted { goal, pe, hops, .. } => o
            .num("goal", goal.0)
            .num("pe", pe.0 as u64)
            .num("hops", hops as u64),
        TraceEvent::GoalStarted { goal, pe, .. } | TraceEvent::GoalFinished { goal, pe, .. } => {
            o.num("goal", goal.0).num("pe", pe.0 as u64)
        }
        TraceEvent::Responded {
            from_pe,
            parent_pe,
            value,
            ..
        } => o
            .num("from_pe", from_pe.0 as u64)
            .opt_num("parent_pe", parent_pe.map(|p| p.0 as u64))
            .int("value", value),
        TraceEvent::ControlSent { from, to, tag, .. } => o
            .num("from", from.0 as u64)
            .num("to", to.0 as u64)
            .num("tag", tag as u64),
        TraceEvent::TimerFired { pe, tag, .. } => o.num("pe", pe.0 as u64).num("tag", tag),
        TraceEvent::RootCompleted { result, .. } => o.int("result", result),
        TraceEvent::PeCrashed { pe, goals_lost, .. } => {
            o.num("pe", pe.0 as u64).num("goals_lost", goals_lost)
        }
        TraceEvent::GoalLost { goal, pe, .. } => o.num("goal", goal.0).num("pe", pe.0 as u64),
        TraceEvent::MessageDropped { channel, .. }
        | TraceEvent::LinkDown { channel, .. }
        | TraceEvent::LinkUp { channel, .. } => o.num("channel", channel as u64),
        TraceEvent::GoalRespawned {
            old,
            new,
            pe,
            attempt,
            ..
        } => o
            .num("old", old.0)
            .num("new", new.0)
            .num("pe", pe.0 as u64)
            .num("attempt", attempt as u64),
        TraceEvent::DuplicateResponse { goal, pe, .. } => {
            o.num("goal", goal.0).num("pe", pe.0 as u64)
        }
        TraceEvent::PeSlowed { pe, factor, .. } => o.num("pe", pe.0 as u64).num("factor", factor),
        TraceEvent::PeRestored { pe, .. } => o.num("pe", pe.0 as u64),
        TraceEvent::RequestArrived {
            request, goal, pe, ..
        } => o
            .num("request", request)
            .num("goal", goal.0)
            .num("pe", pe.0 as u64),
        TraceEvent::RequestCompleted {
            request,
            goal,
            pe,
            sojourn,
            ..
        } => o
            .num("request", request)
            .num("goal", goal.0)
            .num("pe", pe.0 as u64)
            .num("sojourn", sojourn),
    }
    .finish()
}

/// The JSONL header line for `trace` of the run described by `report`.
fn jsonl_header(trace: &Trace, report: &Report) -> String {
    Obj::new()
        .str("schema", "oracle-trace-v1")
        .str("strategy", &report.strategy)
        .str("topology", &report.topology)
        .str("program", &report.program)
        .num("num_pes", report.num_pes as u64)
        .num("seed", report.seed)
        .num("completion_time", report.completion_time)
        .num("events_recorded", trace.len() as u64)
        .num("events_dropped", trace.dropped())
        .str("trace_mode", trace_mode_name(trace.mode()))
        .finish()
}

/// Export `trace` as JSONL: one header object line, then one object per
/// event in chronological order.
pub fn export_jsonl(trace: &Trace, report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&jsonl_header(trace, report));
    out.push('\n');
    for e in trace.iter() {
        out.push_str(&jsonl_event(e));
        out.push('\n');
    }
    out
}

/// Track id of the synthetic "network" track (channel and run-level
/// events, which belong to no PE).
fn network_tid(num_pes: usize) -> u64 {
    num_pes as u64
}

/// Start one Chrome event object; the caller adds format-specific fields
/// and pushes the finished string.
fn chrome_event(ph: &str, name: &str, tid: u64, ts: u64) -> Obj {
    Obj::new()
        .str("ph", ph)
        .str("name", name)
        .str("cat", "oracle")
        .num("pid", 0)
        .num("tid", tid)
        .num("ts", ts)
}

/// Export `trace` as Chrome `trace_event` JSON (the "JSON Object Format":
/// a `traceEvents` array plus run metadata under `otherData`).
///
/// Layout: one track (`tid`) per PE plus a final `network` track; goal
/// execution slices are `B`/`E` pairs on the executing PE's track; each
/// message hop is an `s`→`f` flow step chained from the previous hop, so
/// Perfetto draws the goal's journey as arrows between PE tracks; other
/// events are thread-scoped instants. `ts` is the simulated time.
pub fn export_chrome(trace: &Trace, report: &Report) -> String {
    let mut events: Vec<String> = Vec::new();

    // Metadata: name the process and one track per PE (plus the network
    // track). `M` events are unordered; the validator skips them.
    events.push(
        Obj::new()
            .str("ph", "M")
            .str("name", "process_name")
            .num("pid", 0)
            .num("tid", 0)
            .raw(
                "args",
                &Obj::new()
                    .str(
                        "name",
                        &format!(
                            "oracle {} on {} ({})",
                            report.strategy, report.topology, report.program
                        ),
                    )
                    .finish(),
            )
            .finish(),
    );
    for pe in 0..report.num_pes {
        events.push(
            Obj::new()
                .str("ph", "M")
                .str("name", "thread_name")
                .num("pid", 0)
                .num("tid", pe as u64)
                .raw(
                    "args",
                    &Obj::new().str("name", &format!("PE {pe}")).finish(),
                )
                .finish(),
        );
    }
    let net = network_tid(report.num_pes);
    events.push(
        Obj::new()
            .str("ph", "M")
            .str("name", "thread_name")
            .num("pid", 0)
            .num("tid", net)
            .raw("args", &Obj::new().str("name", "network").finish())
            .finish(),
    );

    // Flow chaining: the hop index of the last `s` emitted per goal, so the
    // next hop (or the acceptance) closes it with an `f`. With a truncated
    // or ring trace some chains start mid-journey; unmatched flow ends are
    // simply omitted.
    let mut open_flow: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let flow_id = |goal: u64, hop: u32| format!("g{goal}h{hop}");

    for e in trace.iter() {
        let t = e.time();
        match *e {
            TraceEvent::GoalStarted { goal, pe, .. } => {
                let o = chrome_event("B", &format!("goal {}", goal.0), pe.0 as u64, t)
                    .raw("args", &Obj::new().num("goal", goal.0).finish());
                events.push(o.finish());
            }
            TraceEvent::GoalFinished { goal, pe, .. } => {
                let o = chrome_event("E", &format!("goal {}", goal.0), pe.0 as u64, t);
                events.push(o.finish());
            }
            TraceEvent::GoalForwarded {
                goal, from, hops, ..
            } => {
                if let Some(prev) = open_flow.insert(goal.0, hops) {
                    let o = chrome_event("f", "hop", from.0 as u64, t)
                        .str("id", &flow_id(goal.0, prev))
                        .str("bp", "e");
                    events.push(o.finish());
                }
                let o =
                    chrome_event("s", "hop", from.0 as u64, t).str("id", &flow_id(goal.0, hops));
                events.push(o.finish());
            }
            TraceEvent::GoalAccepted { goal, pe, .. } => {
                if let Some(prev) = open_flow.remove(&goal.0) {
                    let o = chrome_event("f", "hop", pe.0 as u64, t)
                        .str("id", &flow_id(goal.0, prev))
                        .str("bp", "e");
                    events.push(o.finish());
                }
                let o = chrome_event("i", &format!("accept goal {}", goal.0), pe.0 as u64, t)
                    .str("s", "t");
                events.push(o.finish());
            }
            _ => {
                // Everything else is a thread-scoped instant on the most
                // specific track the event names.
                let tid = match *e {
                    TraceEvent::GoalCreated { pe, .. }
                    | TraceEvent::TimerFired { pe, .. }
                    | TraceEvent::PeCrashed { pe, .. }
                    | TraceEvent::GoalLost { pe, .. }
                    | TraceEvent::GoalRespawned { pe, .. }
                    | TraceEvent::DuplicateResponse { pe, .. }
                    | TraceEvent::PeSlowed { pe, .. }
                    | TraceEvent::PeRestored { pe, .. }
                    | TraceEvent::RequestArrived { pe, .. }
                    | TraceEvent::RequestCompleted { pe, .. } => pe.0 as u64,
                    TraceEvent::Responded { from_pe, .. } => from_pe.0 as u64,
                    TraceEvent::ControlSent { from, .. } => from.0 as u64,
                    _ => net,
                };
                let name = kind_name(e);
                let o = chrome_event("i", name, tid, t).str("s", "t");
                events.push(o.finish());
            }
        }
    }

    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":");
    out.push_str(
        &Obj::new()
            .str("schema", "oracle-trace-v1")
            .str("strategy", &report.strategy)
            .str("topology", &report.topology)
            .str("program", &report.program)
            .num("num_pes", report.num_pes as u64)
            .num("seed", report.seed)
            .num("completion_time", report.completion_time)
            .num("events_recorded", trace.len() as u64)
            .num("events_dropped", trace.dropped())
            .str("trace_mode", trace_mode_name(trace.mode()))
            .finish(),
    );
    out.push('}');
    out
}

/// Export a trace in the chosen format.
pub fn export_trace(trace: &Trace, report: &Report, format: TraceFormat) -> String {
    match format {
        TraceFormat::Jsonl => export_jsonl(trace, report),
        TraceFormat::Chrome => export_chrome(trace, report),
    }
}

/// Machine-readable utilization-series CSV (`--series-out`): the paper's
/// load-monitor stream as data. One row per sampling interval:
/// `interval_start,avg,pe0,pe1,...` — all utilizations fractions in
/// `[0, 1]`. The per-PE columns appear only when the run kept per-PE
/// series; a PE whose (independently coarsened) series is shorter than the
/// run pads with 0 (idle), matching the heatmap renderer.
pub fn export_series_csv(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# oracle-series-v1");
    let _ = writeln!(
        out,
        "# strategy={} topology={} program={} seed={}",
        report.strategy, report.topology, report.program, report.seed
    );
    out.push_str("interval_start,avg");
    let pes = report.per_pe_series.as_ref().map_or(0, Vec::len);
    for pe in 0..pes {
        let _ = write!(out, ",pe{pe}");
    }
    out.push('\n');
    for (i, &(t0, avg)) in report.util_series.iter().enumerate() {
        let _ = write!(out, "{t0},{avg:.6}");
        if let Some(series) = &report.per_pe_series {
            for row in series {
                let u = row.get(i).copied().unwrap_or(0.0);
                let _ = write!(out, ",{u:.6}");
            }
        }
        out.push('\n');
    }
    out
}

// ----------------------------------------------------------------------
// Minimal JSON parser + format validators.
// ----------------------------------------------------------------------

/// A parsed JSON value (objects keep insertion order; numbers are `f64`,
/// which is exact for every integer this trace format emits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one complete JSON document. Strict: trailing garbage, trailing
/// commas, unquoted keys, and nesting beyond 128 levels are errors.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > 128 {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates are not emitted by our exporter;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// What a validated trace file contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Payload events (excluding headers / metadata events).
    pub events: usize,
    /// Distinct tracks (`tid`s) seen (0 for JSONL, which has no tracks).
    pub tracks: usize,
    /// The header's `events_dropped` count.
    pub dropped: u64,
}

/// Validate a JSONL trace export: every line is a well-formed JSON object,
/// the first is an `oracle-trace-v1` header carrying `events_dropped`, and
/// event timestamps are non-decreasing.
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines.next().ok_or("empty trace file")?;
    let header = parse_json(header_line).map_err(|e| format!("header: {e}"))?;
    match header.get("schema").and_then(Json::as_str) {
        Some("oracle-trace-v1") => {}
        other => return Err(format!("bad schema {other:?}")),
    }
    let dropped = header
        .get("events_dropped")
        .and_then(Json::as_f64)
        .ok_or("header missing events_dropped")? as u64;
    let recorded = header
        .get("events_recorded")
        .and_then(Json::as_f64)
        .ok_or("header missing events_recorded")? as u64;
    let mut events = 0usize;
    let mut last_t = f64::NEG_INFINITY;
    for (i, line) in lines {
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        v.get("kind")
            .and_then(Json::as_str)
            .ok_or(format!("line {}: missing kind", i + 1))?;
        let t = v
            .get("t")
            .and_then(Json::as_f64)
            .ok_or(format!("line {}: missing t", i + 1))?;
        if t < last_t {
            return Err(format!("line {}: time went backwards", i + 1));
        }
        last_t = t;
        events += 1;
    }
    if events as u64 != recorded {
        return Err(format!(
            "header claims {recorded} events, file has {events}"
        ));
    }
    Ok(TraceSummary {
        events,
        tracks: 0,
        dropped,
    })
}

/// Validate a Chrome `trace_event` export structurally: the document is
/// well-formed JSON with a `traceEvents` array; every event has `ph`,
/// `pid`, `tid` and (except `M` metadata) a numeric `ts`; and timestamps
/// are non-decreasing per track. `otherData` must carry the
/// `events_dropped` count.
pub fn validate_chrome(text: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("events_dropped"))
        .and_then(Json::as_f64)
        .ok_or("otherData missing events_dropped")? as u64;
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut payload = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        e.get("pid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing pid"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing tid"))? as u64;
        if ph == "M" {
            continue; // metadata events are unordered
        }
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing ts"))?;
        let last = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        if ts < *last {
            return Err(format!(
                "event {i}: ts went backwards on track {tid} ({ts} < {last})"
            ));
        }
        *last = ts;
        payload += 1;
    }
    Ok(TraceSummary {
        events: payload,
        tracks: last_ts.len(),
        dropped,
    })
}

/// Validate `text` as `format`.
pub fn validate_trace(text: &str, format: TraceFormat) -> Result<TraceSummary, String> {
    match format {
        TraceFormat::Jsonl => validate_jsonl(text),
        TraceFormat::Chrome => validate_chrome(text),
    }
}

/// Sniff the format of an exported trace file: Chrome exports are a single
/// JSON object starting with `{"traceEvents"`, JSONL starts with the
/// header object.
pub fn sniff_format(text: &str) -> TraceFormat {
    if text.trim_start().starts_with("{\"traceEvents\"") {
        TraceFormat::Chrome
    } else {
        TraceFormat::Jsonl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SimulationBuilder;
    use oracle_strategies::StrategySpec;
    use oracle_topo::TopologySpec;
    use oracle_workloads::WorkloadSpec;

    fn traced_run(capacity: usize, mode: TraceMode) -> (Report, Trace) {
        SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            })
            .workload(WorkloadSpec::fib(10))
            .seed(11)
            .trace_capacity(capacity)
            .trace_mode(mode)
            .run_traced()
            .unwrap()
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let (report, trace) = traced_run(100_000, TraceMode::KeepFirst);
        let text = export_jsonl(&trace, &report);
        let summary = validate_jsonl(&text).unwrap();
        assert_eq!(summary.events, trace.len());
        assert_eq!(summary.dropped, 0);
    }

    #[test]
    fn truncated_jsonl_header_reports_drops() {
        let (report, trace) = traced_run(20, TraceMode::KeepFirst);
        assert!(trace.dropped() > 0);
        let text = export_jsonl(&trace, &report);
        let summary = validate_jsonl(&text).unwrap();
        assert_eq!(summary.events, 20);
        assert_eq!(summary.dropped, trace.dropped());
        let header = parse_json(text.lines().next().unwrap()).unwrap();
        assert_eq!(
            header.get("events_dropped").and_then(Json::as_f64),
            Some(trace.dropped() as f64)
        );
    }

    #[test]
    fn chrome_round_trips_through_the_validator() {
        let (report, trace) = traced_run(100_000, TraceMode::KeepFirst);
        let text = export_chrome(&trace, &report);
        let summary = validate_chrome(&text).unwrap();
        assert!(summary.events > 0);
        // Every PE executed something on a 4x4 grid, plus the network
        // track.
        assert!(summary.tracks > 1, "tracks: {}", summary.tracks);
        assert_eq!(summary.dropped, 0);
        assert_eq!(sniff_format(&text), TraceFormat::Chrome);
    }

    #[test]
    fn ring_mode_chrome_export_stays_monotone() {
        let (report, trace) = traced_run(64, TraceMode::KeepLast);
        assert!(trace.dropped() > 0);
        let text = export_chrome(&trace, &report);
        let summary = validate_chrome(&text).unwrap();
        assert_eq!(summary.dropped, trace.dropped());
    }

    #[test]
    fn open_run_trace_exports_carry_request_events() {
        let (report, trace) = SimulationBuilder::new()
            .topology(TopologySpec::grid(4))
            .strategy(StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            })
            .workload(WorkloadSpec::fib(8))
            .seed(5)
            .arrivals("poisson:4".parse().unwrap(), 3000)
            .trace_capacity(200_000)
            .run_traced()
            .unwrap();
        assert!(report.open.is_some());

        let jsonl = export_jsonl(&trace, &report);
        let summary = validate_jsonl(&jsonl).unwrap();
        assert_eq!(summary.events, trace.len());
        assert!(
            jsonl.lines().any(|l| l.contains("\"request_arrived\"")),
            "no request_arrived events in the JSONL export"
        );
        assert!(
            jsonl
                .lines()
                .any(|l| l.contains("\"request_completed\"") && l.contains("\"sojourn\"")),
            "no request_completed events with sojourn in the JSONL export"
        );

        let chrome = export_chrome(&trace, &report);
        let summary = validate_chrome(&chrome).unwrap();
        assert!(summary.events > 0);
        assert!(chrome.contains("request_arrived"));
        assert!(chrome.contains("request_completed"));
    }

    #[test]
    fn series_csv_lists_all_pes() {
        let report = SimulationBuilder::new()
            .topology(TopologySpec::grid(3))
            .strategy(StrategySpec::Cwn {
                radius: 4,
                horizon: 1,
            })
            .workload(WorkloadSpec::fib(10))
            .seed(3)
            .per_pe_series(true)
            .run()
            .unwrap();
        let csv = export_series_csv(&report);
        let header = csv.lines().nth(2).unwrap();
        assert!(header.starts_with("interval_start,avg,pe0,"));
        assert!(header.ends_with("pe8"));
        let rows: Vec<&str> = csv.lines().skip(3).collect();
        assert_eq!(rows.len(), report.util_series.len());
        // Every cell is a fraction in [0, 1].
        for row in rows {
            for cell in row.split(',').skip(1) {
                let u: f64 = cell.parse().unwrap();
                assert!((0.0..=1.0).contains(&u), "cell {u}");
            }
        }
    }

    #[test]
    fn parser_accepts_the_usual_shapes() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\ny","c":true,"d":null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2],
            Json::Num(-300.0)
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1}x",
            "\"unterminated",
            "nul",
            "01a",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validators_reject_tampered_exports() {
        let (report, trace) = traced_run(1000, TraceMode::KeepFirst);
        let jsonl = export_jsonl(&trace, &report);
        // Drop a line: the header count no longer matches.
        let mut lines: Vec<&str> = jsonl.lines().collect();
        lines.remove(lines.len() / 2);
        assert!(validate_jsonl(&lines.join("\n")).is_err());

        let chrome = export_chrome(&trace, &report);
        let broken = chrome.replace("\"otherData\"", "\"otherJunk\"");
        assert!(validate_chrome(&broken).is_err());
    }
}
