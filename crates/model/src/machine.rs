//! The simulation driver: wires a topology, a program, and a strategy into
//! an event-driven run and produces a [`Report`].
//!
//! Two resource classes are contended, exactly as in ORACLE: each PE
//! executes one work item at a time (goals, response combinations, and —
//! without a communication co-processor — message handling), and each
//! channel transfers one message at a time, with FIFO backlogs on both.

use oracle_des::{
    DualQueue, FastHashMap, Histogram, IntervalSeries, KindId, LogHistogram, OnlineStats, Profiler,
    Rng, SimTime,
};
use oracle_topo::{ChannelId, PeId, Topology};

use crate::config::{LoadInfoMode, MachineConfig, QueueBackend};
use crate::cost::CostModel;
use crate::error::SimError;
use crate::faults::{FaultPlan, PeCrash};
use crate::message::{ControlMsg, Flight, FlightDest, GoalId, GoalMsg, Packet};
use crate::metrics::{FaultMetrics, OpenMetrics, OpenOutcome, Report, TopPe, TrafficCounters};
use crate::open::{AdmissionPolicy, Inflight, OpenState};
use crate::pe::{Executing, Pe, Waiting, WorkItem};
use crate::program::{Continuation, Expansion, Program, TaskList, TaskSpec};
use crate::sparse::{ChannelTable, DispatchLatency};
use crate::strategy::Strategy;
use crate::trace::{Trace, TraceEvent};

/// Discrete events of the machine model. `pub(crate)` so the snapshot
/// codec (`crate::snapshot`) can encode the pending event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// The current work item on a PE completes.
    PeDone(PeId),
    /// The in-flight transfer on a channel completes.
    ChannelDone(ChannelId),
    /// A strategy timer fires.
    Timer(PeId, u64),
    /// A PE's periodic load-word broadcast is due.
    LoadBcast(PeId),
    /// Failure injection: the PE dies now.
    FailPe(PeId),
    /// Fault plan: the channel goes down now.
    LinkDown(ChannelId),
    /// Fault plan: the channel comes back up now.
    LinkUp(ChannelId),
    /// Fault plan: a transient slowdown window opens on the PE.
    SlowStart(PeId, u64),
    /// Fault plan: the slowdown window on the PE closes.
    SlowEnd(PeId),
    /// Recovery: the tracked goal has been silent for its whole ack
    /// window — re-spawn it if its response has still not combined.
    AckTimeout(GoalId),
    /// Open traffic: the next external request arrives now.
    Arrival,
    /// Open traffic: the backoff of the lost request whose dead root goal
    /// had this id expires — re-inject it at the next live edge PE.
    Retry(GoalId),
}

/// Profiler registry names, indexed by [`Event::kind`]. Keep the two in
/// sync.
const EVENT_KIND_NAMES: [&str; 12] = [
    "pe_done",
    "channel_done",
    "timer",
    "load_bcast",
    "fail_pe",
    "link_down",
    "link_up",
    "slow_start",
    "slow_end",
    "ack_timeout",
    "arrival",
    "retry",
];

impl Event {
    /// Index of this event's kind in [`EVENT_KIND_NAMES`].
    fn kind(&self) -> KindId {
        KindId(match self {
            Event::PeDone(_) => 0,
            Event::ChannelDone(_) => 1,
            Event::Timer(..) => 2,
            Event::LoadBcast(_) => 3,
            Event::FailPe(_) => 4,
            Event::LinkDown(_) => 5,
            Event::LinkUp(_) => 6,
            Event::SlowStart(..) => 7,
            Event::SlowEnd(_) => 8,
            Event::AckTimeout(_) => 9,
            Event::Arrival => 10,
            Event::Retry(_) => 11,
        })
    }
}

/// Recovery bookkeeping for one spawned goal: enough to re-create it from
/// the parent's side if it is lost or silent.
pub(crate) struct Outstanding {
    /// Where the parent task waits (`None` for the root goal).
    pub(crate) parent: Option<(PeId, GoalId)>,
    /// The task to re-spawn.
    pub(crate) spec: TaskSpec,
    /// Re-spawn attempts already made for this goal slot.
    pub(crate) attempts: u32,
    /// When the slot's first attempt was created (for recovery-latency
    /// accounting).
    pub(crate) first_created: u64,
    /// The PE the goal was last accepted on, if known — lets a crash
    /// trigger immediate re-spawn of everything resident on the dead PE.
    pub(crate) resident: Option<PeId>,
}

/// Fault-injection and recovery state of a run.
pub(crate) struct FaultState {
    /// Goals the recovery layer is tracking, keyed by goal id.
    pub(crate) outstanding: FastHashMap<GoalId, Outstanding>,
    pub(crate) pes_crashed: u32,
    pub(crate) goals_lost: u64,
    pub(crate) messages_dropped: u64,
    pub(crate) goals_respawned: u64,
    pub(crate) duplicate_responses: u64,
    pub(crate) retries_exhausted: u64,
    pub(crate) recovery_latency: OnlineStats,
}

impl FaultState {
    fn new() -> Self {
        FaultState {
            outstanding: FastHashMap::default(),
            pes_crashed: 0,
            goals_lost: 0,
            messages_dropped: 0,
            goals_respawned: 0,
            duplicate_responses: 0,
            retries_exhausted: 0,
            recovery_latency: OnlineStats::new(),
        }
    }

    fn metrics(&self) -> FaultMetrics {
        FaultMetrics {
            pes_crashed: self.pes_crashed,
            goals_lost: self.goals_lost,
            messages_dropped: self.messages_dropped,
            goals_respawned: self.goals_respawned,
            duplicate_responses: self.duplicate_responses,
            retries_exhausted: self.retries_exhausted,
            recovery_latency_mean: self.recovery_latency.mean(),
            recovery_latency_max: self.recovery_latency.max().unwrap_or(0.0),
        }
    }
}

/// Default window (in events) of the progress watchdog: if no goal is
/// created, executed, or combined across a full window, the run is
/// declared stalled. [`crate::config::MachineConfig::progress_window`]
/// overrides it per run.
pub(crate) const PROGRESS_WINDOW: u64 = 1_000_000;

/// Largest PE count for which the flat O(n²) neighbour-position table is
/// built (64 MiB of `u16` at the limit). Larger machines binary-search the
/// sorted neighbour list instead — an O(log degree) lookup that costs no
/// quadratic memory.
pub(crate) const NBR_INDEX_LIMIT: usize = 8192;

/// Everything a strategy can see and act on: the machine without the
/// strategy itself. Strategies receive `&mut Core` in every callback.
///
/// Fields are `pub(crate)` (rather than private) so the snapshot codec
/// (`crate::snapshot`) and the invariant auditor (`crate::audit`) can read
/// and rebuild the state directly; the public API is still only the
/// accessor methods below.
pub struct Core {
    pub(crate) topo: Topology,
    pub(crate) costs: CostModel,
    pub(crate) config: MachineConfig,
    pub(crate) program: Box<dyn Program>,
    pub(crate) pes: Vec<Pe>,
    /// Per-channel state, dense or sparse per `config.state_mode`.
    pub(crate) channels: ChannelTable,
    pub(crate) events: DualQueue<Event>,
    /// Distinct channels incident to each PE in CSR form
    /// (`incident[incident_off[p]..incident_off[p + 1]]`), precomputed at
    /// construction so broadcasts never rebuild the dedup list per event —
    /// and flat, so a million PEs cost two arrays rather than a million
    /// heap allocations.
    pub(crate) incident_off: Vec<u32>,
    pub(crate) incident: Vec<ChannelId>,
    /// Flat `[pe * num_pes + nbr]` position of `nbr` in `topo.neighbors(pe)`
    /// (`u16::MAX` when not adjacent) — O(1) lookup on the per-delivery
    /// load-word path, where a binary search was the top profile entry.
    /// Quadratic in PE count, so built only up to [`NBR_INDEX_LIMIT`] PEs;
    /// larger machines fall back to a binary search over the (sorted)
    /// neighbour list.
    pub(crate) nbr_index: Vec<u16>,
    /// Construction-time RNG (PE speed spreads). Never drawn from during a
    /// run: runtime randomness comes from the per-PE streams below, so that
    /// the sharded parallel engine can give each shard exactly the streams
    /// of the PEs it owns.
    pub(crate) rng: Rng,
    /// One independent RNG stream per PE. Every runtime draw is charged to
    /// the PE whose event is being handled — the property that makes a
    /// run's randomness a pure function of (seed, per-PE event sequence)
    /// and therefore independent of how events interleave across shards.
    pub(crate) pe_rngs: Vec<Rng>,
    /// Per-actor event-ordering sequence counters (actor 0 = environment,
    /// then one per PE, then one per channel). An event's queue key is
    /// `(actor << 32) | seq`, so simultaneous events fire in a fixed
    /// actor-then-issue order that survives re-partitioning the event set
    /// across shards.
    pub(crate) key_seq: Vec<u32>,
    /// Per-creator goal-id sequence counters (creator 0 = environment —
    /// root goals and open-traffic arrivals — then one per PE). A goal's id
    /// is `(creator << 32) | seq`: globally unique without a shared
    /// counter.
    pub(crate) goal_seq: Vec<u32>,
    pub(crate) goals_created: u64,
    pub(crate) goals_executed: u64,
    pub(crate) responses_processed: u64,
    pub(crate) seq_work: u64,
    pub(crate) traffic: TrafficCounters,
    pub(crate) hop_hist: Histogram,
    /// Dispatch latency (creation to execution start), one accumulator per
    /// PE (dense or sparse per `config.state_mode`), folded in PE order at
    /// report time. Per-PE accumulation keeps the floating-point fold
    /// order identical between the sequential and the sharded engine.
    pub(crate) dispatch_latency: DispatchLatency,
    /// Summed user-busy time across all PEs, per sampling interval.
    pub(crate) global_series: IntervalSeries,
    pub(crate) root_result: Option<(i64, SimTime)>,
    /// Open-traffic runtime state (`Some` iff `config.open` is set); boxed
    /// so the closed-run hot path pays one null check and no space.
    pub(crate) open: Option<Box<OpenState>>,
    pub(crate) trace: Trace,
    /// Engine profiler (`Some` only when `config.profile` is set). Like the
    /// trace, deliberately not part of a snapshot: a resumed run's profile
    /// covers the segment since the restore.
    pub(crate) profiler: Option<Box<Profiler>>,
    /// The effective fault plan (`config.fault_plan` with the legacy
    /// `fail_pe` shorthand folded in).
    pub(crate) plan: FaultPlan,
    /// Dedicated RNG stream for fault decisions (message-loss draws), so a
    /// fault plan never perturbs the strategy's random stream.
    pub(crate) fault_rng: Rng,
    pub(crate) faults: FaultState,
    /// Scratch buffers for the crash sweep, reused across crashes.
    pub(crate) sweep_orphans: Vec<GoalId>,
    pub(crate) sweep_respawns: Vec<GoalId>,
    /// Progress-watchdog state: the `(created, executed, combined)` triple
    /// at the last check and the event count of the next one. Lives in the
    /// `Core` (not the run loop) so a checkpointed run stalls at exactly
    /// the same point as an uninterrupted one.
    pub(crate) last_progress: (u64, u64, u64),
    pub(crate) next_check: u64,
    /// Invariant-auditor state: event count of the next audit and the
    /// simulated time at the previous one (for the monotonicity check).
    pub(crate) next_audit: u64,
    pub(crate) last_audit_now: u64,
    /// Sharded-execution context (`Some` only inside a shard worker of the
    /// parallel engine). Transient: never snapshotted, never set on the
    /// sequential engine, which pays exactly one null check for it on the
    /// channel-offer path.
    pub(crate) par: Option<Box<ParCtx>>,
    /// Live-graph routing distances (`Some` once any fault has changed the
    /// reachable topology). Derived state: rebuilt eagerly on every crash
    /// and link transition, and after a snapshot restore — never encoded.
    pub(crate) live_routes: Option<Box<LiveRoutes>>,
}

/// All-pairs hop distances over the *live* graph — failed PEs and down
/// channels removed. The static `Topology` tables assume full health;
/// routing a packet around a corpse with them can orbit forever (each
/// greedy hop "closest to the target" still points through the hole).
/// Distances over the graph as it actually is make every hop strictly
/// decrease the remaining distance, which rules cycles out.
pub(crate) struct LiveRoutes {
    /// `dist[from * n + to]`, `u32::MAX` when unreachable. Directed: the
    /// hop `a -> b` needs `b` alive and the channel up (`a`'s own health is
    /// the caller's problem — a packet is never at a dead PE). `u32`
    /// because a path topology's diameter alone can exceed `u16::MAX`.
    dist: Vec<u32>,
}

/// Per-shard context of the parallel engine (see `crate::parallel`).
///
/// Lives inside the `Core` so that the one hook the engine needs deep in
/// the event handlers — deferring offers to channels shared with other
/// shards — can see it without threading a parameter through every
/// strategy callback.
pub(crate) struct ParCtx {
    /// True for channels whose members span shards: offers to them are
    /// deferred and applied in a deterministic merge order at the next
    /// phase boundary, because two shards may offer to the same channel in
    /// the same timestamp.
    pub(crate) defer_chan: Vec<bool>,
    /// Ordering key of the event currently being handled (the offer-merge
    /// sort key, so deferred offers apply in exactly the sequential order).
    pub(crate) cur_key: u64,
    /// Tie-break among several offers emitted by one event.
    pub(crate) offer_sub: u32,
    /// Offers deferred during the current phase, drained by the engine.
    pub(crate) deferred: Vec<DeferredOffer>,
}

/// One channel offer captured for deterministic cross-shard replay.
pub(crate) struct DeferredOffer {
    /// Key of the event that emitted the offer.
    pub(crate) gen_key: u64,
    /// Emission index within that event.
    pub(crate) sub: u32,
    pub(crate) channel: ChannelId,
    pub(crate) flight: Flight,
}

impl Core {
    // ------------------------------------------------------------------
    // Read-only accessors (the strategy's view of the machine).
    // ------------------------------------------------------------------

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// The interconnection topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of PEs.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// Network diameter in hops.
    #[inline]
    pub fn diameter(&self) -> u32 {
        self.topo.diameter()
    }

    /// The cost model in force.
    #[inline]
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The machine configuration.
    #[inline]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The deterministic PRNG stream of `pe` (all strategy randomness must
    /// come from here, charged to the PE making the decision). Per-PE
    /// streams make a run's randomness independent of how events from
    /// different PEs interleave — the property the sharded parallel engine
    /// relies on for bit-identical results.
    #[inline]
    pub fn rng(&mut self, pe: PeId) -> &mut Rng {
        &mut self.pe_rngs[pe.idx()]
    }

    /// The actor an event belongs to in the deterministic ordering-key
    /// schedule: 0 = environment (open traffic, recovery timeouts), then
    /// one code per PE, then one per channel. Total — every event maps to
    /// exactly one actor, and only that actor's handler mutates the
    /// actor's state.
    pub(crate) fn event_actor(&self, ev: &Event) -> u32 {
        match ev {
            Event::PeDone(pe)
            | Event::Timer(pe, _)
            | Event::LoadBcast(pe)
            | Event::FailPe(pe)
            | Event::SlowStart(pe, _)
            | Event::SlowEnd(pe) => 1 + pe.0,
            Event::ChannelDone(ch) | Event::LinkDown(ch) | Event::LinkUp(ch) => {
                1 + self.pes.len() as u32 + ch.0
            }
            Event::AckTimeout(_) | Event::Arrival | Event::Retry(_) => 0,
        }
    }

    /// First ordering key of the channel actor class: at a single
    /// timestamp, every PE- and environment-class event sorts before every
    /// channel-class event. The parallel engine's phase split rests on
    /// this boundary.
    #[inline]
    pub(crate) fn chan_key_base(&self) -> u64 {
        ((1 + self.pes.len()) as u64) << 32
    }

    /// Schedule `ev` at the absolute instant `at` under the deterministic
    /// key schedule: `(actor << 32) | seq` with a per-actor sequence. All
    /// simulation events must go through here (or
    /// [`Core::schedule_event_after`]) — a raw auto-keyed insert would
    /// break the cross-shard tie order.
    pub(crate) fn schedule_event_at(&mut self, at: SimTime, ev: Event) {
        let actor = self.event_actor(&ev) as usize;
        let seq = self.key_seq[actor];
        self.key_seq[actor] = seq + 1;
        self.events
            .schedule_keyed_at(at, ((actor as u64) << 32) | seq as u64, ev);
    }

    /// Schedule `ev` to fire `delay` units from now (keyed; see
    /// [`Core::schedule_event_at`]).
    #[inline]
    pub(crate) fn schedule_event_after(&mut self, delay: u64, ev: Event) {
        let at = self.events.now() + delay;
        self.schedule_event_at(at, ev);
    }

    /// `pe`'s own current load, per the configured metric: "the number of
    /// messages waiting to be processed by that PE", optionally weighted by
    /// the tasks waiting for responses (future commitments).
    #[inline]
    pub fn load(&self, pe: PeId) -> u32 {
        let p = &self.pes[pe.idx()];
        p.load(self.config.count_responses_in_load)
            + self.config.future_commitment_weight * p.waiting_tasks()
    }

    /// Number of tasks pinned on `pe` awaiting responses — the "future
    /// commitments" refinement of the load metric.
    #[inline]
    pub fn waiting_tasks(&self, pe: PeId) -> u32 {
        self.pes[pe.idx()].waiting_tasks()
    }

    /// Number of goals currently queued (exportable) on `pe`.
    #[inline]
    pub fn queued_goal_count(&self, pe: PeId) -> u32 {
        self.pes[pe.idx()].queued_goals
    }

    /// `pe`'s current view of neighbour `nbr`'s load. In `Instant` mode this
    /// is the true load; in `Piggyback` mode it is the last load word
    /// received from `nbr` (possibly stale).
    pub fn known_load_of(&self, pe: PeId, nbr: PeId) -> u32 {
        match self.config.load_info {
            LoadInfoMode::Instant => self.load(nbr),
            LoadInfoMode::Piggyback { .. } => {
                let idx = self
                    .neighbor_index(pe, nbr)
                    .expect("known_load_of: not a neighbour");
                self.pes[pe.idx()].known_load[idx]
            }
        }
    }

    /// True once `pe` has been killed by fault injection. Strategies use
    /// this to skip dead neighbours when they pick targets themselves.
    #[inline]
    pub fn is_pe_failed(&self, pe: PeId) -> bool {
        self.pes[pe.idx()].failed
    }

    /// True when the neighbour `nbr` of `pe` is reachable: alive, and the
    /// connecting channel is not in a fault-plan down window.
    pub fn neighbor_reachable(&self, pe: PeId, nbr: PeId) -> bool {
        if self.pes[nbr.idx()].failed {
            return false;
        }
        match self.topo.channel_between(pe, nbr) {
            Some(ch) => !self.channels.get(ch).down,
            None => false,
        }
    }

    /// Next hop for a software-routed packet from `from` toward `to`.
    ///
    /// Without faults this is the topology's precomputed shortest-path hop.
    /// Once a fault has changed the reachable topology, routing switches to
    /// the live-graph distance tables: the hop is the reachable neighbour
    /// closest to the target *in the graph as it actually is* (ties to the
    /// lowest PE id), so every hop strictly shrinks the remaining distance
    /// and a packet can never orbit a hole. A dead *target* is not detoured
    /// around — the packet black-holes at the corpse and the loss is
    /// accounted, which is what tells the recovery layer to re-spawn. A
    /// target cut off entirely falls back to the static greedy detour (the
    /// packet wanders until a black hole or a healing link settles it).
    fn route_hop(&self, from: PeId, to: PeId, prev: Option<PeId>) -> PeId {
        let hop = self.topo.next_hop(from, to);
        if self.plan.is_empty() || self.is_pe_failed(to) {
            return hop;
        }
        if let Some(lr) = self.live_routes.as_deref() {
            let n = self.pes.len();
            if lr.dist[from.idx() * n + to.idx()] != u32::MAX {
                let mut best: Option<(u32, u32)> = None;
                for nb in self.topo.neighbors(from) {
                    if !self.neighbor_reachable(from, nb.pe) {
                        continue;
                    }
                    let key = (lr.dist[nb.pe.idx() * n + to.idx()], nb.pe.0);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                if let Some((_, pe)) = best {
                    return PeId(pe);
                }
            }
        }
        if self.neighbor_reachable(from, hop) && prev != Some(hop) {
            return hop;
        }
        let mut best: Option<(u32, u32)> = None;
        for n in self.topo.neighbors(from) {
            if Some(n.pe) == prev || !self.neighbor_reachable(from, n.pe) {
                continue;
            }
            let key = (self.topo.distance(n.pe, to), n.pe.0);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        match best {
            Some((_, pe)) => PeId(pe),
            // Back the way it came, if even that is still open.
            None => match prev {
                Some(p) if self.neighbor_reachable(from, p) => p,
                _ => hop,
            },
        }
    }

    /// Recompute [`LiveRoutes`] from the current health state: one BFS per
    /// source PE over the graph with failed PEs and down channels removed.
    /// Called on every fault transition (crash, link down, link up) and
    /// after a snapshot restore — fault events are rare, so the O(n · E)
    /// rebuild never shows up in a profile.
    pub(crate) fn rebuild_live_routes(&mut self) {
        // Full health ⇒ no tables: the static shortest-path hop is already
        // correct, and `None` keeps healthy routing on the precomputed
        // tie-break (so a healed machine routes exactly like a fresh one).
        if !self.pes.iter().any(|p| p.failed)
            && !self.channels.present().iter().any(|(_, c)| c.down)
        {
            self.live_routes = None;
            return;
        }
        let n = self.pes.len();
        let mut lr = self
            .live_routes
            .take()
            .unwrap_or_else(|| Box::new(LiveRoutes { dist: Vec::new() }));
        lr.dist.clear();
        lr.dist.resize(n * n, u32::MAX);
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            if self.pes[s].failed {
                continue;
            }
            let row = s * n;
            lr.dist[row + s] = 0;
            queue.clear();
            queue.push_back(PeId(s as u32));
            while let Some(p) = queue.pop_front() {
                let d = lr.dist[row + p.idx()];
                for nb in self.topo.neighbors(p) {
                    if self.pes[nb.pe.idx()].failed || self.channels.get(nb.channel).down {
                        continue;
                    }
                    let slot = &mut lr.dist[row + nb.pe.idx()];
                    if *slot == u32::MAX {
                        *slot = d + 1;
                        queue.push_back(nb.pe);
                    }
                }
            }
        }
        self.live_routes = Some(lr);
    }

    /// The least-loaded reachable neighbour of `pe` under its current
    /// knowledge, ties broken uniformly at random (deterministically, from
    /// the run's seed). Without randomized tie-breaking, the load plateaus
    /// of an idle machine funnel every goal down the same lowest-id path —
    /// a single saturated channel and a sequential execution. Optionally
    /// exclude one neighbour (e.g. the PE a goal just came from). Returns
    /// `None` when every candidate is excluded, dead, or cut off — the
    /// caller should then keep the goal local.
    pub fn least_loaded_neighbor(
        &mut self,
        pe: PeId,
        exclude: Option<PeId>,
    ) -> Option<(PeId, u32)> {
        // Field destructuring gives the RNG pool mutably alongside shared
        // borrows of the rest, so the neighbour slice is loaded once (this
        // is a per-placement-decision hot path).
        let Core {
            topo,
            pes,
            channels,
            pe_rngs,
            config,
            open,
            events,
            ..
        } = self;
        let rng = &mut pe_rngs[pe.idx()];
        // The circuit breaker (open runs only) vetoes routing into
        // neighbourhoods it has not yet re-trusted after a fault.
        let breaker = open
            .as_deref()
            .filter(|o| o.breaker_cooldown.is_some() && !o.breaker.is_empty());
        let now = events.now().units();
        let mut best: Option<(PeId, u32)> = None;
        let mut ties = 0u64;
        for (i, n) in topo.neighbors(pe).iter().enumerate() {
            if Some(n.pe) == exclude {
                continue;
            }
            if pes[n.pe.idx()].failed || channels.get(n.channel).down {
                continue;
            }
            if breaker.is_some_and(|o| o.breaker_blocked(now, pe.0, n.pe.0)) {
                continue;
            }
            let load = match config.load_info {
                LoadInfoMode::Instant => {
                    let p = &pes[n.pe.idx()];
                    p.load(config.count_responses_in_load)
                        + config.future_commitment_weight * p.waiting_tasks()
                }
                LoadInfoMode::Piggyback { .. } => pes[pe.idx()].known_load[i],
            };
            match best {
                Some((_, b)) if load > b => {}
                Some((_, b)) if load == b => {
                    // Reservoir-sample among the tied minima.
                    ties += 1;
                    if rng.below(ties + 1) == 0 {
                        best = Some((n.pe, load));
                    }
                }
                _ => {
                    ties = 0;
                    best = Some((n.pe, load));
                }
            }
        }
        best
    }

    /// Minimum load among `pe`'s reachable neighbours under its current
    /// knowledge. `u32::MAX` when no neighbour is reachable (so a local
    /// minimum test degenerates to "accept locally").
    pub fn min_known_neighbor_load(&self, pe: PeId) -> u32 {
        let p = &self.pes[pe.idx()];
        self.topo
            .neighbors(pe)
            .iter()
            .enumerate()
            .filter(|(_, n)| !self.pes[n.pe.idx()].failed && !self.channels.get(n.channel).down)
            .filter(|(_, n)| !self.breaker_blocked(pe, n.pe))
            .map(|(i, n)| match self.config.load_info {
                LoadInfoMode::Instant => self.load(n.pe),
                LoadInfoMode::Piggyback { .. } => p.known_load[i],
            })
            .min()
            .unwrap_or(u32::MAX)
    }

    /// The most-loaded reachable neighbour of `pe` under its current
    /// knowledge, or `None` when every neighbour is dead or cut off.
    pub fn most_loaded_neighbor(&self, pe: PeId) -> Option<(PeId, u32)> {
        let mut best: Option<(PeId, u32)> = None;
        for (i, n) in self.topo.neighbors(pe).iter().enumerate() {
            if self.pes[n.pe.idx()].failed || self.channels.get(n.channel).down {
                continue;
            }
            if self.breaker_blocked(pe, n.pe) {
                continue;
            }
            let load = match self.config.load_info {
                LoadInfoMode::Instant => self.load(n.pe),
                LoadInfoMode::Piggyback { .. } => self.pes[pe.idx()].known_load[i],
            };
            match best {
                Some((_, b)) if b >= load => {}
                _ => best = Some((n.pe, load)),
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // Strategy actions.
    // ------------------------------------------------------------------

    /// Accept `goal` on `pe`: it is enqueued there and will be executed
    /// there (unless a strategy later exports it with
    /// [`Core::take_newest_goal`]).
    pub fn accept_goal(&mut self, pe: PeId, goal: GoalMsg) {
        if self.pes[pe.idx()].failed {
            self.note_goal_lost(goal.id, pe);
            return; // goal lost to the failed PE
        }
        if self.trace.enabled() {
            self.trace.record(TraceEvent::GoalAccepted {
                t: self.events.now().units(),
                goal: goal.id,
                pe,
                hops: goal.hops,
            });
        }
        if self.plan.recovery.is_some() {
            if let Some(o) = self.faults.outstanding.get_mut(&goal.id) {
                o.resident = Some(pe);
            }
        }
        self.pes[pe.idx()].enqueue(WorkItem::Goal(goal));
        self.note_open_qlen(1);
        self.try_start(pe);
    }

    /// Send `goal` one hop from `from` to its neighbour `to`. The goal's
    /// `hops` count is incremented on arrival.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour of `from`.
    pub fn forward_goal(&mut self, from: PeId, to: PeId, goal: GoalMsg) {
        if self.trace.enabled() {
            self.trace.record(TraceEvent::GoalForwarded {
                t: self.events.now().units(),
                goal: goal.id,
                from,
                to,
                hops: goal.hops,
            });
        }
        if self.config.optimistic_accounting {
            if let Some(idx) = self.neighbor_index(from, to) {
                self.pes[from.idx()].known_load[idx] =
                    self.pes[from.idx()].known_load[idx].saturating_add(1);
            }
        }
        if self.plan.recovery.is_some() {
            // In flight again: a crash of the old host must not re-spawn it.
            if let Some(o) = self.faults.outstanding.get_mut(&goal.id) {
                o.resident = None;
            }
        }
        self.send_unicast(from, to, Packet::Goal(goal));
    }

    /// Send a strategy control message one hop to a neighbour.
    pub fn send_control(&mut self, from: PeId, to: PeId, msg: ControlMsg) {
        if self.trace.enabled() {
            self.trace.record(TraceEvent::ControlSent {
                t: self.events.now().units(),
                from,
                to,
                tag: msg.tag,
            });
        }
        self.send_unicast(from, to, Packet::Control(msg));
    }

    /// Broadcast a strategy control message to all neighbours: one
    /// transmission per incident channel, received by every other member.
    pub fn broadcast_control(&mut self, from: PeId, msg: ControlMsg) {
        self.broadcast_packet(from, Packet::Control(msg));
    }

    /// Arm a timer on `pe`; [`Strategy::on_timer`] fires with `tag` after
    /// `delay` units.
    pub fn set_timer(&mut self, pe: PeId, delay: u64, tag: u64) {
        self.schedule_event_after(delay, Event::Timer(pe, tag));
    }

    /// Remove the most recently queued goal from `pe` (the Gradient Model's
    /// export primitive).
    pub fn take_newest_goal(&mut self, pe: PeId) -> Option<GoalMsg> {
        let taken = self.pes[pe.idx()].take_newest_goal();
        if taken.is_some() {
            self.note_open_qlen(-1);
        }
        taken
    }

    /// Remove the oldest queued goal from `pe`.
    pub fn take_oldest_goal(&mut self, pe: PeId) -> Option<GoalMsg> {
        let taken = self.pes[pe.idx()].take_oldest_goal();
        if taken.is_some() {
            self.note_open_qlen(-1);
        }
        taken
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    /// Open traffic: account a change of `delta` in the total queued-goal
    /// count for the time-weighted queue-length distribution. One branch
    /// on closed runs.
    #[inline]
    fn note_open_qlen(&mut self, delta: i64) {
        if let Some(open) = self.open.as_deref_mut() {
            let now = self.events.now().units();
            open.note_qlen(now, delta);
        }
    }

    /// Open traffic: is routing from `pe` toward `nbr` vetoed by the
    /// circuit breaker? Always false on closed runs or with the breaker
    /// unconfigured.
    #[inline]
    fn breaker_blocked(&self, pe: PeId, nbr: PeId) -> bool {
        match self.open.as_deref() {
            Some(o) if o.breaker_cooldown.is_some() && !o.breaker.is_empty() => {
                o.breaker_blocked(self.events.now().units(), pe.0, nbr.0)
            }
            _ => false,
        }
    }

    /// Open traffic: `nbr` (as seen from `pe`) crashed or its link
    /// dropped — open the breaker toward it.
    fn breaker_note_down(&mut self, pe: PeId, nbr: PeId) {
        if let Some(o) = self.open.as_deref_mut() {
            if o.breaker_cooldown.is_some() {
                o.breaker_open(pe.0, nbr.0);
            }
        }
    }

    /// Open traffic: the link from `pe` toward `nbr` recovered — move the
    /// breaker to its half-open cooldown window.
    fn breaker_note_up(&mut self, pe: PeId, nbr: PeId) {
        let now = self.events.now().units();
        if let Some(o) = self.open.as_deref_mut() {
            if o.breaker_cooldown.is_some() {
                o.breaker_recover(now, pe.0, nbr.0);
            }
        }
    }

    /// Open traffic: the root goal of an in-flight request was lost to a
    /// fault. With a retry policy (and no recovery layer — recovery
    /// re-spawns the same goal slot itself and keeps the in-flight entry
    /// keyed to the live attempt), park the request in the retry-pending
    /// table and arm its backoff; an exhausted budget abandons it. Lost
    /// non-root goals return from the in-flight lookup untouched.
    fn note_request_lost(&mut self, goal: GoalId) {
        let Some(open) = self.open.as_deref_mut() else {
            return;
        };
        let Some(policy) = open.retry else {
            return;
        };
        let Some(infl) = open.inflight.remove(&goal) else {
            return;
        };
        if infl.attempts >= policy.max {
            open.abandoned_retries += 1;
            return;
        }
        let delay = open.retry_backoff(policy.base, infl.attempts);
        open.retry_pending.insert(goal, infl);
        self.schedule_event_after(delay, Event::Retry(goal));
    }

    /// Index of `nbr` within `pe`'s sorted neighbour list. Machines up to
    /// [`NBR_INDEX_LIMIT`] PEs answer from the flat O(n²) table; larger
    /// ones binary-search the sorted neighbour list (O(log degree), and no
    /// quadratic table to hold).
    #[inline]
    fn neighbor_index(&self, pe: PeId, nbr: PeId) -> Option<usize> {
        if self.nbr_index.is_empty() {
            return self
                .topo
                .neighbors(pe)
                .binary_search_by_key(&nbr, |n| n.pe)
                .ok();
        }
        match self.nbr_index[pe.idx() * self.pes.len() + nbr.idx()] {
            u16::MAX => None,
            i => Some(i as usize),
        }
    }

    fn current_load_word(&self, pe: PeId) -> u32 {
        self.load(pe)
    }

    fn send_unicast(&mut self, from: PeId, to: PeId, packet: Packet) {
        let ch = self
            .topo
            .channel_between(from, to)
            .unwrap_or_else(|| panic!("{from} -> {to}: not neighbours"));
        let flight = Flight {
            from,
            dest: FlightDest::Unicast(to),
            piggyback_load: self.piggyback_word(from),
            packet,
        };
        self.offer_to_channel(ch, flight);
    }

    fn broadcast_packet(&mut self, from: PeId, packet: Packet) {
        // One transmission per distinct incident channel (precomputed CSR).
        let (start, end) = (
            self.incident_off[from.idx()] as usize,
            self.incident_off[from.idx() + 1] as usize,
        );
        for i in start..end {
            let ch = self.incident[i];
            let flight = Flight {
                from,
                dest: FlightDest::Broadcast,
                piggyback_load: self.piggyback_word(from),
                packet,
            };
            self.offer_to_channel(ch, flight);
        }
    }

    fn piggyback_word(&self, from: PeId) -> Option<u32> {
        match self.config.load_info {
            LoadInfoMode::Piggyback { .. } => Some(self.current_load_word(from)),
            LoadInfoMode::Instant => None,
        }
    }

    fn packet_cost(&self, packet: &Packet) -> u64 {
        match packet {
            Packet::Goal(_) => self.costs.goal_hop_cost,
            Packet::Response { .. } => self.costs.response_hop_cost,
            Packet::Control(_) | Packet::LoadUpdate { .. } => self.costs.control_hop_cost,
        }
    }

    pub(crate) fn offer_to_channel(&mut self, ch: ChannelId, flight: Flight) {
        // Sharded execution: offers to channels shared with another shard
        // are captured and applied at the next phase boundary in the
        // deterministic `(time, generating key, emission index)` order —
        // two shards may offer to the same boundary channel within one
        // timestamp, and the channel's FIFO must see the sequential order.
        if let Some(par) = self.par.as_deref_mut() {
            if par.defer_chan[ch.idx()] {
                let sub = par.offer_sub;
                par.offer_sub += 1;
                par.deferred.push(DeferredOffer {
                    gen_key: par.cur_key,
                    sub,
                    channel: ch,
                    flight,
                });
                return;
            }
        }
        self.apply_offer(ch, flight);
    }

    /// Hand `flight` to the channel right now (the deferred-offer replay
    /// path of the parallel engine joins here).
    pub(crate) fn apply_offer(&mut self, ch: ChannelId, flight: Flight) {
        let cost = self.packet_cost(&flight.packet);
        let now = self.events.now();
        if self.channels.get_mut(ch).offer(flight, now) {
            self.schedule_event_after(cost, Event::ChannelDone(ch));
        }
    }

    /// Complete the in-flight transfer on `ch`: pop it, start the next
    /// backlogged one (scheduling its completion), and account the
    /// traffic. The channel-owner half of a `ChannelDone`; delivery-side
    /// effects live in `Machine::deliver_flight` so the parallel engine
    /// can split the two across shards.
    pub(crate) fn complete_channel(&mut self, ch: ChannelId) -> Flight {
        let now = self.events.now();
        let costs = self.costs; // Copy: needed while the channel is borrowed.
        let cost_of = |p: &Packet| match p {
            Packet::Goal(_) => costs.goal_hop_cost,
            Packet::Response { .. } => costs.response_hop_cost,
            Packet::Control(_) | Packet::LoadUpdate { .. } => costs.control_hop_cost,
        };
        let (flight, next) = self.channels.get_mut(ch).complete(now);
        let next_cost = next.map(|n| cost_of(&n.packet));
        if let Some(cost) = next_cost {
            self.schedule_event_after(cost, Event::ChannelDone(ch));
        }
        self.count_traffic(&flight.packet);
        flight
    }

    /// Record a completed transfer in the traffic counters.
    fn count_traffic(&mut self, packet: &Packet) {
        match packet {
            Packet::Goal(_) => self.traffic.goal_hops += 1,
            Packet::Response { .. } => self.traffic.response_hops += 1,
            Packet::Control(m) => {
                self.traffic.control_msgs += 1;
                if let Some(p) = self.profiler.as_mut() {
                    p.bump_tag(m.tag);
                }
            }
            Packet::LoadUpdate { .. } => self.traffic.load_updates += 1,
        }
    }

    fn update_known_load(&mut self, at: PeId, about: PeId, load: u32) {
        if let Some(idx) = self.neighbor_index(at, about) {
            self.pes[at.idx()].known_load[idx] = load;
        }
    }

    /// Create a fresh goal message for `spec`, child of `parent`.
    ///
    /// Ids are `(creator << 32) | seq` with a per-creator sequence
    /// (creator 0 = environment, so the root goal of a closed run keeps id
    /// 0): globally unique without a shared counter, which lets shards of
    /// the parallel engine mint ids independently yet identically to the
    /// sequential run.
    fn make_goal(&mut self, spec: TaskSpec, parent: Option<(PeId, GoalId)>) -> GoalMsg {
        let creator = parent.map_or(0, |(pe, _)| 1 + pe.0) as usize;
        let seq = self.goal_seq[creator];
        self.goal_seq[creator] = seq + 1;
        let id = GoalId(((creator as u64) << 32) | seq as u64);
        self.goals_created += 1;
        if self.trace.enabled() {
            let pe = parent.map_or(PeId(self.config.root_pe), |(pe, _)| pe);
            self.trace.record(TraceEvent::GoalCreated {
                t: self.events.now().units(),
                goal: id,
                pe,
                parent: parent.map(|(_, g)| g),
            });
        }
        GoalMsg {
            id,
            spec,
            parent,
            hops: 0,
            direct: false,
            created_at: self.events.now().units(),
        }
    }

    /// Deliver `value` from the completed goal `child` to the waiting
    /// parent, or record the root result. The child id travels with the
    /// response: it is the acknowledgment key of the recovery layer.
    fn respond(
        &mut self,
        from_pe: PeId,
        child: GoalId,
        parent: Option<(PeId, GoalId)>,
        value: i64,
    ) {
        if self.trace.enabled() {
            self.trace.record(TraceEvent::Responded {
                t: self.events.now().units(),
                from_pe,
                parent_pe: parent.map(|(pe, _)| pe),
                value,
            });
        }
        match parent {
            None => {
                if self.plan.recovery.is_some() {
                    self.faults.outstanding.remove(&child);
                }
                if self.open.is_some() {
                    // An open-traffic request completed: record its
                    // sojourn (inside the measurement window) instead of
                    // declaring the run over. The deadline is accounted
                    // lazily right here — a completion whose sojourn
                    // (clocked from the *original* arrival, never reset by
                    // retries) exceeds the deadline is a dead loss, not a
                    // success, so the sojourn quantiles are by construction
                    // quantiles of the within-deadline completions.
                    let now = self.events.now().units();
                    let open = self.open.as_deref_mut().expect("checked above");
                    let Some(infl) = open.inflight.remove(&child) else {
                        return; // superseded respawn attempt of a request
                    };
                    let sojourn = now - infl.arrived;
                    let in_window = now >= open.warmup && now < open.duration;
                    if open.deadline.is_some_and(|d| sojourn > d) {
                        open.abandoned_deadline += 1;
                        if in_window {
                            open.abandoned_deadline_measured += 1;
                        }
                    } else {
                        open.completions_total += 1;
                        if in_window {
                            open.sojourn.record(sojourn);
                            open.sojourn_stats.record(sojourn as f64);
                        }
                    }
                    if self.trace.enabled() {
                        self.trace.record(TraceEvent::RequestCompleted {
                            t: now,
                            request: infl.request,
                            goal: child,
                            pe: from_pe,
                            sojourn,
                        });
                    }
                    return;
                }
                self.root_result = Some((value, self.events.now()));
                if self.trace.enabled() {
                    self.trace.record(TraceEvent::RootCompleted {
                        t: self.events.now().units(),
                        result: value,
                    });
                }
            }
            Some((ppe, pgoal)) if ppe == from_pe => {
                self.pes[from_pe.idx()].enqueue(WorkItem::Response {
                    goal: pgoal,
                    child,
                    value,
                });
                self.try_start(from_pe);
            }
            Some((ppe, pgoal)) => {
                let hop = self.route_hop(from_pe, ppe, None);
                self.send_unicast(
                    from_pe,
                    hop,
                    Packet::Response {
                        to: (ppe, pgoal),
                        child,
                        value,
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault-injection and recovery bookkeeping.
    // ------------------------------------------------------------------

    /// Register a freshly created goal with the recovery layer (no-op
    /// unless the plan enables recovery) and arm its acknowledgment
    /// timeout, widened exponentially with each re-spawn attempt.
    fn track_goal(&mut self, goal: &GoalMsg, attempts: u32, first_created: u64) {
        let Some(rec) = self.plan.recovery else {
            return;
        };
        self.faults.outstanding.insert(
            goal.id,
            Outstanding {
                parent: goal.parent,
                spec: goal.spec,
                attempts,
                first_created,
                resident: None,
            },
        );
        let window = rec.ack_timeout.saturating_mul(1u64 << attempts.min(5));
        self.schedule_event_after(window, Event::AckTimeout(goal.id));
    }

    /// Record a goal swallowed by a fault (dead PE, dropped transfer). If
    /// the recovery layer is tracking it, trigger an immediate re-spawn
    /// instead of waiting out the ack window — the simulator knows the
    /// loss happened.
    fn note_goal_lost(&mut self, goal: GoalId, pe: PeId) {
        self.faults.goals_lost += 1;
        if self.trace.enabled() {
            self.trace.record(TraceEvent::GoalLost {
                t: self.events.now().units(),
                goal,
                pe,
            });
        }
        if self.plan.recovery.is_some() {
            if let Some(o) = self.faults.outstanding.get_mut(&goal) {
                o.resident = None; // the loss voids any acceptance
                self.schedule_event_after(0, Event::AckTimeout(goal));
            }
        } else {
            // No recovery layer: the request-retry policy (if configured)
            // gets to re-inject a lost root request from the edge.
            self.note_request_lost(goal);
        }
    }

    /// A response for `child` was swallowed by a fault: re-spawn the child
    /// immediately if it is still tracked (the re-run re-sends the value).
    fn note_response_lost(&mut self, child: GoalId) {
        if self.plan.recovery.is_some() {
            if let Some(o) = self.faults.outstanding.get_mut(&child) {
                o.resident = None; // the computed value is gone with the response
                self.schedule_event_after(0, Event::AckTimeout(child));
            }
        }
    }

    /// If `pe` is free and has queued work, start its next item.
    fn try_start(&mut self, pe: PeId) {
        if self.pes[pe.idx()].failed || self.pes[pe.idx()].executing.is_some() {
            return;
        }
        let discipline = self.config.queue_discipline;
        let Some(item) = self.pes[pe.idx()].dequeue(discipline) else {
            return;
        };
        if matches!(item, WorkItem::Goal(_)) {
            self.note_open_qlen(-1);
        }
        let speed = self.pes[pe.idx()].cost_factor * self.pes[pe.idx()].transient_factor;
        let (exec, cost, is_user_work) = match item {
            WorkItem::Goal(goal) => {
                let expansion = self.program.expand(&goal.spec);
                let mult = self.program.work_multiplier(&goal.spec).max(1);
                let base = match &expansion {
                    Expansion::Leaf(_) => self.costs.leaf_cost,
                    Expansion::Split(_) => self.costs.split_cost,
                };
                self.goals_executed += 1;
                self.pes[pe.idx()].goals_executed += 1;
                self.hop_hist.record(goal.hops as u64);
                let started = self.events.now().units();
                self.dispatch_latency
                    .record(pe.0, (started - goal.created_at) as f64);
                if self.trace.enabled() {
                    self.trace.record(TraceEvent::GoalStarted {
                        t: self.events.now().units(),
                        goal: goal.id,
                        pe,
                    });
                }
                (Executing::Goal(goal, expansion), base * mult * speed, true)
            }
            WorkItem::Response { goal, child, value } => (
                Executing::Response { goal, child, value },
                self.costs.combine_cost * speed,
                true,
            ),
            WorkItem::Handle { from, packet } => (
                Executing::Handle { from, packet },
                self.costs.software_routing_cost.max(1),
                false,
            ),
            WorkItem::TimerWork { tag } => (
                Executing::TimerWork { tag },
                self.costs.software_routing_cost.max(1),
                false,
            ),
        };
        if is_user_work {
            self.seq_work += cost;
        }
        let now = self.events.now();
        let p = &mut self.pes[pe.idx()];
        p.exec_start = now;
        p.busy_until = now + cost;
        p.executing = Some(exec);
        p.busy.set_busy(now);
        self.schedule_event_after(cost, Event::PeDone(pe));
    }

    /// True once the run is over: the root result was produced (closed
    /// runs), or the time horizon was reached / the saturation trip wire
    /// fired (open runs).
    pub(crate) fn completed(&self) -> bool {
        match &self.open {
            None => self.root_result.is_some(),
            Some(open) => open.saturated.is_some() || self.events.now().units() >= open.duration,
        }
    }
}

/// A complete simulation: a [`Core`] plus the strategy driving it.
pub struct Machine {
    pub(crate) core: Core,
    pub(crate) strategy: Box<dyn Strategy>,
}

impl Machine {
    /// Assemble a machine. Fails fast on invalid configuration.
    pub fn new(
        topo: Topology,
        program: Box<dyn Program>,
        strategy: Box<dyn Strategy>,
        costs: CostModel,
        mut config: MachineConfig,
    ) -> Result<Self, SimError> {
        costs.validate().map_err(SimError::InvalidConfig)?;
        config.validate().map_err(SimError::InvalidConfig)?;
        config
            .fault_plan
            .validate(topo.num_pes(), topo.num_channels())
            .map_err(SimError::InvalidConfig)?;
        if (config.root_pe as usize) >= topo.num_pes() {
            return Err(SimError::InvalidConfig(format!(
                "root PE {} out of range (topology has {} PEs)",
                config.root_pe,
                topo.num_pes()
            )));
        }
        let sampling = config.sampling_interval;
        let sparse = config.sparse_state(topo.num_pes());
        let mut rng = Rng::seed_from_u64(config.seed);
        let mut pes: Vec<Pe> = topo
            .pes()
            .map(|id| {
                if sparse {
                    // No queue preallocation: a million mostly idle PEs
                    // must not each hold a 32-slot buffer up front.
                    Pe::new_lean(id, topo.degree(id), sampling)
                } else {
                    Pe::new(id, topo.degree(id), sampling)
                }
            })
            .collect();
        if config.pe_speed_spread > 1 {
            for pe in &mut pes {
                pe.cost_factor = 1 + rng.below(config.pe_speed_spread);
            }
        }
        let channels = ChannelTable::new(topo.num_channels(), sparse);
        let max_hops = topo.diameter() as usize + 2;
        // Distinct incident channels per PE, in first-appearance order —
        // the broadcast fan-out list, built once instead of per event.
        // CSR layout: one flat array plus offsets, not a Vec per PE.
        let n = topo.num_pes();
        let mut incident_off: Vec<u32> = Vec::with_capacity(n + 1);
        let mut incident: Vec<ChannelId> = Vec::new();
        incident_off.push(0);
        let mut chans: Vec<ChannelId> = Vec::new();
        for pe in topo.pes() {
            chans.clear();
            for nb in topo.neighbors(pe) {
                if !chans.contains(&nb.channel) {
                    chans.push(nb.channel);
                }
            }
            incident.extend_from_slice(&chans);
            incident_off.push(incident.len() as u32);
        }
        // Flat `[pe * num_pes + nbr]` neighbour-position table. Every
        // delivery (and every bus snoop) updates a load-table entry via
        // this lookup, so it should be O(1), not a search — but the table
        // is quadratic, so past `NBR_INDEX_LIMIT` PEs it stays empty and
        // `neighbor_index` binary-searches the sorted neighbour list.
        let mut nbr_index = Vec::new();
        if n <= NBR_INDEX_LIMIT {
            nbr_index = vec![u16::MAX; n * n];
            for pe in topo.pes() {
                for (i, nb) in topo.neighbors(pe).iter().enumerate() {
                    nbr_index[pe.idx() * n + nb.pe.idx()] = i as u16;
                }
            }
        }
        // Fold the legacy `fail_pe` shorthand into the effective plan
        // (leniently: an out-of-range PE is ignored, as it always was).
        // Taking it out of the config avoids cloning the plan's vectors;
        // the effective plan in `Core::plan` is the single source of truth.
        let mut plan = std::mem::take(&mut config.fault_plan);
        if let Some((pe, at)) = config.fail_pe {
            if (pe as usize) < topo.num_pes() {
                plan.pe_crashes.push(PeCrash { pe, at });
            }
        }
        // Fault decisions draw from their own stream so that an empty plan
        // leaves the strategy's randomness bit-identical to a run without
        // fault support at all.
        let fault_rng = Rng::seed_from_u64(config.seed ^ 0xD0E5_F00D_5EED_CAFE);
        // Open traffic resolves edges and loads any arrival trace file up
        // front, so a bad spec fails here rather than mid-run.
        let open = match &config.open {
            Some(o) => Some(Box::new(
                OpenState::build(o, config.seed, topo.num_pes(), config.root_pe)
                    .map_err(SimError::InvalidConfig)?,
            )),
            None => None,
        };
        let events = match config.queue_backend {
            QueueBackend::Heap => DualQueue::heap_with_capacity(1024),
            QueueBackend::Calendar => DualQueue::calendar(),
        };
        // Per-PE runtime RNG streams, decorrelated from the seed with a
        // SplitMix-style multiply so adjacent PEs never share a stream
        // prefix.
        let pe_rngs: Vec<Rng> = (0..n as u64)
            .map(|p| Rng::seed_from_u64(config.seed ^ (p + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        let num_actors = 1 + n + topo.num_channels();
        Ok(Machine {
            core: Core {
                rng,
                pe_rngs,
                pes,
                channels,
                events,
                incident_off,
                incident,
                nbr_index,
                key_seq: vec![0; num_actors],
                goal_seq: vec![0; 1 + n],
                goals_created: 0,
                goals_executed: 0,
                responses_processed: 0,
                seq_work: 0,
                traffic: TrafficCounters::default(),
                hop_hist: Histogram::new(max_hops.max(64)),
                dispatch_latency: DispatchLatency::new(n, sparse),
                global_series: IntervalSeries::new(sampling),
                root_result: None,
                open,
                trace: Trace::with_mode(config.trace_capacity, config.trace_mode),
                profiler: config
                    .profile
                    .then(|| Box::new(Profiler::with_kinds(&EVENT_KIND_NAMES))),
                plan,
                fault_rng,
                faults: FaultState::new(),
                sweep_orphans: Vec::new(),
                sweep_respawns: Vec::new(),
                last_progress: (0, 0, 0),
                next_check: config.progress_window,
                next_audit: if config.audit_every > 0 {
                    config.audit_every
                } else {
                    u64::MAX
                },
                last_audit_now: 0,
                par: None,
                live_routes: None,
                topo,
                costs,
                config,
                program,
            },
            strategy,
        })
    }

    /// Run the simulation to completion and produce the report.
    pub fn run(self) -> Result<Report, SimError> {
        self.run_traced().map(|(report, _)| report)
    }

    /// Current simulated time (for checkpoint drivers pacing
    /// [`Machine::advance_until`]).
    pub fn sim_time(&self) -> u64 {
        self.core.now().units()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events.events_processed()
    }

    /// Read-only view of the machine core (strategy tests size per-PE
    /// state against it when exercising [`Strategy::restore_state`]).
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Run the simulation and also return the event trace (empty unless
    /// `MachineConfig::trace_capacity` is set).
    pub fn run_traced(mut self) -> Result<(Report, Trace), SimError> {
        self.begin();
        self.advance_until(None)?;
        self.finish()
    }

    /// Initialize the run: arm load broadcasts and the fault plan, inject
    /// the root goal. Must be called exactly once before
    /// [`Machine::advance_until`] — except on a machine restored from a
    /// checkpoint, where the snapshot already contains everything `begin`
    /// sets up.
    pub fn begin(&mut self) {
        let root_pe = PeId(self.core.config.root_pe);
        self.strategy.init(&mut self.core);

        // Arm the periodic load broadcasts, staggered by PE id — only for
        // strategies that actually read neighbour loads.
        if let LoadInfoMode::Piggyback { period } = self.core.config.load_info {
            if period > 0 && self.strategy.needs_load_broadcast() {
                for pe in 0..self.core.num_pes() as u32 {
                    let offset = pe as u64 % period;
                    self.core
                        .schedule_event_at(SimTime(offset), Event::LoadBcast(PeId(pe)));
                }
            }
        }

        // Arm the fault plan: crashes, link windows, slowdown windows.
        // (The legacy `fail_pe` shorthand was folded in at construction.)
        // Index loops over the `Copy` entries sidestep borrowing the plan
        // while scheduling, without cloning its vectors.
        for i in 0..self.core.plan.pe_crashes.len() {
            let c = self.core.plan.pe_crashes[i];
            self.core
                .schedule_event_at(SimTime(c.at), Event::FailPe(PeId(c.pe)));
        }
        for i in 0..self.core.plan.link_windows.len() {
            let w = self.core.plan.link_windows[i];
            self.core
                .schedule_event_at(SimTime(w.down_at), Event::LinkDown(ChannelId(w.channel)));
            self.core
                .schedule_event_at(SimTime(w.up_at), Event::LinkUp(ChannelId(w.channel)));
        }
        for i in 0..self.core.plan.slowdowns.len() {
            let s = self.core.plan.slowdowns[i];
            self.core
                .schedule_event_at(SimTime(s.from), Event::SlowStart(PeId(s.pe), s.factor));
            self.core
                .schedule_event_at(SimTime(s.until), Event::SlowEnd(PeId(s.pe)));
        }

        // Closed run: inject the root goal. Open run: arm the first
        // arrival instead (each arrival injects its own root-level goal).
        if let Some(open) = self.core.open.as_deref_mut() {
            if let Some(at) = open.next_arrival(0) {
                self.core.schedule_event_at(SimTime(at), Event::Arrival);
            }
            return;
        }
        let root_spec = self.core.program.root();
        let root_goal = self.core.make_goal(root_spec, None);
        self.core.track_goal(&root_goal, 0, 0);
        self.strategy
            .on_goal_created(&mut self.core, root_pe, root_goal);
    }

    /// Drive the event loop. With `pause_at: None`, runs until the root
    /// result is produced or the calendar drains; returns `Ok(true)` in
    /// either case ([`Machine::finish`] distinguishes them). With
    /// `Some(t)`, additionally pauses — returning `Ok(false)` — after
    /// processing the first event at simulated time `>= t`; this is the
    /// checkpointing driver's hook, and because the pause happens on an
    /// event boundary the paused machine's state is exactly the state an
    /// uninterrupted run passes through.
    pub fn advance_until(&mut self, pause_at: Option<u64>) -> Result<bool, SimError> {
        while let Some((at, ev)) = self.core.events.pop() {
            if self.core.profiler.is_some() {
                // Profiled path: one clock read around the handler, plus
                // the queue-depth high-water mark. The unprofiled path
                // pays exactly the one branch above.
                let kind = ev.kind();
                let depth = self.core.events.len();
                let t0 = std::time::Instant::now();
                self.handle_event(ev);
                if let Some(p) = self.core.profiler.as_mut() {
                    p.note_queue_depth(depth);
                    p.record(kind, t0);
                }
            } else {
                self.handle_event(ev);
            }
            if self.core.completed() {
                return Ok(true);
            }
            let n = self.core.events.events_processed();
            if n >= self.core.next_audit {
                crate::audit::audit(&self.core, self.strategy.as_ref())?;
                self.core.last_audit_now = self.core.now().units();
                self.core.next_audit = n + self.core.config.audit_every;
            }
            if n >= self.core.next_check {
                let progress = (
                    self.core.goals_created,
                    self.core.goals_executed,
                    self.core.responses_processed,
                );
                if progress == self.core.last_progress {
                    // Distinguish a communication-bound machine (a channel
                    // backlog growing without bound) from a plain stall.
                    // `present()` walks slots in ascending id order in
                    // both representations, and untouched sparse slots
                    // have empty backlogs — so the worst channel found
                    // (std's max_by_key keeps the *last* maximum) is the
                    // same in either mode.
                    let worst = self
                        .core
                        .channels
                        .present()
                        .into_iter()
                        .max_by_key(|(_, c)| c.backlog.len());
                    if let Some((idx, ch)) = worst {
                        if ch.backlog.len() > 100 {
                            return Err(SimError::Stagnation {
                                channel: idx,
                                backlog: ch.backlog.len(),
                                time: self.core.now().units(),
                            });
                        }
                    }
                    return Err(self.stall_error());
                }
                self.core.last_progress = progress;
                self.core.next_check = n + self.core.config.progress_window;
            }
            if n >= self.core.config.max_events {
                return Err(SimError::EventLimit {
                    events: n,
                    time: self.core.now().units(),
                });
            }
            if let Some(t) = pause_at {
                if at.units() >= t {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Consume the machine after [`Machine::advance_until`] returned
    /// `Ok(true)` and produce the report (or the stall error when the
    /// calendar drained without a root result).
    pub fn finish(mut self) -> Result<(Report, Trace), SimError> {
        // An open run may also end by draining the calendar early (arrival
        // schedule exhausted and all work done); its report is always
        // buildable, with any shortfall visible in the open metrics.
        if self.core.open.is_none() && !self.core.completed() {
            return Err(self.stall_error());
        }
        let report = self.build_report();
        Ok((report, std::mem::take(&mut self.core.trace)))
    }

    /// The error for a run that cannot make progress any more. When faults
    /// swallowed goals or transfers, attribute the failure to them (and
    /// flag whether a plan made that expected); a fault-free stall keeps
    /// the loud [`SimError::Stalled`] that flags leaky strategies.
    pub(crate) fn stall_error(&self) -> SimError {
        let f = &self.core.faults;
        if f.goals_lost > 0 || f.messages_dropped > 0 || f.retries_exhausted > 0 {
            SimError::GoalsLost {
                expected_by_plan: !self.core.plan.is_empty(),
                goals_lost: f.goals_lost,
                messages_dropped: f.messages_dropped,
                retries_exhausted: f.retries_exhausted,
                time: self.core.now().units(),
            }
        } else {
            SimError::Stalled {
                time: self.core.now().units(),
                goals_created: self.core.goals_created,
                goals_executed: self.core.goals_executed,
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    pub(crate) fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::PeDone(pe) => self.handle_pe_done(pe),
            Event::ChannelDone(ch) => self.handle_channel_done(ch),
            Event::Timer(pe, tag) => {
                if self.core.pes[pe.idx()].failed {
                    return;
                }
                if self.core.trace.enabled() {
                    self.core.trace.record(TraceEvent::TimerFired {
                        t: self.core.events.now().units(),
                        pe,
                        tag,
                    });
                }
                if self.core.config.coprocessor {
                    self.strategy.on_timer(&mut self.core, pe, tag);
                } else {
                    // No co-processor: the balancing process itself (e.g.
                    // one gradient cycle) charges PE time, ahead of user
                    // work.
                    self.core.pes[pe.idx()]
                        .sys_queue
                        .push_back(WorkItem::TimerWork { tag });
                    self.core.try_start(pe);
                }
            }
            Event::LoadBcast(pe) => self.handle_load_bcast(pe),
            Event::FailPe(pe) => self.handle_fail_pe(pe),
            Event::LinkDown(ch) => self.handle_link_down(ch),
            Event::LinkUp(ch) => self.handle_link_up(ch),
            Event::SlowStart(pe, factor) => {
                if self.core.pes[pe.idx()].failed {
                    return;
                }
                self.core.pes[pe.idx()].transient_factor = factor;
                if self.core.trace.enabled() {
                    self.core.trace.record(TraceEvent::PeSlowed {
                        t: self.core.events.now().units(),
                        pe,
                        factor,
                    });
                }
            }
            Event::SlowEnd(pe) => {
                if self.core.pes[pe.idx()].failed {
                    return;
                }
                self.core.pes[pe.idx()].transient_factor = 1;
                if self.core.trace.enabled() {
                    self.core.trace.record(TraceEvent::PeRestored {
                        t: self.core.events.now().units(),
                        pe,
                    });
                }
            }
            Event::Arrival => self.handle_arrival(),
            Event::Retry(old) => self.handle_retry(old),
            Event::AckTimeout(goal) => {
                // Acceptance at a live PE is the acknowledgment: a goal
                // resident somewhere healthy is making progress (long-lived
                // subtrees legitimately outlive any fixed window), so re-arm
                // rather than duplicate the whole subtree. Only goals in
                // limbo — in transit past the window, or flagged by a known
                // loss (which clears residency) — are re-spawned.
                if let Some(o) = self.core.faults.outstanding.get(&goal) {
                    match o.resident {
                        Some(pe) if !self.core.pes[pe.idx()].failed => {
                            let rec = self.core.plan.recovery.expect("tracked implies recovery");
                            let window = rec.ack_timeout.saturating_mul(1u64 << o.attempts.min(5));
                            self.core
                                .schedule_event_after(window, Event::AckTimeout(goal));
                        }
                        _ => self.respawn(goal),
                    }
                }
            }
        }
    }

    /// Open traffic: one external request arrives — inject it as a fresh
    /// root-level goal at the next edge PE, check the saturation trip
    /// wire, and arm the next arrival.
    fn handle_arrival(&mut self) {
        let now = self.core.events.now().units();
        let Some(open) = self.core.open.as_deref_mut() else {
            return; // stale event on a closed run (cannot happen)
        };
        // Trace replay may pin the entry PE; taking the override also
        // advances the replay cursor, so it must precede the next-arrival
        // peek.
        let override_pe = open.trace_pe_override();
        let next_at = open.next_arrival(now);
        let (edges_len, start) = (open.edges.len() as u32, open.edge_idx);
        if let Some(at) = next_at {
            self.core.schedule_event_at(SimTime(at), Event::Arrival);
        }
        // Entry PE: the explicit trace PE if alive, else round-robin over
        // the edge set skipping crashed PEs. With every candidate dead the
        // request is refused at the door: it still counts as an arrival,
        // and as shed (it never enters the system), which keeps the
        // arrival-conservation identity exact under faults.
        let mut entry = None;
        if let Some(pe) = override_pe {
            if !self.core.pes[pe as usize].failed {
                entry = Some(PeId(pe));
            }
        } else {
            for k in 0..edges_len {
                let i = (start + k) % edges_len;
                let cand = self.core.open.as_ref().expect("open mode").edges[i as usize];
                if !self.core.pes[cand as usize].failed {
                    self.core.open.as_deref_mut().expect("open mode").edge_idx =
                        (i + 1) % edges_len;
                    entry = Some(PeId(cand));
                    break;
                }
            }
        }
        let Some(pe) = entry else {
            let open = self.core.open.as_deref_mut().expect("open mode");
            open.arrivals_total += 1;
            open.shed_total += 1;
            return;
        };
        // Edge admission control: an arrival that fails the configured
        // check is shed at the door — no goal is created, nothing queues.
        if let Some(policy) = self.core.open.as_deref().expect("open mode").admission {
            let admitted = match policy {
                AdmissionPolicy::QueueDepth { max } => {
                    (self.core.pes[pe.idx()].queued_goals as u64) < max
                }
                AdmissionPolicy::Utilization { threshold } => {
                    let live = self.core.pes.iter().filter(|p| !p.failed);
                    let (mut executing, mut total) = (0u64, 0u64);
                    for p in live {
                        total += 1;
                        executing += p.executing.is_some() as u64;
                    }
                    (executing as f64) < threshold * total.max(1) as f64
                }
                AdmissionPolicy::TokenBucket { rate, burst } => self
                    .core
                    .open
                    .as_deref_mut()
                    .expect("open mode")
                    .bucket_admit(now, rate, burst),
            };
            if !admitted {
                let open = self.core.open.as_deref_mut().expect("open mode");
                open.arrivals_total += 1;
                open.shed_total += 1;
                return;
            }
        }
        let spec = self.core.program.root();
        let goal = self.core.make_goal(spec, None);
        let open = self.core.open.as_deref_mut().expect("open mode");
        let request = open.next_request;
        open.next_request += 1;
        open.arrivals_total += 1;
        open.inflight.insert(
            goal.id,
            Inflight {
                request,
                arrived: now,
                attempts: 0,
            },
        );
        if open.saturated.is_none() && open.requests_in_system() > open.threshold {
            open.saturated = Some((now, open.requests_in_system()));
        }
        if self.core.trace.enabled() {
            self.core.trace.record(TraceEvent::RequestArrived {
                t: now,
                request,
                goal: goal.id,
                pe,
            });
        }
        self.core.track_goal(&goal, 0, now);
        self.strategy.on_goal_created(&mut self.core, pe, goal);
    }

    /// Open traffic: a lost request's backoff expired — re-inject it as a
    /// fresh root goal at the next live edge PE, carrying the original
    /// arrival instant (the deadline clock never resets) and one more
    /// attempt on its budget. A request whose deadline already passed
    /// while it waited is abandoned, as is one that finds every edge PE
    /// dead (crashed PEs never come back, so further backoff cannot help).
    fn handle_retry(&mut self, old: GoalId) {
        let now = self.core.events.now().units();
        let Some(open) = self.core.open.as_deref_mut() else {
            return;
        };
        let Some(infl) = open.retry_pending.remove(&old) else {
            return; // superseded (cannot happen: one Retry event per parking)
        };
        if open
            .deadline
            .is_some_and(|d| now.saturating_sub(infl.arrived) > d)
        {
            open.abandoned_deadline += 1;
            if now >= open.warmup && now < open.duration {
                open.abandoned_deadline_measured += 1;
            }
            return;
        }
        let (edges_len, start) = (open.edges.len() as u32, open.edge_idx);
        let mut entry = None;
        for k in 0..edges_len {
            let i = (start + k) % edges_len;
            let cand = self.core.open.as_ref().expect("open mode").edges[i as usize];
            if !self.core.pes[cand as usize].failed {
                self.core.open.as_deref_mut().expect("open mode").edge_idx = (i + 1) % edges_len;
                entry = Some(PeId(cand));
                break;
            }
        }
        let Some(pe) = entry else {
            self.core
                .open
                .as_deref_mut()
                .expect("open mode")
                .abandoned_retries += 1;
            return;
        };
        let spec = self.core.program.root();
        let goal = self.core.make_goal(spec, None);
        let open = self.core.open.as_deref_mut().expect("open mode");
        open.retries_total += 1;
        open.inflight.insert(
            goal.id,
            Inflight {
                attempts: infl.attempts + 1,
                ..infl
            },
        );
        if self.core.trace.enabled() {
            self.core.trace.record(TraceEvent::RequestArrived {
                t: now,
                request: infl.request,
                goal: goal.id,
                pe,
            });
        }
        self.core.track_goal(&goal, 0, now);
        self.strategy.on_goal_created(&mut self.core, pe, goal);
    }

    /// Kill `pe`: everything it held is lost; it never executes again. The
    /// recovery layer re-spawns the goals that were resident there and
    /// orphans the ones whose waiting parents died with it (the
    /// grandparent's retry recreates those subtrees).
    fn handle_fail_pe(&mut self, pe: PeId) {
        if self.core.pes[pe.idx()].failed {
            return; // double crash in the plan
        }
        let now = self.core.events.now();
        // Request retry (no recovery layer: recovery's own crash sweep
        // re-keys the in-flight table itself): collect every goal id that
        // dies with the PE — queued, executing, or pinned waiting — before
        // the state is cleared. Sorted, because `waiting` is a hash map
        // and its iteration order must never reach the retry RNG. The
        // in-flight lookup inside `note_request_lost` keeps only the ids
        // that are actually root requests.
        let mut lost_roots: Vec<GoalId> = Vec::new();
        if self.core.plan.recovery.is_none()
            && self.core.open.as_deref().is_some_and(|o| o.retry.is_some())
        {
            let p = &self.core.pes[pe.idx()];
            for item in &p.queue {
                if let WorkItem::Goal(g) = item {
                    lost_roots.push(g.id);
                }
            }
            if let Some(Executing::Goal(g, _)) = &p.executing {
                lost_roots.push(g.id);
            }
            lost_roots.extend(p.waiting.keys().copied());
            lost_roots.sort();
        }
        let p = &mut self.core.pes[pe.idx()];
        let queued_goals = p.queued_goals;
        let lost = p.queued_goals as u64
            + matches!(p.executing, Some(Executing::Goal(..))) as u64
            + p.waiting.len() as u64;
        p.failed = true;
        p.executing = None;
        p.queue.clear();
        p.sys_queue.clear();
        p.waiting.clear();
        p.queued_goals = 0;
        p.queued_responses = 0;
        p.busy.set_idle(now);
        self.core.rebuild_live_routes();
        self.core.note_open_qlen(-(queued_goals as i64));
        self.core.faults.pes_crashed += 1;
        self.core.faults.goals_lost += lost;
        if self.core.trace.enabled() {
            self.core.trace.record(TraceEvent::PeCrashed {
                t: now.units(),
                pe,
                goals_lost: lost,
            });
        }
        if self.core.plan.recovery.is_some() {
            // Sweep the tracked goals. Sorted ids: HashMap iteration order
            // must never leak into the event sequence. The scratch buffers
            // are reused across crashes so repeated sweeps only allocate up
            // to their high-water mark.
            let mut orphans = std::mem::take(&mut self.core.sweep_orphans);
            let mut respawns = std::mem::take(&mut self.core.sweep_respawns);
            orphans.clear();
            respawns.clear();
            for (&id, o) in &self.core.faults.outstanding {
                if matches!(o.parent, Some((ppe, _)) if ppe == pe) {
                    orphans.push(id);
                } else if o.resident == Some(pe) {
                    respawns.push(id);
                }
            }
            orphans.sort();
            respawns.sort();
            for &id in &orphans {
                self.core.faults.outstanding.remove(&id);
            }
            for &id in &respawns {
                self.respawn(id);
            }
            self.core.sweep_orphans = orphans;
            self.core.sweep_respawns = respawns;
        }
        for id in lost_roots {
            self.core.note_request_lost(id);
        }
        // Live neighbours learn of the crash (the physical machine would
        // detect it via keep-alives; the simulator is omniscient). Index
        // re-borrowing lets the strategy take `&mut Core` inside the loop.
        // The circuit breaker opens toward the corpse first, so strategy
        // reactions to the down notification already see it blocked.
        for i in 0..self.core.topo.neighbors(pe).len() {
            let nbr = self.core.topo.neighbors(pe)[i].pe;
            if !self.core.pes[nbr.idx()].failed {
                self.core.breaker_note_down(nbr, pe);
                self.strategy.on_neighbor_down(&mut self.core, nbr, pe);
            }
        }
    }

    /// Re-spawn the tracked goal `old` on the parent's side: a fresh goal
    /// id, the same task, one more attempt on the slot's budget.
    fn respawn(&mut self, old: GoalId) {
        let Some(rec) = self.core.plan.recovery else {
            return;
        };
        let Some(entry) = self.core.faults.outstanding.remove(&old) else {
            return;
        };
        if entry.attempts >= rec.max_retries {
            self.core.faults.retries_exhausted += 1;
            return;
        }
        let home = match entry.parent {
            Some((ppe, _)) => {
                if self.core.pes[ppe.idx()].failed {
                    return; // orphan: the grandparent's retry covers it
                }
                ppe
            }
            None => {
                // The root goal re-enters at the root PE, or at the lowest
                // surviving PE if the root died.
                let root = PeId(self.core.config.root_pe);
                if !self.core.pes[root.idx()].failed {
                    root
                } else {
                    let Some(i) = (0..self.core.pes.len()).find(|&i| !self.core.pes[i].failed)
                    else {
                        return; // every PE is dead
                    };
                    PeId(i as u32)
                }
            }
        };
        let goal = self.core.make_goal(entry.spec, entry.parent);
        if entry.parent.is_none() {
            // An open-traffic request's root goal was re-spawned: keep the
            // in-flight entry keyed by the live attempt so the completion
            // still finds (and times) the original arrival.
            if let Some(open) = self.core.open.as_deref_mut() {
                if let Some(infl) = open.inflight.remove(&old) {
                    open.inflight.insert(goal.id, infl);
                }
            }
        }
        self.core.faults.goals_respawned += 1;
        if self.core.trace.enabled() {
            self.core.trace.record(TraceEvent::GoalRespawned {
                t: self.core.events.now().units(),
                old,
                new: goal.id,
                pe: home,
                attempt: entry.attempts + 1,
            });
        }
        self.core
            .track_goal(&goal, entry.attempts + 1, entry.first_created);
        self.strategy.on_goal_created(&mut self.core, home, goal);
    }

    /// A fault-plan link window opens: the channel stops starting
    /// transfers, and both sides treat each other as unreachable.
    fn handle_link_down(&mut self, ch: ChannelId) {
        if self.core.channels.get(ch).down {
            return;
        }
        self.core.channels.get_mut(ch).down = true;
        self.core.rebuild_live_routes();
        if self.core.trace.enabled() {
            self.core.trace.record(TraceEvent::LinkDown {
                t: self.core.events.now().units(),
                channel: ch.0,
            });
        }
        for i in 0..self.core.topo.channel_members(ch).len() {
            let a = self.core.topo.channel_members(ch)[i];
            if self.core.pes[a.idx()].failed {
                continue;
            }
            for j in 0..self.core.topo.channel_members(ch).len() {
                let b = self.core.topo.channel_members(ch)[j];
                if b != a {
                    self.core.breaker_note_down(a, b);
                    self.strategy.on_neighbor_down(&mut self.core, a, b);
                }
            }
        }
    }

    /// The link window closes: resume the backlog and tell both sides.
    fn handle_link_up(&mut self, ch: ChannelId) {
        if !self.core.channels.get(ch).down {
            return;
        }
        self.core.channels.get_mut(ch).down = false;
        self.core.rebuild_live_routes();
        if self.core.trace.enabled() {
            self.core.trace.record(TraceEvent::LinkUp {
                t: self.core.events.now().units(),
                channel: ch.0,
            });
        }
        let now = self.core.events.now();
        let costs = self.core.costs;
        let promoted_cost = self
            .core
            .channels
            .get_mut(ch)
            .promote(now)
            .map(|f| match &f.packet {
                Packet::Goal(_) => costs.goal_hop_cost,
                Packet::Response { .. } => costs.response_hop_cost,
                Packet::Control(_) | Packet::LoadUpdate { .. } => costs.control_hop_cost,
            });
        if let Some(cost) = promoted_cost {
            self.core.schedule_event_after(cost, Event::ChannelDone(ch));
        }
        for i in 0..self.core.topo.channel_members(ch).len() {
            let a = self.core.topo.channel_members(ch)[i];
            if self.core.pes[a.idx()].failed {
                continue;
            }
            for j in 0..self.core.topo.channel_members(ch).len() {
                let b = self.core.topo.channel_members(ch)[j];
                if b != a && !self.core.pes[b.idx()].failed {
                    self.core.breaker_note_up(a, b);
                    self.strategy.on_neighbor_up(&mut self.core, a, b);
                }
            }
        }
    }

    fn handle_load_bcast(&mut self, pe: PeId) {
        if self.core.pes[pe.idx()].failed {
            return;
        }
        let LoadInfoMode::Piggyback { period } = self.core.config.load_info else {
            return;
        };
        let load = self.core.current_load_word(pe);
        self.core.broadcast_packet(pe, Packet::LoadUpdate { load });
        self.core.schedule_event_after(period, Event::LoadBcast(pe));
    }

    fn handle_pe_done(&mut self, pe: PeId) {
        let core = &mut self.core;
        let p = &mut core.pes[pe.idx()];
        if p.failed {
            return; // a completion scheduled before the PE died
        }
        let exec = p.executing.take().expect("PeDone with nothing executing");
        let start = p.exec_start;
        let now = core.events.now();
        p.busy.set_idle(now);
        if core.config.per_pe_series {
            p.series.add_busy(start, now);
        }
        let user_work = !matches!(exec, Executing::Handle { .. } | Executing::TimerWork { .. });
        if user_work {
            core.global_series.add_busy(start, now);
        }
        if core.trace.enabled() {
            // Close the duration slice opened by GoalStarted (the Chrome
            // exporter pairs the two into one track-local span).
            if let Executing::Goal(ref goal, _) = exec {
                core.trace.record(TraceEvent::GoalFinished {
                    t: now.units(),
                    goal: goal.id,
                    pe,
                });
            }
        }

        match exec {
            Executing::Goal(goal, Expansion::Leaf(value)) => {
                core.respond(pe, goal.id, goal.parent, value);
            }
            Executing::Goal(goal, Expansion::Split(children)) => {
                let waiting = Waiting {
                    spec: goal.spec,
                    parent: goal.parent,
                    pending: children.len() as u32,
                    acc: core.program.combine_init(&goal.spec),
                    round: 0,
                    hops: goal.hops,
                };
                debug_assert!(waiting.pending > 0, "split with no children");
                core.pes[pe.idx()].waiting.insert(goal.id, waiting);
                self.spawn_children(pe, goal.id, children);
            }
            Executing::Response { goal, child, value } => {
                self.finish_response(pe, goal, child, value);
            }
            Executing::Respawn { goal, children } => {
                self.spawn_children(pe, goal, children);
            }
            Executing::Handle { from, packet } => {
                self.process_delivery(pe, from, packet);
            }
            Executing::TimerWork { tag } => {
                self.strategy.on_timer(&mut self.core, pe, tag);
            }
        }

        self.core.try_start(pe);
        if self.core.pes[pe.idx()].is_idle() && !self.core.completed() {
            self.strategy.on_idle(&mut self.core, pe);
        }
    }

    /// Combine one response; when the round completes, finish or respawn.
    fn finish_response(&mut self, pe: PeId, goal: GoalId, child: GoalId, value: i64) {
        let core = &mut self.core;
        if core.plan.recovery.is_some() {
            // A response is the child's acknowledgment: clear its tracking.
            // An untracked child means a superseded attempt (the slot was
            // already acknowledged or re-spawned) — discard the duplicate
            // so the parent never combines the same slot twice.
            match core.faults.outstanding.remove(&child) {
                Some(entry) => {
                    if entry.attempts > 0 {
                        let latency = core.events.now().units() - entry.first_created;
                        core.faults.recovery_latency.record(latency as f64);
                    }
                }
                None => {
                    core.faults.duplicate_responses += 1;
                    if core.trace.enabled() {
                        core.trace.record(TraceEvent::DuplicateResponse {
                            t: core.events.now().units(),
                            goal: child,
                            pe,
                        });
                    }
                    return;
                }
            }
        }
        core.responses_processed += 1;
        let w = core.pes[pe.idx()]
            .waiting
            .get_mut(&goal)
            .expect("response for unknown waiting task");
        w.acc = core.program.combine(&w.spec, w.acc, value);
        w.pending -= 1;
        if w.pending > 0 {
            return;
        }
        let (spec, round, acc) = (w.spec, w.round, w.acc);
        match core.program.continue_after(&spec, round, acc) {
            Continuation::Done(result) => {
                let w = core.pes[pe.idx()].waiting.remove(&goal).unwrap();
                core.respond(pe, goal, w.parent, result);
            }
            Continuation::Spawn(children) => {
                assert!(!children.is_empty(), "Continuation::Spawn with no children");
                let w = core.pes[pe.idx()].waiting.get_mut(&goal).unwrap();
                w.round += 1;
                w.pending = children.len() as u32;
                w.acc = core.program.combine_init(&spec);
                // Charge another split for the respawn round.
                let mult = core.program.work_multiplier(&spec).max(1);
                let cost = core.costs.split_cost
                    * mult
                    * core.pes[pe.idx()].cost_factor
                    * core.pes[pe.idx()].transient_factor;
                core.seq_work += cost;
                let now = core.events.now();
                let p = &mut core.pes[pe.idx()];
                debug_assert!(p.executing.is_none());
                p.exec_start = now;
                p.busy_until = now + cost;
                p.executing = Some(Executing::Respawn { goal, children });
                p.busy.set_busy(now);
                core.schedule_event_after(cost, Event::PeDone(pe));
            }
        }
    }

    /// Create goal messages for `children` of the waiting task `parent` on
    /// `pe` and hand each to the strategy for placement.
    fn spawn_children(&mut self, pe: PeId, parent: GoalId, children: TaskList) {
        for spec in children {
            let goal = self.core.make_goal(spec, Some((pe, parent)));
            self.core.track_goal(&goal, 0, goal.created_at);
            self.strategy.on_goal_created(&mut self.core, pe, goal);
        }
    }

    fn handle_channel_done(&mut self, ch: ChannelId) {
        let flight = self.core.complete_channel(ch);
        self.deliver_flight(ch, flight, None);
    }

    /// Deliver a completed transfer: the loss draw, the bus snoop, and the
    /// per-destination handoff. `owned` (parallel engine only) restricts
    /// the member-side effects to the PEs a shard owns — the completing
    /// shard broadcasts the flight and every shard applies its own slice.
    pub(crate) fn deliver_flight(&mut self, ch: ChannelId, flight: Flight, owned: Option<&[bool]>) {
        // Fault plan: each completed transfer may be lost in delivery. The
        // draw comes from the dedicated fault stream and is skipped
        // entirely at zero loss, so an empty plan changes nothing. (The
        // parallel engine never reaches this draw: a fault plan makes a
        // run ineligible for sharding.)
        if self.core.plan.message_loss > 0.0
            && self.core.fault_rng.chance(self.core.plan.message_loss)
        {
            self.core.faults.messages_dropped += 1;
            if self.core.trace.enabled() {
                self.core.trace.record(TraceEvent::MessageDropped {
                    t: self.core.events.now().units(),
                    channel: ch.0,
                });
            }
            match &flight.packet {
                Packet::Goal(g) => {
                    let id = g.id;
                    self.core.note_goal_lost(id, flight.from);
                }
                Packet::Response { child, .. } => {
                    let child = *child;
                    self.core.note_response_lost(child);
                }
                _ => {}
            }
            return;
        }

        let mine = |pe: PeId| owned.is_none_or(|o| o[pe.idx()]);
        // On a bus, every member sees every transmission: all of them snoop
        // the piggy-backed load word even when the packet itself is
        // addressed to one PE. (On a 2-member link this is identical to
        // updating just the receiver.)
        if let Some(load) = flight.piggyback_load {
            for i in 0..self.core.topo.channel_members(ch).len() {
                let m = self.core.topo.channel_members(ch)[i];
                if m != flight.from && mine(m) {
                    self.core.update_known_load(m, flight.from, load);
                }
            }
        }

        match flight.dest {
            FlightDest::Unicast(to) => {
                if mine(to) {
                    self.deliver(to, flight.from, flight.piggyback_load, flight.packet)
                }
            }
            FlightDest::Broadcast => {
                for i in 0..self.core.topo.channel_members(ch).len() {
                    let to = self.core.topo.channel_members(ch)[i];
                    if to != flight.from && mine(to) {
                        self.deliver(to, flight.from, flight.piggyback_load, flight.packet);
                    }
                }
            }
        }
    }

    /// A packet reached PE `to` (from neighbour `from`).
    fn deliver(&mut self, to: PeId, from: PeId, piggyback: Option<u32>, packet: Packet) {
        if self.core.pes[to.idx()].failed {
            // The dead PE's mailbox is a black hole — but the recovery
            // layer gets to notice what fell in.
            match &packet {
                Packet::Goal(g) => {
                    let id = g.id;
                    self.core.note_goal_lost(id, to);
                }
                Packet::Response { child, .. } => {
                    let child = *child;
                    self.core.note_response_lost(child);
                }
                _ => {}
            }
            return;
        }
        if let Some(load) = piggyback {
            self.core.update_known_load(to, from, load);
        }
        if let Packet::LoadUpdate { load } = &packet {
            self.core.update_known_load(to, from, *load);
            return; // Updating the load table is free bookkeeping.
        }
        if self.core.config.coprocessor {
            self.process_delivery(to, from, packet);
        } else {
            // No co-processor: handling charges PE time, ahead of user work.
            self.core.pes[to.idx()]
                .sys_queue
                .push_back(WorkItem::Handle { from, packet });
            self.core.try_start(to);
        }
    }

    /// Act on an arrived packet (after any software-routing charge).
    fn process_delivery(&mut self, pe: PeId, from: PeId, packet: Packet) {
        match packet {
            Packet::Goal(mut goal) => {
                goal.hops += 1;
                self.strategy.on_goal_message(&mut self.core, pe, goal);
            }
            Packet::Response {
                to: (ppe, pgoal),
                child,
                value,
            } => {
                if ppe == pe {
                    self.core.pes[pe.idx()].enqueue(WorkItem::Response {
                        goal: pgoal,
                        child,
                        value,
                    });
                    self.core.try_start(pe);
                } else {
                    let hop = self.core.route_hop(pe, ppe, Some(from));
                    self.core.send_unicast(
                        pe,
                        hop,
                        Packet::Response {
                            to: (ppe, pgoal),
                            child,
                            value,
                        },
                    );
                }
            }
            Packet::Control(msg) => {
                self.strategy.on_control(&mut self.core, pe, from, msg);
            }
            Packet::LoadUpdate { .. } => unreachable!("load updates handled at delivery"),
        }
    }

    // ------------------------------------------------------------------
    // Reporting.
    // ------------------------------------------------------------------

    pub(crate) fn build_report(&mut self) -> Report {
        let core = &mut self.core;
        // Closed runs end the instant the root result appears; open runs
        // end at the horizon (duration, saturation instant, or a drained
        // calendar) with no single result value.
        let (result, horizon) = if core.open.is_some() {
            (0, core.events.now())
        } else {
            core.root_result.expect("report before completion")
        };

        // Close any open busy span (possible only for routing work).
        for i in 0..core.pes.len() {
            let p = &mut core.pes[i];
            if let Some(start) = (p.executing.is_some()).then_some(p.exec_start) {
                if core.config.per_pe_series && start < horizon {
                    p.series.add_busy(start, horizon);
                }
            }
        }

        let num_pes = core.pes.len();
        let t = horizon.units().max(1);
        // The aggregates below (mean, CV, quantile sketch, top-K) are
        // always computed from one pass over the dense PE array — the
        // same float operations in the same order whatever the state
        // mode, so sparse and dense runs report bit-identical numbers.
        // Only the O(PE-count) *vectors* are gated, on `per_pe_metrics`.
        let per_pe_utilization: Vec<f64> = core
            .pes
            .iter()
            .map(|p| (p.busy.busy_time(horizon) as f64 / t as f64).min(1.0))
            .collect();
        let peak_queue_len = core.pes.iter().map(|p| p.peak_queue).max().unwrap_or(0);
        // One unit everywhere: every utilization figure on the report is a
        // fraction in [0, 1] (renderers convert to percent at the edge).
        let avg_utilization = per_pe_utilization.iter().sum::<f64>() / num_pes as f64;
        let speedup = num_pes as f64 * avg_utilization;

        // Streaming per-PE summaries, O(1) in the report whatever the
        // machine size: a log-histogram sketch of busy time for the
        // utilization quantiles, and the K busiest PEs by goals executed.
        let mut busy_sketch = LogHistogram::new();
        for p in &core.pes {
            busy_sketch.record(p.busy.busy_time(horizon));
        }
        let util_quantile =
            |q: f64| -> f64 { (busy_sketch.quantile(q) as f64 / t as f64).min(1.0) };
        let (util_p10, util_p50, util_p90, util_p99) = (
            util_quantile(0.10),
            util_quantile(0.50),
            util_quantile(0.90),
            util_quantile(0.99),
        );
        let mut by_goals: Vec<(u64, u32)> = core
            .pes
            .iter()
            .enumerate()
            .map(|(i, p)| (p.goals_executed, i as u32))
            .collect();
        by_goals.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let top_pes: Vec<TopPe> = by_goals
            .iter()
            .take(Report::TOP_PES)
            .map(|&(goals, pe)| TopPe {
                pe,
                goals,
                utilization: per_pe_utilization[pe as usize],
            })
            .collect();
        let executed_by_pes: u64 = by_goals.iter().map(|&(g, _)| g).sum();
        let other_goals = executed_by_pes - top_pes.iter().map(|tp| tp.goals).sum::<u64>();
        drop(by_goals);

        let per_pe_goals: Vec<u64> = if core.config.per_pe_metrics {
            core.pes.iter().map(|p| p.goals_executed).collect()
        } else {
            Vec::new()
        };

        let util_series: Vec<(u64, f64)> = core
            .global_series
            .utilization_series(horizon)
            .into_iter()
            .map(|(t0, f)| (t0, (f / num_pes as f64).min(1.0)))
            .collect();

        let per_pe_series = core.config.per_pe_series.then(|| {
            core.pes
                .iter()
                .map(|p| {
                    p.series
                        .utilization_series(horizon)
                        .into_iter()
                        .map(|(_, f)| f.min(1.0))
                        .collect()
                })
                .collect()
        });

        let max_channel_backlog = core
            .channels
            .present()
            .iter()
            .map(|(_, c)| c.max_backlog)
            .max()
            .unwrap_or(0);
        // Imbalance: coefficient of variation of per-PE busy time.
        let mean_u = per_pe_utilization.iter().sum::<f64>() / num_pes as f64;
        let var_u = per_pe_utilization
            .iter()
            .map(|u| (u - mean_u) * (u - mean_u))
            .sum::<f64>()
            / num_pes as f64;
        let imbalance_cv = if mean_u > 0.0 {
            var_u.sqrt() / mean_u
        } else {
            0.0
        };

        // Channel aggregates from the materialized slots only: an
        // untouched channel's utilization term is exactly `+0.0`, the
        // identity of this non-negative sum, so skipping the untouched
        // slots (sparse mode) yields bit-identical floats to the dense
        // walk over every channel — the nonzero terms arrive in the same
        // ascending-id order either way.
        let num_channels = core.channels.len();
        let mut chan_util_sum = 0.0f64;
        let mut max_channel_utilization = 0.0f64;
        for (_, c) in core.channels.present() {
            let u = c.busy.busy_time(horizon) as f64 / t as f64;
            chan_util_sum += u;
            max_channel_utilization = max_channel_utilization.max(u);
        }
        let avg_channel_utilization = chan_util_sum / num_channels.max(1) as f64;

        let open_metrics = core.open.as_deref_mut().map(|open| {
            let end = horizon.units();
            open.flush_qlen(end);
            // Outcome classification, most- to least-severe: the trip
            // wire beats everything (the run physically ended there);
            // then majority-shed overload; then an unservable deadline;
            // then a clean completion.
            let outcome = match open.saturated {
                Some((at, inflight)) => OpenOutcome::Saturated { at, inflight },
                None if open.admission.is_some()
                    && open.arrivals_total > 0
                    && open.shed_total * 2 > open.arrivals_total =>
                {
                    OpenOutcome::Overloaded {
                        shed: open.shed_total,
                        arrivals: open.arrivals_total,
                    }
                }
                None if open.deadline.is_some()
                    && open.completions_total == 0
                    && open.abandoned_deadline > 0 =>
                {
                    OpenOutcome::DeadlineExhausted {
                        abandoned: open.abandoned_deadline,
                    }
                }
                None => OpenOutcome::Completed,
            };
            let window = end.min(open.duration).saturating_sub(open.warmup).max(1);
            let carried = open.sojourn.total() + open.abandoned_deadline_measured;
            let abandoned = open.abandoned_total();
            OpenMetrics {
                outcome,
                duration: open.duration,
                warmup: open.warmup,
                arrivals: open.arrivals_total,
                completions: open.completions_total,
                completions_measured: open.sojourn.total(),
                inflight_at_end: open.requests_in_system(),
                offered_rate: open.arrivals_total as f64 * crate::open::RATE_UNIT
                    / end.max(1) as f64,
                throughput: carried as f64 * crate::open::RATE_UNIT / window as f64,
                goodput: open.sojourn.total() as f64 * crate::open::RATE_UNIT / window as f64,
                sojourn_mean: open.sojourn_stats.mean(),
                sojourn_p50: open.sojourn.quantile(0.50),
                sojourn_p95: open.sojourn.quantile(0.95),
                sojourn_p99: open.sojourn.quantile(0.99),
                sojourn_max: open.sojourn.max(),
                qlen_time_avg: open.qlen_hist.mean(),
                qlen_p95: open.qlen_hist.quantile(0.95),
                deadline: open.deadline,
                shed: open.shed_total,
                shed_rate: if open.arrivals_total > 0 {
                    open.shed_total as f64 / open.arrivals_total as f64
                } else {
                    0.0
                },
                abandoned_deadline: open.abandoned_deadline,
                abandoned_retries: open.abandoned_retries,
                abandonment_rate: if open.arrivals_total > 0 {
                    abandoned as f64 / open.arrivals_total as f64
                } else {
                    0.0
                },
                retries: open.retries_total,
                breaker_opens: open.breaker_opens,
            }
        });

        let (hop_histogram, hop_overflow, avg_goal_distance) = Report::hop_fields(&core.hop_hist);
        // Fold the per-PE accumulators in PE order — fixed order, so the
        // sequential and parallel engines (and the sparse and dense state
        // modes) produce bit-identical floats.
        let dispatch = core.dispatch_latency.fold();
        let dispatch_latency_mean = dispatch.mean();
        let dispatch_latency_max = dispatch.max().unwrap_or(0.0);
        let efficiency = core.seq_work as f64 / (num_pes as u64 * t) as f64;

        // The O(PE-count) vector is emitted only on request; every
        // aggregate above was already computed from the full array.
        let per_pe_utilization = if core.config.per_pe_metrics {
            per_pe_utilization
        } else {
            Vec::new()
        };

        Report {
            strategy: self.strategy.name().to_string(),
            topology: core.topo.name().to_string(),
            program: core.program.name(),
            num_pes,
            completion_time: horizon.units(),
            result,
            goals_created: core.goals_created,
            goals_executed: core.goals_executed,
            responses_processed: core.responses_processed,
            avg_utilization,
            efficiency,
            speedup,
            util_p10,
            util_p50,
            util_p90,
            util_p99,
            top_pes,
            other_goals,
            per_pe_utilization,
            per_pe_goals,
            util_series,
            per_pe_series,
            hop_histogram,
            hop_overflow,
            avg_goal_distance,
            dispatch_latency_mean,
            dispatch_latency_max,
            traffic: core.traffic,
            avg_channel_utilization,
            max_channel_utilization,
            max_channel_backlog,
            peak_queue_len,
            imbalance_cv,
            seq_work: core.seq_work,
            events: core.events.events_processed(),
            seed: core.config.seed,
            faults: core.faults.metrics(),
            profile: core.profiler.as_ref().map(|p| p.report()),
            open: open_metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oracle_topo::misc::ring;

    /// fib(n) as an inline test program.
    struct Fib(i64);

    impl Program for Fib {
        fn name(&self) -> String {
            format!("fib({})", self.0)
        }
        fn root(&self) -> TaskSpec {
            TaskSpec::new(self.0, 0)
        }
        fn expand(&self, spec: &TaskSpec) -> Expansion {
            if spec.a < 2 {
                Expansion::Leaf(spec.a)
            } else {
                Expansion::Split([spec.child(spec.a - 1, 0), spec.child(spec.a - 2, 0)].into())
            }
        }
        fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
            acc + child
        }
    }

    /// Keep every goal on the PE that created it.
    struct KeepLocal;

    impl Strategy for KeepLocal {
        fn name(&self) -> &'static str {
            "keep-local"
        }
        fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
            core.accept_goal(pe, goal);
        }
        fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
            core.accept_goal(pe, goal);
        }
    }

    /// Scatter every goal to the next PE around a ring, accepting after one
    /// hop — exercises channels and responses.
    struct ScatterRing;

    impl Strategy for ScatterRing {
        fn name(&self) -> &'static str {
            "scatter-ring"
        }
        fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
            let next = PeId((pe.0 + 1) % core.num_pes() as u32);
            core.forward_goal(pe, next, goal);
        }
        fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
            core.accept_goal(pe, goal);
        }
    }

    fn run(n: i64, strategy: Box<dyn Strategy>, seed: u64) -> Report {
        let mut config = MachineConfig::default().with_seed(seed);
        // The placement assertions below read the opt-in per-PE vectors.
        config.per_pe_metrics = true;
        let machine = Machine::new(
            ring(4),
            Box::new(Fib(n)),
            strategy,
            CostModel::unit(),
            config,
        )
        .unwrap();
        machine.run().unwrap()
    }

    #[test]
    fn computes_fibonacci_locally() {
        let r = run(10, Box::new(KeepLocal), 1);
        assert_eq!(r.result, 55);
        // fib call-tree size: 2*fib(n+1) - 1.
        assert_eq!(r.goals_created, 2 * 89 - 1);
        r.check_invariants();
        // Everything ran on the root PE.
        assert_eq!(r.avg_goal_distance, 0.0);
        assert!(r.per_pe_utilization[1] == 0.0);
    }

    #[test]
    fn computes_fibonacci_through_channels() {
        let r = run(10, Box::new(ScatterRing), 1);
        assert_eq!(r.result, 55);
        r.check_invariants();
        // Every goal travelled exactly one hop.
        assert_eq!(r.avg_goal_distance, 1.0);
        assert_eq!(r.hop_histogram, vec![0, r.goals_created]);
        assert!(r.traffic.goal_hops >= r.goals_created);
        assert!(r.traffic.response_hops > 0);
        // Work is spread across the ring.
        assert!(r.per_pe_utilization.iter().all(|&u| u > 0.0));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(12, Box::new(ScatterRing), 7);
        let b = run(12, Box::new(ScatterRing), 7);
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.events, b.events);
        assert_eq!(a.hop_histogram, b.hop_histogram);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn local_run_time_is_sequential_work() {
        // With everything on one PE and unit costs, completion time equals
        // the sequential work: one unit per goal plus one per response.
        let r = run(8, Box::new(KeepLocal), 1);
        let internal = r.goals_created - r.goals_created.div_ceil(2);
        let responses = 2 * internal;
        assert_eq!(r.seq_work, r.goals_created + responses);
        assert_eq!(r.completion_time, r.seq_work);
        assert!((r.per_pe_utilization[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn leaf_only_program_completes() {
        let r = run(1, Box::new(KeepLocal), 1);
        assert_eq!(r.result, 1);
        assert_eq!(r.goals_created, 1);
        assert_eq!(r.completion_time, 1);
    }

    #[test]
    fn invalid_root_pe_is_rejected() {
        let cfg = MachineConfig {
            root_pe: 99,
            ..MachineConfig::default()
        };
        let err = Machine::new(
            ring(4),
            Box::new(Fib(3)),
            Box::new(KeepLocal),
            CostModel::unit(),
            cfg,
        )
        .err()
        .unwrap();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    /// A strategy that drops goals (violating the conservation contract)
    /// must produce a stall, not a hang.
    struct DropAll;

    impl Strategy for DropAll {
        fn name(&self) -> &'static str {
            "drop-all"
        }
        fn on_goal_created(&mut self, _: &mut Core, _: PeId, _: GoalMsg) {}
        fn on_goal_message(&mut self, _: &mut Core, _: PeId, _: GoalMsg) {}
    }

    #[test]
    fn dropped_goals_stall_cleanly() {
        let cfg = MachineConfig {
            load_info: LoadInfoMode::Instant, // no broadcast events
            ..MachineConfig::default()
        };
        let machine = Machine::new(
            ring(4),
            Box::new(Fib(5)),
            Box::new(DropAll),
            CostModel::unit(),
            cfg,
        )
        .unwrap();
        assert!(matches!(machine.run(), Err(SimError::Stalled { .. })));
    }

    #[test]
    fn no_coprocessor_charges_routing_time() {
        let cfg = MachineConfig {
            coprocessor: false,
            ..MachineConfig::default()
        };
        let machine = Machine::new(
            ring(4),
            Box::new(Fib(10)),
            Box::new(ScatterRing),
            CostModel::unit(),
            cfg,
        )
        .unwrap();
        let slow = machine.run().unwrap();
        let fast = run(10, Box::new(ScatterRing), 1);
        assert_eq!(slow.result, fast.result);
        assert!(
            slow.completion_time > fast.completion_time,
            "software routing should slow the run ({} vs {})",
            slow.completion_time,
            fast.completion_time
        );
    }

    #[test]
    fn trace_records_the_goal_lifecycle() {
        let mut cfg = MachineConfig::default().with_seed(1);
        cfg.trace_capacity = 10_000;
        let machine = Machine::new(
            ring(4),
            Box::new(Fib(6)),
            Box::new(ScatterRing),
            CostModel::unit(),
            cfg,
        )
        .unwrap();
        let (report, trace) = machine.run_traced().unwrap();
        assert!(trace.enabled());
        let count = |pred: fn(&crate::trace::TraceEvent) -> bool| {
            trace.events().iter().filter(|e| pred(e)).count() as u64
        };
        let created = count(|e| matches!(e, crate::trace::TraceEvent::GoalCreated { .. }));
        let accepted = count(|e| matches!(e, crate::trace::TraceEvent::GoalAccepted { .. }));
        let started = count(|e| matches!(e, crate::trace::TraceEvent::GoalStarted { .. }));
        assert_eq!(created, report.goals_created);
        assert_eq!(accepted, report.goals_created, "every goal accepted once");
        assert_eq!(started, report.goals_executed);
        // Timestamps are monotone.
        let times: Vec<u64> = trace.events().iter().map(|e| e.time()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // The root completion appears with the right answer.
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, crate::trace::TraceEvent::RootCompleted { result: 8, .. })));
        assert!(trace.render().contains("result = 8"));
    }

    #[test]
    fn tracing_does_not_change_the_run() {
        let mut traced_cfg = MachineConfig::default().with_seed(2);
        traced_cfg.trace_capacity = 1000;
        let traced = Machine::new(
            ring(4),
            Box::new(Fib(9)),
            Box::new(ScatterRing),
            CostModel::unit(),
            traced_cfg,
        )
        .unwrap()
        .run()
        .unwrap();
        let plain = run(9, Box::new(ScatterRing), 2);
        assert_eq!(traced.completion_time, plain.completion_time);
        assert_eq!(traced.events, plain.events);
    }

    #[test]
    fn backlog_and_imbalance_metrics_are_populated() {
        let r = run(12, Box::new(ScatterRing), 1);
        // A scatter onto 4 PEs keeps load fairly even.
        assert!(r.imbalance_cv < 1.0, "cv = {}", r.imbalance_cv);
        let local = run(12, Box::new(KeepLocal), 1);
        assert!(
            local.imbalance_cv > r.imbalance_cv,
            "keep-local must be more imbalanced ({} vs {})",
            local.imbalance_cv,
            r.imbalance_cv
        );
        // Contention existed somewhere on the scatter run (goal traffic on
        // top of the periodic load words).
        assert!(r.max_channel_backlog > 0);
        assert!(
            local.max_channel_backlog <= r.max_channel_backlog,
            "keep-local (load words only) should not out-congest the scatter"
        );
    }

    #[test]
    fn heterogeneous_pe_speeds_slow_the_machine() {
        let mut het = MachineConfig::default().with_seed(4);
        het.pe_speed_spread = 4;
        let slow = Machine::new(
            ring(4),
            Box::new(Fib(10)),
            Box::new(ScatterRing),
            CostModel::unit(),
            het,
        )
        .unwrap()
        .run()
        .unwrap();
        let fast = run(10, Box::new(ScatterRing), 4);
        assert_eq!(slow.result, fast.result);
        assert!(
            slow.completion_time > fast.completion_time,
            "mixed-speed PEs must be slower ({} vs {})",
            slow.completion_time,
            fast.completion_time
        );
        // Deterministic: same seed, same factors.
        let again = {
            let mut cfg = MachineConfig::default().with_seed(4);
            cfg.pe_speed_spread = 4;
            Machine::new(
                ring(4),
                Box::new(Fib(10)),
                Box::new(ScatterRing),
                CostModel::unit(),
                cfg,
            )
            .unwrap()
            .run()
            .unwrap()
        };
        assert_eq!(slow.completion_time, again.completion_time);
    }

    #[test]
    fn util_series_covers_run() {
        let r = run(10, Box::new(ScatterRing), 3);
        assert!(!r.util_series.is_empty());
        // Total busy in the series equals per-PE busy time summed.
        let total: f64 = r
            .util_series
            .iter()
            .map(|&(t0, f)| {
                let width = (r.completion_time - t0).min(100);
                f * width as f64 * r.num_pes as f64
            })
            .sum();
        assert!((total - r.seq_work as f64).abs() < 1e-6);
    }

    fn run_with_plan(
        n: i64,
        strategy: Box<dyn Strategy>,
        seed: u64,
        plan: FaultPlan,
    ) -> Result<Report, SimError> {
        let mut config = MachineConfig::default().with_seed(seed);
        config.fault_plan = plan;
        config.per_pe_metrics = true; // match `run` for report comparisons
        Machine::new(
            ring(4),
            Box::new(Fib(n)),
            strategy,
            CostModel::unit(),
            config,
        )
        .unwrap()
        .run()
    }

    #[test]
    fn crash_without_recovery_is_attributed_to_the_plan() {
        // KeepLocal puts everything on PE 0; killing it mid-run strands the
        // whole computation, and the error says the plan did it.
        let plan = FaultPlan::none().crash(0, 50);
        let err = run_with_plan(10, Box::new(KeepLocal), 1, plan).unwrap_err();
        match err {
            SimError::GoalsLost {
                expected_by_plan,
                goals_lost,
                ..
            } => {
                assert!(expected_by_plan);
                assert!(goals_lost > 0);
            }
            other => panic!("expected GoalsLost, got {other}"),
        }
    }

    #[test]
    fn crash_with_recovery_still_computes_the_right_answer() {
        // Same crash, but the recovery layer re-spawns the lost subtree on
        // a surviving PE: the run completes and the value is exact.
        let plan = FaultPlan::none()
            .crash(0, 50)
            .with_recovery(crate::faults::RecoveryParams {
                ack_timeout: 50_000, // generous: only the crash sweep re-spawns
                max_retries: 6,
            });
        let r = run_with_plan(10, Box::new(KeepLocal), 1, plan).unwrap();
        assert_eq!(r.result, 55);
        assert_eq!(r.faults.pes_crashed, 1);
        assert!(r.faults.goals_lost > 0, "the dead PE held work");
        assert!(
            r.faults.goals_respawned > 0,
            "recovery must have re-spawned"
        );
        r.check_invariants();
    }

    #[test]
    fn message_loss_with_recovery_still_computes_the_right_answer() {
        // ScatterRing pushes every goal through a channel; with 5% loss
        // the retry layer must re-spawn the dropped ones until fib comes
        // out exact.
        let plan = FaultPlan::none()
            .with_loss(0.05)
            .with_recovery(crate::faults::RecoveryParams {
                ack_timeout: 5_000,
                max_retries: 8,
            });
        let r = run_with_plan(10, Box::new(ScatterRing), 3, plan).unwrap();
        assert_eq!(r.result, 55);
        assert!(
            r.faults.messages_dropped > 0,
            "5% loss over hundreds of transfers should drop something"
        );
        r.check_invariants();
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let plain = run(10, Box::new(ScatterRing), 7);
        let with_empty = run_with_plan(10, Box::new(ScatterRing), 7, FaultPlan::none()).unwrap();
        assert_eq!(format!("{plain:?}"), format!("{with_empty:?}"));
    }

    #[test]
    fn link_window_delays_but_does_not_lose_work() {
        // Take one ring link down for a while: backlogged flights resume
        // when it comes up, nothing is lost, and completion is late.
        let plain = run(10, Box::new(ScatterRing), 5);
        let plan = FaultPlan::none().link_down(0, 10, 400);
        let r = run_with_plan(10, Box::new(ScatterRing), 5, plan).unwrap();
        assert_eq!(r.result, 55);
        assert_eq!(r.faults.goals_lost, 0);
        assert!(
            r.completion_time >= plain.completion_time,
            "a down window cannot speed the run up ({} vs {})",
            r.completion_time,
            plain.completion_time
        );
        r.check_invariants();
    }

    #[test]
    fn transient_slowdown_stretches_the_run() {
        let plain = run(10, Box::new(KeepLocal), 1);
        // KeepLocal runs everything on PE 0: slow it 4x for a long window.
        let plan = FaultPlan::none().slow(0, 0, 1_000_000, 4);
        let r = run_with_plan(10, Box::new(KeepLocal), 1, plan).unwrap();
        assert_eq!(r.result, 55);
        assert!(
            r.completion_time > plain.completion_time * 3,
            "4x slowdown barely moved completion: {} vs {}",
            r.completion_time,
            plain.completion_time
        );
    }

    #[test]
    fn goal_slices_open_and_close_in_the_trace() {
        let mut cfg = MachineConfig::default().with_seed(1);
        cfg.trace_capacity = 100_000;
        let machine = Machine::new(
            ring(4),
            Box::new(Fib(8)),
            Box::new(ScatterRing),
            CostModel::unit(),
            cfg,
        )
        .unwrap();
        let (report, trace) = machine.run_traced().unwrap();
        let started = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::GoalStarted { .. }))
            .count() as u64;
        let finished = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::GoalFinished { .. }))
            .count() as u64;
        assert_eq!(started, report.goals_executed);
        assert_eq!(finished, started, "every slice that opens must close");
    }

    #[test]
    fn keep_last_trace_retains_the_tail() {
        let mut cfg = MachineConfig::default().with_seed(1);
        cfg.trace_capacity = 50;
        cfg.trace_mode = crate::trace::TraceMode::KeepLast;
        let machine = Machine::new(
            ring(4),
            Box::new(Fib(9)),
            Box::new(ScatterRing),
            CostModel::unit(),
            cfg,
        )
        .unwrap();
        let (report, trace) = machine.run_traced().unwrap();
        assert_eq!(trace.len(), 50);
        assert!(trace.dropped() > 0, "fib(9) emits far more than 50 events");
        // The tail — not the prefix — is retained: the root completion is
        // the run's last interesting event and must be present.
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::RootCompleted { .. })));
        // Chronological iteration stays monotone across the ring seam.
        let times: Vec<u64> = trace.iter().map(|e| e.time()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(report.result, 34);
    }

    #[test]
    fn profiler_counts_every_event_and_does_not_perturb_the_run() {
        let mut cfg = MachineConfig::default().with_seed(6);
        cfg.profile = true;
        let profiled = Machine::new(
            ring(4),
            Box::new(Fib(10)),
            Box::new(ScatterRing),
            CostModel::unit(),
            cfg,
        )
        .unwrap()
        .run()
        .unwrap();
        let plain = run(10, Box::new(ScatterRing), 6);
        assert!(plain.profile.is_none(), "profiling is opt-in");
        let profile = profiled.profile.as_ref().expect("profile requested");
        assert_eq!(
            profile.total_events(),
            profiled.events,
            "every processed event lands in exactly one kind"
        );
        assert!(profile.queue_depth_hwm > 0);
        assert!(profile
            .kinds
            .iter()
            .any(|k| k.name == "pe_done" && k.count > 0));
        // Profiling reads the wall clock but never the simulated state.
        assert_eq!(profiled.completion_time, plain.completion_time);
        assert_eq!(profiled.events, plain.events);
        assert_eq!(profiled.hop_histogram, plain.hop_histogram);
    }
}
