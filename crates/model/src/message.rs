//! Messages exchanged between PEs.

use oracle_topo::PeId;
use serde::{Deserialize, Serialize};

use crate::program::TaskSpec;

/// Unique identifier of a goal within one simulation run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GoalId(pub u64);

/// A goal message: a piece of work travelling to (or queued at) a PE.
///
/// `Copy` is load-bearing for performance: the hot path duplicates packets
/// when snooping and broadcasting, and a `Copy` message keeps those
/// duplications allocation-free (`tests/alloc_regression.rs` pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoalMsg {
    /// Unique id of this goal.
    pub id: GoalId,
    /// The task this goal will execute.
    pub spec: TaskSpec,
    /// Where the parent task is waiting, or `None` for the root goal.
    pub parent: Option<(PeId, GoalId)>,
    /// "A count field that says how many hops the message has travelled
    /// from the source." Incremented on every arrival at a PE.
    pub hops: u32,
    /// A directed transfer (e.g. a work-stealing donation): the receiver
    /// must accept it rather than apply its placement rule.
    pub direct: bool,
    /// Simulated time at which the goal was created (for dispatch-latency
    /// accounting).
    pub created_at: u64,
}

/// A strategy-defined control message (one hop, neighbour to neighbour).
/// The Gradient Model's proximity updates and the work-stealing handshake
/// travel as these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlMsg {
    /// Strategy-defined discriminator.
    pub tag: u8,
    /// Strategy-defined payload.
    pub value: i64,
}

/// A message in flight (or queued) on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packet {
    /// A goal travelling one hop; the strategy decides what happens on
    /// arrival.
    Goal(GoalMsg),
    /// A response routed hop-by-hop toward the waiting parent.
    Response {
        /// The PE and goal awaiting this response.
        to: (PeId, GoalId),
        /// The responding child goal — the acknowledgment key the recovery
        /// layer uses to clear its retry tracking and to discard duplicate
        /// responses from superseded attempts.
        child: GoalId,
        /// The child's result.
        value: i64,
    },
    /// A strategy control message for a specific neighbour.
    Control(ControlMsg),
    /// The "very short message" carrying the sender's load word to all
    /// members of the channel.
    LoadUpdate {
        /// Sender's load at send time.
        load: u32,
    },
}

impl Packet {
    /// True for the short control-plane packets (load words, proximity
    /// updates), false for goal and response messages.
    pub fn is_control_plane(&self) -> bool {
        matches!(self, Packet::Control(_) | Packet::LoadUpdate { .. })
    }
}

/// Delivery scope of a flight on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightDest {
    /// Deliver to one member of the channel.
    Unicast(PeId),
    /// Deliver to every member except the sender (one bus transmission).
    Broadcast,
}

/// One hop of one message: what travels on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flight {
    /// The transmitting PE.
    pub from: PeId,
    /// Unicast target or broadcast.
    pub dest: FlightDest,
    /// Sender's load at send time, piggy-backed "with regular messages,
    /// whenever possible".
    pub piggyback_load: Option<u32>,
    /// The message itself.
    pub packet: Packet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_plane_classification() {
        assert!(Packet::Control(ControlMsg { tag: 1, value: 2 }).is_control_plane());
        assert!(Packet::LoadUpdate { load: 0 }.is_control_plane());
        assert!(!Packet::Response {
            to: (PeId(0), GoalId(0)),
            child: GoalId(1),
            value: 0
        }
        .is_control_plane());
        let g = GoalMsg {
            id: GoalId(1),
            spec: TaskSpec::new(0, 0),
            parent: None,
            hops: 0,
            direct: false,
            created_at: 0,
        };
        assert!(!Packet::Goal(g).is_control_plane());
    }
}
