//! Run-level measurement and the final [`Report`].
//!
//! Mirrors ORACLE's statistics: "the overall average PE utilization,
//! average utilization of individual PEs, average and individual
//! utilizations of communication channels, the time to completion", the
//! per-interval utilization stream that drove the load monitor, and the
//! message-distance distribution of the paper's Table 3.

use oracle_des::{Histogram, ProfileReport};
use serde::{Deserialize, Serialize};

/// Message traffic counters, by message class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficCounters {
    /// Goal-message hops (each hop of each goal message counts once).
    pub goal_hops: u64,
    /// Response-message hops.
    pub response_hops: u64,
    /// Strategy control messages (proximity updates, steal handshake).
    pub control_msgs: u64,
    /// Periodic load-word broadcasts.
    pub load_updates: u64,
}

impl TrafficCounters {
    /// Total channel transfers of any kind.
    pub fn total(&self) -> u64 {
        self.goal_hops + self.response_hops + self.control_msgs + self.load_updates
    }
}

/// Fault-injection and recovery counters for one run. All zero on a
/// fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultMetrics {
    /// PEs killed by the plan during the run.
    pub pes_crashed: u32,
    /// Goals destroyed by faults: resident on a crashed PE, black-holed at
    /// a dead PE, or dropped in transit.
    pub goals_lost: u64,
    /// Channel transfers dropped by the message-loss process (all message
    /// classes).
    pub messages_dropped: u64,
    /// Goals re-spawned by the recovery layer (each is also counted in
    /// `goals_created`).
    pub goals_respawned: u64,
    /// Responses discarded because a newer attempt already filled the slot.
    pub duplicate_responses: u64,
    /// Goal slots whose retry budget ran out.
    pub retries_exhausted: u64,
    /// Mean time from a recovered goal's first spawn to its response
    /// finally combining (only goals that needed >= 1 respawn).
    pub recovery_latency_mean: f64,
    /// Largest such recovery latency.
    pub recovery_latency_max: f64,
}

impl FaultMetrics {
    /// True when any fault touched the run.
    pub fn any(&self) -> bool {
        self.pes_crashed > 0
            || self.goals_lost > 0
            || self.messages_dropped > 0
            || self.goals_respawned > 0
            || self.duplicate_responses > 0
            || self.retries_exhausted > 0
    }
}

/// How an open-traffic run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpenOutcome {
    /// The run reached its configured duration (or the arrival schedule
    /// was exhausted and all work drained) with the backlog bounded.
    Completed,
    /// The saturation trip wire fired: `inflight` requests were in flight
    /// at time `at`, so the offered load exceeds what the machine can
    /// sustain. The statistics cover the run up to that instant.
    Saturated { at: u64, inflight: u64 },
    /// Admission control shed the majority of arrivals: the machine
    /// protected itself, but the offered load was far past what it could
    /// carry. `shed` of `arrivals` requests were refused at the door.
    Overloaded { shed: u64, arrivals: u64 },
    /// A deadline was configured and *no* request ever completed within
    /// it (`abandoned` blew their budget): the deadline is unservable at
    /// this load.
    DeadlineExhausted { abandoned: u64 },
}

impl OpenOutcome {
    /// True when the run ended by saturation.
    pub fn is_saturated(&self) -> bool {
        matches!(self, OpenOutcome::Saturated { .. })
    }

    /// True for the degraded outcomes (anything but `Completed`).
    pub fn is_degraded(&self) -> bool {
        !matches!(self, OpenOutcome::Completed)
    }
}

/// Steady-state measurements of an open-traffic run (`None` on the report
/// of a classic closed run). Sojourn figures cover only requests completing
/// inside the measurement window `[warmup, duration)`; queue-length figures
/// are time-weighted over the same window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenMetrics {
    /// How the run ended.
    pub outcome: OpenOutcome,
    /// Configured run duration (simulated units).
    pub duration: u64,
    /// Configured warmup window.
    pub warmup: u64,
    /// Requests injected over the whole run.
    pub arrivals: u64,
    /// Requests completed over the whole run.
    pub completions: u64,
    /// Requests completed inside the measurement window (the population of
    /// the sojourn statistics). With a deadline configured this counts
    /// only within-deadline completions.
    pub completions_measured: u64,
    /// Requests still in the system when the run ended: routed subtrees
    /// plus requests waiting out a retry backoff.
    pub inflight_at_end: u64,
    /// Offered load: arrivals per 1000 time units over the whole run.
    pub offered_rate: f64,
    /// Carried load: measured completions (including ones past their
    /// deadline — the machine did the work even if the client walked away)
    /// per 1000 time units of measurement window.
    pub throughput: f64,
    /// Useful carried load: measured *within-deadline* completions per
    /// 1000 time units of measurement window. Equals `throughput` when no
    /// deadline is configured.
    pub goodput: f64,
    /// Mean sojourn time (arrival to result) in the window.
    pub sojourn_mean: f64,
    /// Sojourn percentiles from the log-bucketed histogram (<= 12.5%
    /// relative bucket error). With a deadline configured these are
    /// quantiles of the within-deadline completions (`sojourn_p99` is the
    /// "deadline-hit p99").
    pub sojourn_p50: u64,
    pub sojourn_p95: u64,
    pub sojourn_p99: u64,
    /// Largest measured sojourn.
    pub sojourn_max: u64,
    /// Time-weighted mean of the total queued-goal count.
    pub qlen_time_avg: f64,
    /// Time-weighted 95th percentile of the total queued-goal count.
    pub qlen_p95: u64,
    /// Configured per-request deadline (`None` when off).
    pub deadline: Option<u64>,
    /// Arrivals refused at the door over the whole run: admission control
    /// plus arrivals that found every edge PE dead.
    pub shed: u64,
    /// `shed / arrivals` (0 when there were no arrivals).
    pub shed_rate: f64,
    /// Requests that completed past their deadline (dead losses).
    pub abandoned_deadline: u64,
    /// Requests dropped after exhausting their retry budget (or with no
    /// live edge PE left to re-enter at).
    pub abandoned_retries: u64,
    /// `(abandoned_deadline + abandoned_retries) / arrivals` (0 when there
    /// were no arrivals).
    pub abandonment_rate: f64,
    /// Re-injections performed by the request-retry layer.
    pub retries: u64,
    /// Circuit-breaker transitions from closed to open.
    pub breaker_opens: u64,
}

/// One row of the report's top-K heavy-hitter table: a PE and the work it
/// absorbed. The table (plus the [`Report::other_goals`] remainder) is the
/// O(1)-size stand-in for the full `per_pe_goals` vector on huge machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopPe {
    /// The PE's id.
    pub pe: u32,
    /// Goals it executed.
    pub goals: u64,
    /// Its utilization fraction in `[0, 1]`.
    pub utilization: f64,
}

/// The result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Strategy name.
    pub strategy: String,
    /// Topology name.
    pub topology: String,
    /// Program name.
    pub program: String,
    /// Number of PEs.
    pub num_pes: usize,
    /// Time to completion in simulated units (the instant the root task's
    /// result was produced).
    pub completion_time: u64,
    /// The value computed by the simulated program.
    pub result: i64,
    /// Goals created during the run.
    pub goals_created: u64,
    /// Goals executed (must equal `goals_created` on a successful run).
    pub goals_executed: u64,
    /// Responses combined into waiting tasks.
    pub responses_processed: u64,
    /// Overall average PE utilization as a fraction in `[0, 1]` (the
    /// paper's Y axis shows it in percent; renderers multiply by 100).
    /// Without a co-processor this includes message-handling time. All
    /// utilization fields of a report share this unit.
    pub avg_utilization: f64,
    /// Useful-work efficiency as a fraction in `[0, 1]`: user computation
    /// (split + leaf + combine time) divided by
    /// `num_pes * completion_time`. Equals `avg_utilization` when a
    /// co-processor handles all balancing work.
    pub efficiency: f64,
    /// Speedup as the paper defines it: `num_pes * avg_utilization`.
    pub speedup: f64,
    /// Per-PE utilization quantiles (fractions in `[0, 1]`) from a
    /// log-histogram sketch of per-PE busy time — the O(1) summary of the
    /// utilization distribution that is always present, however large the
    /// machine. Bucket error <= 12.5% relative.
    #[serde(default)]
    pub util_p10: f64,
    #[serde(default)]
    pub util_p50: f64,
    #[serde(default)]
    pub util_p90: f64,
    #[serde(default)]
    pub util_p99: f64,
    /// The [`Report::TOP_PES`] PEs that executed the most goals (ties to
    /// the lower id), heaviest first. Always present; `top-K + other_goals`
    /// accounts for every executed goal, which `check_invariants` pins.
    #[serde(default)]
    pub top_pes: Vec<TopPe>,
    /// Goals executed by PEs outside `top_pes`.
    #[serde(default)]
    pub other_goals: u64,
    /// Per-PE utilization fractions in `[0, 1]`. Opt-in
    /// (`MachineConfig::per_pe_metrics`, the CLI's `--per-pe`); empty by
    /// default so the report stays O(1) in the PE count.
    pub per_pe_utilization: Vec<f64>,
    /// Goals executed by each PE (the placement distribution itself).
    /// Opt-in like `per_pe_utilization`.
    pub per_pe_goals: Vec<u64>,
    /// Average-across-PEs utilization per sampling interval:
    /// `(interval_start_time, fraction)` — the series of Plots 11–16.
    pub util_series: Vec<(u64, f64)>,
    /// Optional per-PE per-interval utilizations (the load-monitor stream);
    /// `per_pe_series[pe][interval]`.
    pub per_pe_series: Option<Vec<Vec<f64>>>,
    /// Distribution of the distance (hops) each goal travelled from its
    /// creation PE to the PE that executed it — the paper's Table 3.
    /// Together with `hop_overflow` this covers every executed goal.
    pub hop_histogram: Vec<u64>,
    /// Goals whose hop count fell beyond the histogram's bucket range
    /// (wandering placement on a small-diameter topology can revisit PEs
    /// indefinitely). Counted here so the histogram plus this field always
    /// sums to `goals_executed`; their true magnitudes still contribute to
    /// `avg_goal_distance`.
    pub hop_overflow: u64,
    /// Mean of that distribution ("Average" column of Table 3).
    pub avg_goal_distance: f64,
    /// Mean dispatch latency: time units from a goal's creation to the
    /// start of its execution (travel + queueing). The agility metric:
    /// CWN buys its fast rise time by paying placement latency up front.
    pub dispatch_latency_mean: f64,
    /// Largest single dispatch latency observed.
    pub dispatch_latency_max: f64,
    /// Message traffic by class.
    pub traffic: TrafficCounters,
    /// Mean channel utilization fraction across channels.
    pub avg_channel_utilization: f64,
    /// Highest single-channel utilization fraction (the bottleneck).
    pub max_channel_utilization: f64,
    /// High-water mark of any channel's message backlog — the
    /// communication-stagnation indicator (the paper chose costs so that
    /// "communication stagnation does not occur").
    pub max_channel_backlog: usize,
    /// High-water mark of any PE's work-queue length — the memory-footprint
    /// proxy, governed by the queue discipline.
    pub peak_queue_len: usize,
    /// Coefficient of variation of per-PE busy time: 0 = perfectly even
    /// load, larger = more imbalance.
    pub imbalance_cv: f64,
    /// Total user computation charged (split + leaf + combine time).
    pub seq_work: u64,
    /// Discrete events processed.
    pub events: u64,
    /// Seed the run used.
    pub seed: u64,
    /// Fault-injection and recovery counters (all zero on a fault-free
    /// run).
    pub faults: FaultMetrics,
    /// Engine profile (per-event-kind counts and wall times, queue-depth
    /// high-water mark, control-tag counters); `None` unless the run had
    /// `MachineConfig::profile` set. Wall times are nondeterministic.
    #[serde(default)]
    pub profile: Option<ProfileReport>,
    /// Steady-state open-traffic measurements; `None` on a closed run.
    /// When `Some`, `completion_time` is the run's end time (duration or
    /// saturation instant) and `result` is 0 (there is no single root).
    #[serde(default)]
    pub open: Option<OpenMetrics>,
}

impl Report {
    /// Size of the [`Report::top_pes`] heavy-hitter table.
    pub const TOP_PES: usize = 8;

    /// Speedup ratio of this run over `other` (the paper's Table 2 cells:
    /// speedup of CWN over GM). Both runs should be of the same program and
    /// topology for the ratio to be meaningful.
    pub fn speedup_over(&self, other: &Report) -> f64 {
        assert!(other.speedup > 0.0, "degenerate baseline speedup");
        self.speedup / other.speedup
    }

    /// The ideal completion time: sequential work divided by PE count.
    pub fn ideal_time(&self) -> f64 {
        self.seq_work as f64 / self.num_pes as f64
    }

    /// Build the hop fields from a histogram: the trimmed buckets, the
    /// overflow count (observations past the bucket range — previously
    /// lost, which broke goal conservation on wandering placements), and
    /// the mean over *all* observations including overflow.
    pub(crate) fn hop_fields(h: &Histogram) -> (Vec<u64>, u64, f64) {
        let upto = h.max_nonzero_bucket().map_or(0, |b| b + 1);
        (h.buckets()[..upto].to_vec(), h.overflow(), h.mean())
    }

    /// Internal consistency checks (used by integration tests): goal
    /// conservation, utilization bounds, speedup bound. Under injected
    /// faults exact goal conservation cannot hold (lost goals never
    /// execute; superseded attempts may still be in queues at completion),
    /// so the equality relaxes to an upper bound there.
    pub fn check_invariants(&self) {
        if self.faults.any() || self.open.is_some() {
            // Open runs end at a time horizon, not at quiescence: goals
            // still queued or in flight at the horizon were created but
            // never executed.
            assert!(
                self.goals_executed <= self.goals_created,
                "more goals executed than created"
            );
        } else {
            assert_eq!(
                self.goals_created, self.goals_executed,
                "goal conservation violated"
            );
        }
        assert!(
            (0.0..=1.0 + 1e-9).contains(&self.avg_utilization),
            "utilization out of range: {}",
            self.avg_utilization
        );
        assert!(
            (0.0..=1.0 + 1e-9).contains(&self.efficiency),
            "efficiency out of range: {}",
            self.efficiency
        );
        assert!(
            self.speedup <= self.num_pes as f64 + 1e-9,
            "speedup exceeds PE count"
        );
        for &u in &self.per_pe_utilization {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "per-PE utilization {u}");
        }
        let hist_total: u64 = self.hop_histogram.iter().sum::<u64>() + self.hop_overflow;
        assert_eq!(
            hist_total, self.goals_executed,
            "hop histogram (with overflow) does not cover every executed goal"
        );
        // Sparse-mode conservation: the heavy-hitter table plus the
        // remainder must cover every executed goal — the O(1) analogue of
        // the full per-PE sum below, checked whatever the state mode.
        let top_total: u64 = self.top_pes.iter().map(|t| t.goals).sum();
        assert_eq!(
            top_total + self.other_goals,
            self.goals_executed,
            "top-K goal counts plus remainder do not cover every executed goal"
        );
        for t in &self.top_pes {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&t.utilization),
                "top-PE utilization {} out of range",
                t.utilization
            );
        }
        // The full per-PE vector is opt-in; when present it must agree.
        if !self.per_pe_goals.is_empty() {
            let pe_total: u64 = self.per_pe_goals.iter().sum();
            assert_eq!(
                pe_total, self.goals_executed,
                "per-PE goal counts do not cover every executed goal"
            );
        }
        if let Some(o) = &self.open {
            // Every arrival is accounted exactly once: refused at the
            // door, completed in time, completed late, dropped by the
            // retry layer, or still in the system at the horizon.
            assert_eq!(
                o.arrivals,
                o.completions
                    + o.shed
                    + o.abandoned_deadline
                    + o.abandoned_retries
                    + o.inflight_at_end,
                "open-traffic arrival conservation violated"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(speedup: f64) -> Report {
        Report {
            strategy: "s".into(),
            topology: "t".into(),
            program: "p".into(),
            num_pes: 4,
            completion_time: 100,
            result: 0,
            goals_created: 3,
            goals_executed: 3,
            responses_processed: 2,
            avg_utilization: speedup / 4.0,
            efficiency: speedup / 4.0,
            speedup,
            util_p10: 0.4,
            util_p50: 0.5,
            util_p90: 0.5,
            util_p99: 0.5,
            top_pes: vec![
                TopPe {
                    pe: 0,
                    goals: 1,
                    utilization: 0.5,
                },
                TopPe {
                    pe: 1,
                    goals: 1,
                    utilization: 0.5,
                },
                TopPe {
                    pe: 2,
                    goals: 1,
                    utilization: 0.5,
                },
                TopPe {
                    pe: 3,
                    goals: 0,
                    utilization: 0.5,
                },
            ],
            other_goals: 0,
            per_pe_utilization: vec![0.5; 4],
            per_pe_goals: vec![1, 1, 1, 0],
            util_series: vec![],
            per_pe_series: None,
            hop_histogram: vec![1, 2],
            hop_overflow: 0,
            avg_goal_distance: 0.5,
            dispatch_latency_mean: 1.0,
            dispatch_latency_max: 2.0,
            traffic: TrafficCounters::default(),
            avg_channel_utilization: 0.1,
            max_channel_utilization: 0.2,
            max_channel_backlog: 0,
            peak_queue_len: 2,
            imbalance_cv: 0.0,
            seq_work: 200,
            events: 10,
            seed: 1,
            faults: FaultMetrics::default(),
            profile: None,
            open: None,
        }
    }

    #[test]
    fn speedup_ratio() {
        let a = dummy(2.0);
        let b = dummy(1.0);
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_time() {
        assert!((dummy(1.0).ideal_time() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn invariants_pass_on_consistent_report() {
        dummy(2.0).check_invariants();
    }

    #[test]
    #[should_panic(expected = "conservation")]
    fn invariants_catch_lost_goals() {
        let mut r = dummy(1.0);
        r.goals_executed = 2;
        r.check_invariants();
    }

    #[test]
    fn invariants_relax_conservation_under_faults() {
        let mut r = dummy(1.0);
        r.goals_created = 5; // 2 lost to a crash, never executed
        r.faults.pes_crashed = 1;
        r.faults.goals_lost = 2;
        assert!(r.faults.any());
        r.check_invariants();
    }

    #[test]
    fn hop_fields_include_overflow() {
        let mut h = Histogram::new(4);
        h.record(1);
        h.record(9); // past the bucket range
        h.record(9);
        let (buckets, overflow, mean) = Report::hop_fields(&h);
        assert_eq!(buckets, vec![0, 1]);
        assert_eq!(overflow, 2, "overflow must not be silently lost");
        assert!(
            (mean - 19.0 / 3.0).abs() < 1e-12,
            "mean keeps true magnitudes"
        );
    }

    #[test]
    fn invariants_accept_overflowed_hop_histogram() {
        let mut r = dummy(1.0);
        r.goals_created = 5;
        r.goals_executed = 5;
        r.per_pe_goals = vec![2, 1, 1, 1];
        r.other_goals = 2; // top-K table still shows 3 of the 5
        r.hop_histogram = vec![1, 2];
        r.hop_overflow = 2; // 3 in buckets + 2 overflowed = 5 executed
        r.check_invariants();
    }

    #[test]
    #[should_panic(expected = "top-K")]
    fn invariants_catch_top_k_undercount() {
        // Sparse-mode conservation: the heavy-hitter table plus the
        // remainder must cover every executed goal even when the full
        // per-PE vector is absent (the sparse default).
        let mut r = dummy(1.0);
        r.per_pe_goals = Vec::new();
        r.per_pe_utilization = Vec::new();
        r.other_goals = 0;
        r.top_pes.pop(); // drop a PE that executed... nothing; still 3
        r.top_pes.pop(); // now the table misses an executed goal
        r.check_invariants();
    }

    #[test]
    fn invariants_skip_per_pe_sum_when_vectors_opted_out() {
        let mut r = dummy(1.0);
        r.per_pe_goals = Vec::new();
        r.per_pe_utilization = Vec::new();
        r.check_invariants(); // top-K + other still covers everything
    }

    #[test]
    #[should_panic(expected = "hop histogram")]
    fn invariants_still_catch_uncovered_goals() {
        let mut r = dummy(1.0);
        r.hop_overflow = 0;
        r.hop_histogram = vec![1]; // 1 != 3 executed
        r.check_invariants();
    }

    #[test]
    #[should_panic(expected = "utilization out of range")]
    fn invariants_reject_percent_scale_utilization() {
        let mut r = dummy(2.0);
        // A percentage smuggled into the fraction-unit field must trip.
        r.avg_utilization = 50.0;
        r.check_invariants();
    }

    #[test]
    fn invariants_relax_conservation_on_open_runs() {
        let mut r = dummy(1.0);
        r.goals_created = 5; // 2 still queued when the horizon hit
        r.open = Some(OpenMetrics {
            outcome: OpenOutcome::Completed,
            duration: 100,
            warmup: 10,
            arrivals: 3,
            completions: 1,
            completions_measured: 1,
            inflight_at_end: 2,
            offered_rate: 30.0,
            throughput: 11.1,
            goodput: 11.1,
            sojourn_mean: 12.0,
            sojourn_p50: 12,
            sojourn_p95: 12,
            sojourn_p99: 12,
            sojourn_max: 12,
            qlen_time_avg: 0.5,
            qlen_p95: 2,
            deadline: None,
            shed: 0,
            shed_rate: 0.0,
            abandoned_deadline: 0,
            abandoned_retries: 0,
            abandonment_rate: 0.0,
            retries: 0,
            breaker_opens: 0,
        });
        r.check_invariants();
        assert!(!r.open.as_ref().unwrap().outcome.is_saturated());
        assert!(OpenOutcome::Saturated { at: 5, inflight: 9 }.is_saturated());
        assert!(!OpenOutcome::Completed.is_degraded());
        assert!(OpenOutcome::Overloaded {
            shed: 8,
            arrivals: 10
        }
        .is_degraded());
        assert!(OpenOutcome::DeadlineExhausted { abandoned: 4 }.is_degraded());
    }

    #[test]
    fn fault_metrics_default_is_quiet() {
        assert!(!FaultMetrics::default().any());
    }

    #[test]
    fn traffic_total() {
        let t = TrafficCounters {
            goal_hops: 1,
            response_hops: 2,
            control_msgs: 3,
            load_updates: 4,
        };
        assert_eq!(t.total(), 10);
    }
}
