//! Simulation errors.

use std::fmt;

/// A simulation run failed to complete normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event limit (`MachineConfig::max_events`) was exceeded —
    /// usually a runaway strategy generating unbounded control traffic.
    EventLimit {
        /// Events processed when the run was aborted.
        events: u64,
        /// Simulated time reached.
        time: u64,
    },
    /// The event calendar drained before the root result was produced —
    /// goals were lost or a strategy deadlocked.
    Stalled {
        /// Simulated time at which the calendar drained.
        time: u64,
        /// Goals created so far.
        goals_created: u64,
        /// Goals executed so far.
        goals_executed: u64,
    },
    /// A channel's backlog grew without bound: the configuration is
    /// communication-bound ("communication stagnation", which the paper's
    /// cost ratio was chosen to avoid). Reported instead of a bare stall
    /// when the progress watchdog finds a runaway backlog.
    Stagnation {
        /// Channel with the largest backlog.
        channel: u32,
        /// Messages queued on it when the run was aborted.
        backlog: usize,
        /// Simulated time reached.
        time: u64,
    },
    /// Goals were destroyed by injected faults (PE crashes, black-holed
    /// deliveries, dropped transfers) and the run could not finish without
    /// them — either recovery was disabled or its retry budget ran out.
    /// Distinct from [`SimError::Stalled`] so that planned fault losses
    /// are attributable while a leaky strategy (losing goals with *no*
    /// fault plan) still fails loudly as a stall.
    GoalsLost {
        /// Whether a fault plan (or `fail_pe`) was active — i.e. the loss
        /// was scheduled rather than a simulator bug.
        expected_by_plan: bool,
        /// Goals destroyed by faults.
        goals_lost: u64,
        /// Channel transfers dropped by the loss process.
        messages_dropped: u64,
        /// Goal slots whose recovery retry budget ran out.
        retries_exhausted: u64,
        /// Simulated time at which the run gave up.
        time: u64,
    },
    /// The runtime invariant auditor found the machine in an inconsistent
    /// state — a simulator bug, not a modelling outcome. The `digest` is a
    /// compact rendering of the counters involved so a violation is
    /// actionable from the one-line error alone.
    InvariantViolation {
        /// Which invariant failed, e.g. `"task-conservation"`.
        check: &'static str,
        /// Simulated time at which the audit ran.
        time: u64,
        /// Minimal state digest: the counters the failed check compared.
        digest: String,
    },
    /// Configuration rejected before the run started.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventLimit { events, time } => {
                write!(f, "event limit exceeded after {events} events at t={time}")
            }
            SimError::Stalled {
                time,
                goals_created,
                goals_executed,
            } => write!(
                f,
                "simulation stalled at t={time}: {goals_executed}/{goals_created} goals executed \
                 but no result produced"
            ),
            SimError::Stagnation {
                channel,
                backlog,
                time,
            } => write!(
                f,
                "communication stagnation at t={time}: channel {channel} has {backlog} \
                 messages backlogged and growing"
            ),
            SimError::GoalsLost {
                expected_by_plan,
                goals_lost,
                messages_dropped,
                retries_exhausted,
                time,
            } => write!(
                f,
                "run failed at t={time}: {goals_lost} goals lost to {}faults \
                 ({messages_dropped} transfers dropped, {retries_exhausted} retry budgets \
                 exhausted)",
                if *expected_by_plan {
                    "injected "
                } else {
                    "UNPLANNED "
                }
            ),
            SimError::InvariantViolation {
                check,
                time,
                digest,
            } => write!(f, "invariant `{check}` violated at t={time}: {digest}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::EventLimit {
            events: 10,
            time: 5,
        };
        assert!(e.to_string().contains("event limit"));
        let e = SimError::Stalled {
            time: 7,
            goals_created: 3,
            goals_executed: 2,
        };
        assert!(e.to_string().contains("2/3"));
        assert!(SimError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        let e = SimError::Stagnation {
            channel: 3,
            backlog: 5000,
            time: 100,
        };
        assert!(e.to_string().contains("stagnation"));
        assert!(e.to_string().contains("5000"));
        let e = SimError::GoalsLost {
            expected_by_plan: true,
            goals_lost: 4,
            messages_dropped: 2,
            retries_exhausted: 1,
            time: 900,
        };
        assert!(e.to_string().contains("4 goals lost"));
        assert!(e.to_string().contains("injected"));
        let e = SimError::GoalsLost {
            expected_by_plan: false,
            goals_lost: 1,
            messages_dropped: 0,
            retries_exhausted: 0,
            time: 10,
        };
        assert!(e.to_string().contains("UNPLANNED"));
        let e = SimError::InvariantViolation {
            check: "task-conservation",
            time: 42,
            digest: "created=10 accounted=9".into(),
        };
        assert!(e.to_string().contains("task-conservation"));
        assert!(e.to_string().contains("t=42"));
        assert!(e.to_string().contains("accounted=9"));
    }
}
