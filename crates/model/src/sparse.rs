//! Mode-switchable dense/sparse containers for per-channel and per-PE
//! bookkeeping.
//!
//! A 10^6-PE torus has two million channels, but a closed run touches only
//! the channels near where work actually flows. The dense representation
//! (one slot per id, the fast default on small machines) charges memory
//! for every idle slot; the sparse representation holds only the slots
//! that were ever written and synthesizes the pristine default on reads.
//!
//! Both representations produce **bit-identical reports**. The reductions
//! at report time (channel-utilization sums, dispatch-latency folds) walk
//! slots in ascending id order in both modes, and every absent sparse slot
//! contributes exactly the terms a pristine dense slot would: `0.0` added
//! to a non-negative f64 accumulator is the identity, and merging an empty
//! [`OnlineStats`] is a no-op — so skipping the untouched slots cannot
//! perturb a single bit of the folds. `tests/sparse_dense.rs` pins this
//! equivalence across the golden cells and under the sharded engine.

use oracle_des::{FastHashMap, OnlineStats};
use oracle_topo::ChannelId;

use crate::channel::Channel;

/// Per-channel state, dense (`Vec` indexed by channel id) or sparse (map
/// of touched channels only).
#[derive(Debug)]
pub enum ChannelTable {
    /// One slot per channel id.
    Dense(Vec<Channel>),
    /// Only the channels that were ever mutated.
    Sparse {
        /// Touched channels, keyed by channel id.
        map: FastHashMap<u32, Channel>,
        /// Total channel count (`Topology::num_channels`), for
        /// invariant checks and snapshot validation.
        len: usize,
        /// A pristine channel returned for reads of untouched slots.
        /// Never mutated: writers go through [`ChannelTable::get_mut`],
        /// which materializes a real slot.
        empty: Channel,
    },
}

impl ChannelTable {
    /// A table for `len` channels in the given representation.
    pub fn new(len: usize, sparse: bool) -> Self {
        if sparse {
            ChannelTable::Sparse {
                map: FastHashMap::default(),
                len,
                empty: Channel::new(),
            }
        } else {
            ChannelTable::Dense((0..len).map(|_| Channel::new()).collect())
        }
    }

    /// Total channel count (touched or not).
    pub fn len(&self) -> usize {
        match self {
            ChannelTable::Dense(v) => v.len(),
            ChannelTable::Sparse { len, .. } => *len,
        }
    }

    /// True if the table covers zero channels.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True in the sparse representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self, ChannelTable::Sparse { .. })
    }

    /// Number of channels actually materialized (== `len()` when dense).
    pub fn touched(&self) -> usize {
        match self {
            ChannelTable::Dense(v) => v.len(),
            ChannelTable::Sparse { map, .. } => map.len(),
        }
    }

    /// Read-only view of channel `ch`; untouched sparse slots read as a
    /// pristine idle channel.
    #[inline]
    pub fn get(&self, ch: ChannelId) -> &Channel {
        match self {
            ChannelTable::Dense(v) => &v[ch.idx()],
            ChannelTable::Sparse { map, empty, .. } => map.get(&ch.0).unwrap_or(empty),
        }
    }

    /// Mutable view of channel `ch`, materializing the slot if untouched.
    #[inline]
    pub fn get_mut(&mut self, ch: ChannelId) -> &mut Channel {
        match self {
            ChannelTable::Dense(v) => &mut v[ch.idx()],
            ChannelTable::Sparse { map, len, .. } => {
                debug_assert!(ch.idx() < *len, "channel id out of range");
                map.entry(ch.0).or_insert_with(Channel::new)
            }
        }
    }

    /// The materialized `(id, channel)` slots in ascending id order. In
    /// dense mode that is every channel; in sparse mode only the touched
    /// ones — callers folding over this must treat the missing slots as
    /// pristine (all reductions in this codebase do, see module docs).
    pub fn present(&self) -> Vec<(u32, &Channel)> {
        match self {
            ChannelTable::Dense(v) => v.iter().enumerate().map(|(i, c)| (i as u32, c)).collect(),
            ChannelTable::Sparse { map, .. } => {
                let mut v: Vec<(u32, &Channel)> = map.iter().map(|(&i, c)| (i, c)).collect();
                v.sort_unstable_by_key(|&(i, _)| i);
                v
            }
        }
    }

    /// Reset every slot to the pristine channel (snapshot restore applies
    /// the encoded `(id, state)` pairs on top of this blank table).
    pub fn reset(&mut self) {
        match self {
            ChannelTable::Dense(v) => {
                for c in v.iter_mut() {
                    *c = Channel::new();
                }
            }
            ChannelTable::Sparse { map, .. } => map.clear(),
        }
    }

    /// Swap the state of channel `c` between two tables (the parallel
    /// engine folds shard-owned channel state back into the main machine
    /// this way). Both tables must use the same representation — they
    /// always do, since shards clone the main machine's config.
    pub fn swap_slot(&mut self, c: u32, other: &mut ChannelTable) {
        match (self, other) {
            (ChannelTable::Dense(a), ChannelTable::Dense(b)) => {
                std::mem::swap(&mut a[c as usize], &mut b[c as usize]);
            }
            (ChannelTable::Sparse { map: a, .. }, ChannelTable::Sparse { map: b, .. }) => {
                let from_a = a.remove(&c);
                let from_b = b.remove(&c);
                if let Some(ch) = from_a {
                    b.insert(c, ch);
                }
                if let Some(ch) = from_b {
                    a.insert(c, ch);
                }
            }
            _ => panic!("channel-table representation mismatch across engines"),
        }
    }
}

/// Per-PE dispatch-latency accumulators, dense or sparse. Folded in
/// ascending PE order at report time; merging an empty [`OnlineStats`] is
/// the identity, so both representations fold to bit-identical floats.
#[derive(Debug)]
pub enum DispatchLatency {
    /// One accumulator per PE.
    Dense(Vec<OnlineStats>),
    /// Accumulators only for PEs that ever started a goal.
    Sparse(FastHashMap<u32, OnlineStats>),
}

impl DispatchLatency {
    /// A table for `num_pes` PEs in the given representation.
    pub fn new(num_pes: usize, sparse: bool) -> Self {
        if sparse {
            DispatchLatency::Sparse(FastHashMap::default())
        } else {
            DispatchLatency::Dense(vec![OnlineStats::new(); num_pes])
        }
    }

    /// Record one dispatch latency observed on `pe`.
    #[inline]
    pub fn record(&mut self, pe: u32, value: f64) {
        match self {
            DispatchLatency::Dense(v) => v[pe as usize].record(value),
            DispatchLatency::Sparse(map) => {
                map.entry(pe).or_insert_with(OnlineStats::new).record(value)
            }
        }
    }

    /// Fold every accumulator into one, in ascending PE order.
    pub fn fold(&self) -> OnlineStats {
        let mut out = OnlineStats::new();
        match self {
            DispatchLatency::Dense(v) => {
                for s in v {
                    out.merge(s);
                }
            }
            DispatchLatency::Sparse(map) => {
                let mut ids: Vec<u32> = map.keys().copied().collect();
                ids.sort_unstable();
                for id in ids {
                    out.merge(&map[&id]);
                }
            }
        }
        out
    }

    /// The materialized `(pe, stats)` slots in ascending PE order (every
    /// PE when dense, touched PEs when sparse).
    pub fn present(&self) -> Vec<(u32, &OnlineStats)> {
        match self {
            DispatchLatency::Dense(v) => v.iter().enumerate().map(|(i, s)| (i as u32, s)).collect(),
            DispatchLatency::Sparse(map) => {
                let mut v: Vec<(u32, &OnlineStats)> = map.iter().map(|(&i, s)| (i, s)).collect();
                v.sort_unstable_by_key(|&(i, _)| i);
                v
            }
        }
    }

    /// Mutable view of PE `p`'s accumulator, materializing it if absent
    /// (snapshot restore writes decoded accumulators through this).
    pub fn slot_mut(&mut self, pe: u32) -> &mut OnlineStats {
        match self {
            DispatchLatency::Dense(v) => &mut v[pe as usize],
            DispatchLatency::Sparse(map) => map.entry(pe).or_insert_with(OnlineStats::new),
        }
    }

    /// Reset every accumulator to empty (snapshot restore applies the
    /// encoded `(pe, stats)` pairs on top of this blank table).
    pub fn reset(&mut self) {
        match self {
            DispatchLatency::Dense(v) => {
                for s in v.iter_mut() {
                    *s = OnlineStats::new();
                }
            }
            DispatchLatency::Sparse(map) => map.clear(),
        }
    }

    /// Swap PE `p`'s accumulator between two tables (parallel-engine
    /// merge). Representations must match.
    pub fn swap_pe(&mut self, p: u32, other: &mut DispatchLatency) {
        match (self, other) {
            (DispatchLatency::Dense(a), DispatchLatency::Dense(b)) => {
                std::mem::swap(&mut a[p as usize], &mut b[p as usize]);
            }
            (DispatchLatency::Sparse(a), DispatchLatency::Sparse(b)) => {
                let from_a = a.remove(&p);
                let from_b = b.remove(&p);
                if let Some(s) = from_a {
                    b.insert(p, s);
                }
                if let Some(s) = from_b {
                    a.insert(p, s);
                }
            }
            _ => panic!("dispatch-latency representation mismatch across engines"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oracle_des::SimTime;

    #[test]
    fn sparse_reads_untouched_as_pristine() {
        let t = ChannelTable::new(100, true);
        let ch = t.get(ChannelId(57));
        assert!(!ch.is_busy());
        assert!(!ch.down);
        assert_eq!(ch.transfers, 0);
        assert_eq!(t.touched(), 0);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn sparse_materializes_on_write_and_iterates_sorted() {
        let mut t = ChannelTable::new(100, true);
        t.get_mut(ChannelId(42)).transfers = 7;
        t.get_mut(ChannelId(3)).down = true;
        assert_eq!(t.touched(), 2);
        let ids: Vec<u32> = t.present().iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, vec![3, 42]);
        assert_eq!(t.get(ChannelId(42)).transfers, 7);
    }

    #[test]
    fn dense_present_covers_all() {
        let mut t = ChannelTable::new(4, false);
        t.get_mut(ChannelId(2)).transfers = 1;
        assert_eq!(t.present().len(), 4);
        assert_eq!(t.touched(), 4);
    }

    #[test]
    fn swap_slot_moves_state_both_ways() {
        for sparse in [false, true] {
            let mut a = ChannelTable::new(8, sparse);
            let mut b = ChannelTable::new(8, sparse);
            a.get_mut(ChannelId(5)).transfers = 9;
            a.swap_slot(5, &mut b);
            assert_eq!(a.get(ChannelId(5)).transfers, 0);
            assert_eq!(b.get(ChannelId(5)).transfers, 9);
            b.swap_slot(5, &mut a);
            assert_eq!(a.get(ChannelId(5)).transfers, 9);
        }
    }

    #[test]
    fn dispatch_fold_matches_dense_and_sparse() {
        let mut d = DispatchLatency::new(10, false);
        let mut s = DispatchLatency::new(10, true);
        for (pe, v) in [(3u32, 5.0), (7, 2.0), (3, 9.0), (0, 1.0)] {
            d.record(pe, v);
            s.record(pe, v);
        }
        let (fd, fs) = (d.fold(), s.fold());
        assert_eq!(fd.mean().to_bits(), fs.mean().to_bits());
        assert_eq!(fd.count(), fs.count());
        assert_eq!(s.present().len(), 3);
        assert_eq!(d.present().len(), 10);
    }

    #[test]
    fn channel_state_survives_sparse_roundtrip() {
        let mut t = ChannelTable::new(10, true);
        t.get_mut(ChannelId(1)).offer(
            crate::message::Flight {
                from: oracle_topo::PeId(0),
                dest: crate::message::FlightDest::Broadcast,
                piggyback_load: None,
                packet: crate::message::Packet::LoadUpdate { load: 3 },
            },
            SimTime(0),
        );
        assert!(t.get(ChannelId(1)).is_busy());
        assert!(!t.get(ChannelId(2)).is_busy());
    }
}
