//! Runtime invariant auditor.
//!
//! An opt-in consistency check (`MachineConfig::audit_every`) that
//! re-derives, from first principles, the identities the simulator's O(1)
//! incremental counters are supposed to maintain, and aborts the run with
//! [`SimError::InvariantViolation`] on any mismatch. The auditor is a pure
//! read of machine state between events: it schedules nothing, draws no
//! random numbers, and allocates only on failure, so an audited run is
//! bit-identical to an unaudited one.
//!
//! Invariant catalog (the `check` tag of the violation):
//!
//! - `event-time-monotonicity` — simulated time never decreases between
//!   audit points.
//! - `queue-accounting` — each PE's incrementally maintained
//!   `queued_goals` / `queued_responses` counters equal a fresh count of
//!   the goals and responses actually sitting in its queue (which also
//!   pins the load metric, a pure function of those counters, to the
//!   ground truth); a crashed PE holds no work at all.
//! - `load-metric-agreement` — [`Core::load`] equals the metric recomputed
//!   from the recounted queue and the waiting-task set under the
//!   configured `count_responses_in_load` / `future_commitment_weight`.
//! - `channel-accounting` — a channel's busy-time tracker claims busy
//!   exactly when a transfer is in flight, and a non-empty backlog implies
//!   the channel is either occupied or held down by a fault window.
//! - `task-conservation` — every goal ever created is accounted for:
//!   started executing, queued on a PE, inside a message-handling work
//!   item, on the wire (in flight or backlogged), privately held by the
//!   strategy ([`Strategy::goals_held`]), or declared lost to faults.
//!   Fault-free runs must balance exactly; runs with losses must satisfy
//!   `accounted <= created <= accounted + lost` (the crash sweep counts a
//!   lost *waiting task* as a lost goal even though that goal already
//!   executed, so the loss side may over-count but never under-count).
//! - `arrival-conservation` — in open-traffic runs, every arrival is in
//!   exactly one bucket: completed, shed at admission, abandoned (deadline
//!   or retry exhaustion), or still in the system (in flight or awaiting a
//!   retry backoff).
//! - `retry-cap` — no tracked request has recorded more re-injection
//!   attempts than the configured retry cap.

use crate::machine::Core;
use crate::message::Packet;
use crate::pe::{Executing, WorkItem};
use crate::strategy::Strategy;
use crate::SimError;

/// One goal riding inside a packet (goals travel strictly unicast).
fn packet_goals(packet: &Packet) -> u64 {
    matches!(packet, Packet::Goal(_)) as u64
}

/// Audit the machine. Called by the run loop between events whenever the
/// processed-event count crosses `MachineConfig::audit_every`.
pub(crate) fn audit(core: &Core, strategy: &dyn Strategy) -> Result<(), SimError> {
    let now = core.now().units();
    let fail = |check: &'static str, digest: String| {
        Err(SimError::InvariantViolation {
            check,
            time: now,
            digest,
        })
    };

    if now < core.last_audit_now {
        return fail(
            "event-time-monotonicity",
            format!("now={now} previous-audit={}", core.last_audit_now),
        );
    }

    let mut queued_goals_total: u64 = 0;
    let mut handle_goals_total: u64 = 0;
    for pe in &core.pes {
        let mut goals: u32 = 0;
        let mut responses: u32 = 0;
        for item in &pe.queue {
            match item {
                WorkItem::Goal(_) => goals += 1,
                WorkItem::Response { .. } => responses += 1,
                WorkItem::Handle { .. } | WorkItem::TimerWork { .. } => {
                    return fail(
                        "queue-accounting",
                        format!("pe={} has balancing work on its user queue", pe.id.0),
                    );
                }
            }
        }
        if goals != pe.queued_goals || responses != pe.queued_responses {
            return fail(
                "queue-accounting",
                format!(
                    "pe={} counters=({},{}) recount=({goals},{responses})",
                    pe.id.0, pe.queued_goals, pe.queued_responses
                ),
            );
        }
        if pe.failed
            && (!pe.queue.is_empty()
                || !pe.sys_queue.is_empty()
                || pe.executing.is_some()
                || !pe.waiting.is_empty())
        {
            return fail(
                "queue-accounting",
                format!(
                    "crashed pe={} still holds work (queue={} sys={} waiting={})",
                    pe.id.0,
                    pe.queue.len(),
                    pe.sys_queue.len(),
                    pe.waiting.len()
                ),
            );
        }
        let metric = pe.load(core.config.count_responses_in_load)
            + core.config.future_commitment_weight * pe.waiting.len() as u32;
        if core.load(pe.id) != metric {
            return fail(
                "load-metric-agreement",
                format!(
                    "pe={} load()={} recomputed={metric}",
                    pe.id.0,
                    core.load(pe.id)
                ),
            );
        }
        queued_goals_total += goals as u64;
        for item in &pe.sys_queue {
            if let WorkItem::Handle { packet, .. } = item {
                handle_goals_total += packet_goals(packet);
            }
        }
        if let Some(Executing::Handle { packet, .. }) = &pe.executing {
            handle_goals_total += packet_goals(packet);
        }
    }

    // Materialized channels only: an untouched sparse slot is pristine
    // (idle, up, empty backlog), which passes every check below and adds
    // nothing to the wire count — exactly like the dense walk over it.
    let mut wire_goals_total: u64 = 0;
    for (idx, ch) in core.channels.present() {
        if ch.busy.is_busy() != ch.in_flight.is_some() {
            return fail(
                "channel-accounting",
                format!(
                    "channel={idx} busy-tracker={} in-flight={}",
                    ch.busy.is_busy(),
                    ch.in_flight.is_some()
                ),
            );
        }
        if !ch.backlog.is_empty() && ch.in_flight.is_none() && !ch.down {
            return fail(
                "channel-accounting",
                format!(
                    "channel={idx} has {} backlogged flights but is idle and up",
                    ch.backlog.len()
                ),
            );
        }
        if let Some(f) = &ch.in_flight {
            wire_goals_total += packet_goals(&f.packet);
        }
        for f in &ch.backlog {
            wire_goals_total += packet_goals(&f.packet);
        }
    }

    let held = strategy.goals_held();
    let lost = core.faults.goals_lost;
    let accounted =
        core.goals_executed + queued_goals_total + handle_goals_total + wire_goals_total + held;
    let digest = || {
        format!(
            "created={} executed={} queued={queued_goals_total} handling={handle_goals_total} \
             wire={wire_goals_total} held={held} lost={lost}",
            core.goals_created, core.goals_executed
        )
    };
    if lost == 0 {
        if accounted != core.goals_created {
            return fail("task-conservation", digest());
        }
    } else if accounted > core.goals_created || core.goals_created > accounted + lost {
        return fail("task-conservation", digest());
    }

    if let Some(open) = core.open.as_deref() {
        let in_system = open.requests_in_system();
        let settled = open.completions_total
            + open.shed_total
            + open.abandoned_deadline
            + open.abandoned_retries;
        if open.arrivals_total != settled + in_system {
            return fail(
                "arrival-conservation",
                format!(
                    "arrivals={} completed={} shed={} abandoned-deadline={} \
                     abandoned-retries={} in-system={in_system}",
                    open.arrivals_total,
                    open.completions_total,
                    open.shed_total,
                    open.abandoned_deadline,
                    open.abandoned_retries
                ),
            );
        }
        let cap = open.retry.map_or(0, |p| p.max);
        for (goal, infl) in open.inflight.iter().chain(open.retry_pending.iter()) {
            if infl.attempts > cap {
                return fail(
                    "retry-cap",
                    format!(
                        "request={} goal={} attempts={} cap={cap}",
                        infl.request, goal.0, infl.attempts
                    ),
                );
            }
        }
    }

    Ok(())
}
