//! Open-system traffic: arrival processes and steady-state measurement.
//!
//! Every workload in the paper is *closed*: one task tree seeded at one PE,
//! measured by completion time. This module adds the *open* regime a
//! production load balancer actually faces — requests keep arriving, each
//! spawning a task subtree, and the question becomes "how much sustained
//! traffic can this machine hold?" (cf. the infinite-process analyses of
//! Berenbrink et al. and the work-stealing simulators of Khatiri et al.).
//!
//! The pieces:
//!
//! * [`ArrivalProcess`] — *when* requests arrive: Poisson, bursty MMPP
//!   on/off, a diurnal (sinusoidal) rate curve, or a replayable trace file.
//! * [`EdgeSet`] — *where* they arrive: all PEs round-robin, the root PE,
//!   or an explicit PE list.
//! * [`ArrivalSpec`] — the `PROCESS[@EDGES]` pair, with a parsable/printable
//!   grammar (`poisson:4.5@all`, `burst:8x0.5x2000x6000`, `trace:arr.txt@0,3`).
//! * [`OpenTraffic`] — the full open-run configuration carried by
//!   [`MachineConfig`](crate::config::MachineConfig): spec + measurement
//!   windows + saturation threshold, plus the overload-protection knobs
//!   ([`RetryPolicy`], [`AdmissionPolicy`], per-request deadlines, and the
//!   per-region circuit breaker).
//! * [`OpenState`] — the runtime side (pub(crate)): the dedicated arrival
//!   RNG stream, in-flight request table, sojourn/queue-length histograms,
//!   the saturation trip wire, and the mutable overload state (token
//!   bucket, pending retries, breaker table, shed/abandon counters).
//!
//! All rates are expressed in **arrivals per 1000 simulated time units** —
//! the same order of magnitude as the cost model's task grain, so `poisson:1`
//! is roughly one request per leaf-task's worth of time.

use std::fmt;
use std::str::FromStr;

use oracle_des::{FastHashMap, LogHistogram, OnlineStats, Rng};
use serde::{Deserialize, Serialize};

use crate::message::GoalId;

/// XOR'd into the run seed for the arrival stream, so open traffic never
/// perturbs the strategy's (or the fault layer's) random sequence.
pub(crate) const ARRIVAL_SEED_SALT: u64 = 0xA881_4A11_F00D_5EED;

/// XOR'd into the run seed for the retry-backoff jitter stream. A
/// dedicated stream keeps retries from perturbing the arrival, fault, or
/// strategy sequences, so enabling retry changes *only* retry timing and
/// results stay identical across `--threads` and queue backends.
pub(crate) const RETRY_SEED_SALT: u64 = 0xBACC_0FF5_7A1E_5EED;

/// Rates are per this many simulated time units.
pub const RATE_UNIT: f64 = 1000.0;

/// When `OpenTraffic::saturation_inflight` is 0, the trip wire is
/// `AUTO_SATURATION_PER_PE * num_pes + AUTO_SATURATION_BASE` in-flight
/// requests: generous enough that transient bursts survive, small enough
/// that a genuinely overloaded cell trips within a few thousand arrivals.
pub(crate) const AUTO_SATURATION_PER_PE: u64 = 32;
pub(crate) const AUTO_SATURATION_BASE: u64 = 256;

/// The stochastic (or replayed) process governing *when* requests arrive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` requests per [`RATE_UNIT`] time units.
    Poisson { rate: f64 },
    /// Bursty MMPP on/off source: Poisson at `hi` during on-phases of
    /// `on_len` units, at `lo` (possibly 0) during off-phases of `off_len`
    /// units, starting in the on-phase at time 0.
    Burst {
        hi: f64,
        lo: f64,
        on_len: u64,
        off_len: u64,
    },
    /// Diurnal rate curve: a sinusoid with the given `peak` rate and
    /// `period`, sampled by thinning. The instantaneous rate is
    /// `peak * (0.55 + 0.45 * sin(2*pi*t/period))`, i.e. it swings between
    /// 10% and 100% of peak over one period.
    Diurnal { peak: f64, period: u64 },
    /// Replay a recorded arrival schedule from a text file (see
    /// [`parse_arrival_trace`] for the format).
    Trace { path: String },
}

/// The PEs at which requests enter the machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeSet {
    /// Round-robin over every PE (the default).
    All,
    /// Everything enters at the configured root PE.
    Root,
    /// Round-robin over an explicit PE list.
    List(Vec<u32>),
}

/// A full arrival specification: process + edge set, with a compact string
/// grammar for the CLI and suite files.
///
/// ```
/// use oracle_model::open::{ArrivalProcess, ArrivalSpec, EdgeSet};
///
/// let spec: ArrivalSpec = "poisson:4.5@root".parse().unwrap();
/// assert_eq!(spec.process, ArrivalProcess::Poisson { rate: 4.5 });
/// assert_eq!(spec.edges, EdgeSet::Root);
/// assert_eq!(spec.to_string(), "poisson:4.5@root");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    pub process: ArrivalProcess,
    pub edges: EdgeSet,
}

/// The valid arrival grammar, quoted by every parse error (satellite
/// requirement: errors must name the offending token *and* the grammar).
pub const ARRIVAL_GRAMMAR: &str = "PROCESS[@EDGES] where PROCESS is poisson:RATE | \
     burst:HIxLOxON_LENxOFF_LEN | diurnal:PEAKxPERIOD | trace:PATH \
     (rates are arrivals per 1000 time units) and EDGES is all | root | \
     a comma-separated PE list, e.g. poisson:4.5@all";

/// Error parsing an [`ArrivalSpec`] (or an arrival trace file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArrivalError(pub String);

impl fmt::Display for ParseArrivalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid arrival spec: {}", self.0)
    }
}

impl std::error::Error for ParseArrivalError {}

fn bad(token: &str, what: &str) -> ParseArrivalError {
    ParseArrivalError(format!("bad {what} {token:?}; expected {ARRIVAL_GRAMMAR}"))
}

fn parse_rate(token: &str, what: &str) -> Result<f64, ParseArrivalError> {
    let v: f64 = token.parse().map_err(|_| bad(token, what))?;
    if !v.is_finite() || v < 0.0 {
        return Err(bad(token, what));
    }
    Ok(v)
}

fn parse_len(token: &str, what: &str) -> Result<u64, ParseArrivalError> {
    let v: u64 = token.parse().map_err(|_| bad(token, what))?;
    if v == 0 {
        return Err(bad(token, what));
    }
    Ok(v)
}

impl FromStr for ArrivalSpec {
    type Err = ParseArrivalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // `@` splits off the edge set; the process part may contain `@`
        // only in a trace path, so split on the *last* `@` unless it
        // parses as part of the path (paths with `@` must quote the edge
        // set explicitly, which keeps the grammar unambiguous).
        let (proc_s, edges) = match s.rsplit_once('@') {
            Some((p, e)) => (p, parse_edges(e)?),
            None => (s, EdgeSet::All),
        };
        let (kind, args) = proc_s
            .split_once(':')
            .ok_or_else(|| bad(proc_s, "arrival process (missing `:`)"))?;
        let process = match kind {
            "poisson" => {
                let rate = parse_rate(args, "poisson rate")?;
                if rate == 0.0 {
                    return Err(bad(args, "poisson rate (must be positive)"));
                }
                ArrivalProcess::Poisson { rate }
            }
            "burst" => {
                let parts: Vec<&str> = args.split('x').collect();
                let [hi, lo, on, off] = parts.as_slice() else {
                    return Err(bad(args, "burst arguments (need HIxLOxON_LENxOFF_LEN)"));
                };
                let hi = parse_rate(hi, "burst hi rate")?;
                if hi == 0.0 {
                    return Err(bad(args, "burst hi rate (must be positive)"));
                }
                ArrivalProcess::Burst {
                    hi,
                    lo: parse_rate(lo, "burst lo rate")?,
                    on_len: parse_len(on, "burst on-phase length")?,
                    off_len: parse_len(off, "burst off-phase length")?,
                }
            }
            "diurnal" => {
                let parts: Vec<&str> = args.split('x').collect();
                let [peak, period] = parts.as_slice() else {
                    return Err(bad(args, "diurnal arguments (need PEAKxPERIOD)"));
                };
                let peak = parse_rate(peak, "diurnal peak rate")?;
                if peak == 0.0 {
                    return Err(bad(args, "diurnal peak rate (must be positive)"));
                }
                ArrivalProcess::Diurnal {
                    peak,
                    period: parse_len(period, "diurnal period")?,
                }
            }
            "trace" => {
                if args.is_empty() {
                    return Err(bad(args, "trace path (must be non-empty)"));
                }
                ArrivalProcess::Trace {
                    path: args.to_string(),
                }
            }
            other => return Err(bad(other, "arrival process kind")),
        };
        Ok(ArrivalSpec { process, edges })
    }
}

fn parse_edges(s: &str) -> Result<EdgeSet, ParseArrivalError> {
    match s {
        "all" => Ok(EdgeSet::All),
        "root" => Ok(EdgeSet::Root),
        "" => Err(bad(s, "edge set (empty after `@`)")),
        list => {
            let pes: Vec<u32> = list
                .split(',')
                .map(|p| p.parse().map_err(|_| bad(p, "edge PE id")))
                .collect::<Result<_, _>>()?;
            Ok(EdgeSet::List(pes))
        }
    }
}

impl fmt::Display for ArrivalSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.process {
            ArrivalProcess::Poisson { rate } => write!(f, "poisson:{rate}")?,
            ArrivalProcess::Burst {
                hi,
                lo,
                on_len,
                off_len,
            } => write!(f, "burst:{hi}x{lo}x{on_len}x{off_len}")?,
            ArrivalProcess::Diurnal { peak, period } => write!(f, "diurnal:{peak}x{period}")?,
            ArrivalProcess::Trace { path } => write!(f, "trace:{path}")?,
        }
        match &self.edges {
            EdgeSet::All => Ok(()),
            EdgeSet::Root => write!(f, "@root"),
            EdgeSet::List(pes) => {
                write!(f, "@")?;
                for (i, pe) in pes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{pe}")?;
                }
                Ok(())
            }
        }
    }
}

/// Error parsing a [`RetryPolicy`] or [`AdmissionPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOverloadError(pub String);

impl fmt::Display for ParseOverloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid overload spec: {}", self.0)
    }
}

impl std::error::Error for ParseOverloadError {}

/// The retry grammar, quoted by every [`RetryPolicy`] parse error.
pub const RETRY_GRAMMAR: &str = "MAXxBASE (e.g. 3x200): up to MAX re-injections per \
     request, exponential backoff from BASE time units with +-50% jitter";

/// The admission grammar, quoted by every [`AdmissionPolicy`] parse error.
pub const ADMISSION_GRAMMAR: &str = "queue:MAX | util:FRACTION | bucket:RATExBURST \
     (RATE tokens per 1000 time units, burst capacity BURST), e.g. queue:64, \
     util:0.9, bucket:12x32";

/// Retry policy for requests lost to crashes or link faults: the lost
/// request is re-injected at the next edge PE after an exponential backoff
/// with jitter, up to `max` attempts; exhausting the budget abandons the
/// request (a dead loss, counted in the abandonment rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum re-injections per request.
    pub max: u32,
    /// Backoff before the first retry; doubles per attempt, scaled by a
    /// jitter factor drawn uniformly from [0.5, 1.5) off the dedicated
    /// retry RNG stream.
    pub base: u64,
}

impl FromStr for RetryPolicy {
    type Err = ParseOverloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |tok: &str, what: &str| {
            ParseOverloadError(format!("bad {what} {tok:?}; expected {RETRY_GRAMMAR}"))
        };
        let Some((max, base)) = s.split_once('x') else {
            return Err(bad(s, "retry policy (missing `x`)"));
        };
        let max: u32 = max.parse().map_err(|_| bad(max, "retry max"))?;
        if max == 0 {
            return Err(bad(s, "retry max (must be positive)"));
        }
        let base: u64 = base.parse().map_err(|_| bad(base, "retry base backoff"))?;
        if base == 0 {
            return Err(bad(s, "retry base backoff (must be positive)"));
        }
        Ok(RetryPolicy { max, base })
    }
}

impl fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.max, self.base)
    }
}

/// Edge admission-control policy: arrivals that fail the check are shed at
/// injection (refused before any goal is created) instead of melting the
/// machine down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Shed when the entry PE already holds at least `max` queued goals.
    QueueDepth { max: u64 },
    /// Shed when at least this fraction of PEs are mid-execution.
    Utilization { threshold: f64 },
    /// Token bucket: capacity `burst` tokens, refilled at `rate` per
    /// [`RATE_UNIT`]; an arrival that finds no whole token is shed.
    TokenBucket { rate: f64, burst: u64 },
}

impl FromStr for AdmissionPolicy {
    type Err = ParseOverloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |tok: &str, what: &str| {
            ParseOverloadError(format!("bad {what} {tok:?}; expected {ADMISSION_GRAMMAR}"))
        };
        let Some((kind, args)) = s.split_once(':') else {
            return Err(bad(s, "admission policy (missing `:`)"));
        };
        match kind {
            "queue" => {
                let max: u64 = args.parse().map_err(|_| bad(args, "queue depth"))?;
                if max == 0 {
                    return Err(bad(args, "queue depth (must be positive)"));
                }
                Ok(AdmissionPolicy::QueueDepth { max })
            }
            "util" => {
                let threshold: f64 = args
                    .parse()
                    .map_err(|_| bad(args, "utilization threshold"))?;
                if !threshold.is_finite() || threshold <= 0.0 || threshold > 1.0 {
                    return Err(bad(args, "utilization threshold (must be in (0, 1])"));
                }
                Ok(AdmissionPolicy::Utilization { threshold })
            }
            "bucket" => {
                let Some((rate, burst)) = args.split_once('x') else {
                    return Err(bad(args, "token bucket (need RATExBURST)"));
                };
                let rate: f64 = rate.parse().map_err(|_| bad(rate, "token-bucket rate"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(bad(args, "token-bucket rate (must be positive)"));
                }
                let burst: u64 = burst
                    .parse()
                    .map_err(|_| bad(burst, "token-bucket burst"))?;
                if burst == 0 {
                    return Err(bad(args, "token-bucket burst (must be positive)"));
                }
                Ok(AdmissionPolicy::TokenBucket { rate, burst })
            }
            other => Err(bad(other, "admission policy kind")),
        }
    }
}

impl fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionPolicy::QueueDepth { max } => write!(f, "queue:{max}"),
            AdmissionPolicy::Utilization { threshold } => write!(f, "util:{threshold}"),
            AdmissionPolicy::TokenBucket { rate, burst } => write!(f, "bucket:{rate}x{burst}"),
        }
    }
}

/// Open-traffic configuration, carried on
/// [`MachineConfig::open`](crate::config::MachineConfig::open). `None`
/// there means the classic closed run (one root goal, run to completion).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenTraffic {
    /// When and where requests arrive.
    pub arrivals: ArrivalSpec,
    /// Simulated end of the run: arrivals stop at this time and the run
    /// ends at the first event at or past it.
    pub duration: u64,
    /// Completions before this time are excluded from the steady-state
    /// statistics (the warmup window).
    pub warmup: u64,
    /// Saturation trip wire: the run ends with a `Saturated` outcome as
    /// soon as this many requests are in flight at once. 0 selects an
    /// automatic threshold of `32 * num_pes + 256`.
    pub saturation_inflight: u64,
    /// Per-request deadline: a request whose sojourn exceeds this many
    /// time units is a dead loss (abandoned), not a success — the client
    /// already walked away. The deadline clock starts at the *original*
    /// arrival instant and is never reset by retries. `None` disables.
    #[serde(default)]
    pub deadline: Option<u64>,
    /// Retry lost requests with exponential backoff + jitter.
    /// `None` disables.
    #[serde(default)]
    pub retry: Option<RetryPolicy>,
    /// Edge admission control: shed arrivals at injection. `None` admits
    /// everything.
    #[serde(default)]
    pub admission: Option<AdmissionPolicy>,
    /// Per-region circuit breaker: once a neighbour crashes or its link
    /// drops, stop routing new subtrees toward it; after the link
    /// recovers, keep the breaker half-open for this many time units
    /// before trusting the region again. `None` disables.
    #[serde(default)]
    pub breaker: Option<u64>,
}

impl OpenTraffic {
    /// An open run with the given arrivals and duration, default warmup
    /// (one tenth of the duration), automatic saturation threshold, and
    /// every overload-protection knob off.
    pub fn new(arrivals: ArrivalSpec, duration: u64) -> Self {
        OpenTraffic {
            arrivals,
            duration,
            warmup: duration / 10,
            saturation_inflight: 0,
            deadline: None,
            retry: None,
            admission: None,
            breaker: None,
        }
    }

    /// Is any overload-protection mechanism configured?
    pub fn protected(&self) -> bool {
        self.deadline.is_some()
            || self.retry.is_some()
            || self.admission.is_some()
            || self.breaker.is_some()
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration == 0 {
            return Err("open traffic: duration must be positive".into());
        }
        if self.warmup >= self.duration {
            return Err(format!(
                "open traffic: warmup ({}) must be shorter than duration ({})",
                self.warmup, self.duration
            ));
        }
        if let EdgeSet::List(pes) = &self.arrivals.edges {
            if pes.is_empty() {
                return Err("open traffic: edge PE list must be non-empty".into());
            }
        }
        if self.deadline == Some(0) {
            return Err("open traffic: deadline must be positive".into());
        }
        if let Some(r) = &self.retry {
            if r.max == 0 || r.base == 0 {
                return Err("open traffic: retry max and base must be positive".into());
            }
        }
        if let Some(a) = &self.admission {
            match a {
                AdmissionPolicy::QueueDepth { max } if *max == 0 => {
                    return Err("open traffic: admission queue depth must be positive".into());
                }
                AdmissionPolicy::Utilization { threshold }
                    if !threshold.is_finite() || *threshold <= 0.0 || *threshold > 1.0 =>
                {
                    return Err(
                        "open traffic: admission utilization threshold must be in (0, 1]".into(),
                    );
                }
                AdmissionPolicy::TokenBucket { rate, burst }
                    if !rate.is_finite() || *rate <= 0.0 || *burst == 0 =>
                {
                    return Err("open traffic: token-bucket rate and burst must be positive".into());
                }
                _ => {}
            }
        }
        if self.breaker == Some(0) {
            return Err("open traffic: breaker cooldown must be positive".into());
        }
        Ok(())
    }
}

/// One entry of a replayable arrival trace: the arrival instant and an
/// optional explicit entry PE (falling back to the spec's edge set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceArrival {
    pub at: u64,
    pub pe: Option<u32>,
}

/// Header line every arrival trace file must start with.
pub const ARRIVAL_TRACE_HEADER: &str = "oracle-arrivals-v1";

/// Parse (and validate) the arrival-trace text format:
///
/// ```text
/// oracle-arrivals-v1
/// # comment lines and blank lines are ignored
/// 120          # a request arrives at t=120, PE chosen by the edge set
/// 340 7        # a request arrives at t=340 at PE 7
/// ```
///
/// The first non-blank, non-comment line must be the
/// [`ARRIVAL_TRACE_HEADER`]; times must be non-decreasing. Errors name the
/// line number and the offending token.
pub fn parse_arrival_trace(text: &str) -> Result<Vec<TraceArrival>, ParseArrivalError> {
    let mut entries = Vec::new();
    let mut saw_header = false;
    let mut last_at = 0u64;
    for (i, raw) in text.lines().enumerate() {
        let line = match raw.split_once('#') {
            Some((body, _)) => body.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        let lineno = i + 1;
        if !saw_header {
            if line != ARRIVAL_TRACE_HEADER {
                return Err(ParseArrivalError(format!(
                    "arrival trace line {lineno}: expected header {ARRIVAL_TRACE_HEADER:?}, \
                     found {line:?}"
                )));
            }
            saw_header = true;
            continue;
        }
        let mut fields = line.split_whitespace();
        let at_tok = fields.next().expect("non-empty line has a first field");
        let at: u64 = at_tok.parse().map_err(|_| {
            ParseArrivalError(format!(
                "arrival trace line {lineno}: bad arrival time {at_tok:?} (expected \
                 a non-negative integer)"
            ))
        })?;
        let pe = match fields.next() {
            Some(tok) => Some(tok.parse().map_err(|_| {
                ParseArrivalError(format!(
                    "arrival trace line {lineno}: bad PE id {tok:?} (expected a \
                     non-negative integer)"
                ))
            })?),
            None => None,
        };
        if let Some(extra) = fields.next() {
            return Err(ParseArrivalError(format!(
                "arrival trace line {lineno}: unexpected token {extra:?} (entries are \
                 `TIME [PE]`)"
            )));
        }
        if at < last_at {
            return Err(ParseArrivalError(format!(
                "arrival trace line {lineno}: time {at} goes backwards (previous entry \
                 was {last_at}; times must be non-decreasing)"
            )));
        }
        last_at = at;
        entries.push(TraceArrival { at, pe });
    }
    if !saw_header {
        return Err(ParseArrivalError(format!(
            "arrival trace: missing {ARRIVAL_TRACE_HEADER:?} header line"
        )));
    }
    Ok(entries)
}

/// The mutable part of an arrival process mid-run (the immutable
/// parameters stay on the [`ArrivalProcess`] in the config).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ProcessState {
    Poisson {
        rate: f64,
    },
    Burst {
        hi: f64,
        lo: f64,
        on_len: u64,
        off_len: u64,
        /// Currently in the on-phase?
        on: bool,
        /// Absolute time the current phase ends.
        phase_end: u64,
    },
    Diurnal {
        peak: f64,
        period: u64,
    },
    Trace {
        entries: Vec<TraceArrival>,
        /// Next entry to replay.
        idx: usize,
    },
}

/// One in-flight request: its external id, arrival instant, and how many
/// times the retry layer has re-injected it (0 for the first attempt; the
/// deadline clock always runs from `arrived`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Inflight {
    pub(crate) request: u64,
    pub(crate) arrived: u64,
    pub(crate) attempts: u32,
}

/// Runtime state of an open-traffic run. Boxed on the `Core` so closed
/// runs pay one null check, and fully snapshot-encoded (minus the
/// immutable bits, which are rebuilt from the config on restore).
#[derive(Debug)]
pub(crate) struct OpenState {
    /// Dedicated RNG stream for interarrival draws.
    pub(crate) rng: Rng,
    pub(crate) process: ProcessState,
    /// Resolved entry PEs (never empty).
    pub(crate) edges: Vec<u32>,
    /// Round-robin cursor into `edges`.
    pub(crate) edge_idx: u32,
    pub(crate) duration: u64,
    pub(crate) warmup: u64,
    /// Effective saturation threshold (auto already resolved).
    pub(crate) threshold: u64,
    /// Next external request id.
    pub(crate) next_request: u64,
    /// Root goal id -> in-flight request.
    pub(crate) inflight: FastHashMap<GoalId, Inflight>,
    pub(crate) arrivals_total: u64,
    pub(crate) completions_total: u64,
    /// Sojourn times of requests completing inside the measurement window.
    pub(crate) sojourn: LogHistogram,
    pub(crate) sojourn_stats: OnlineStats,
    /// `Some((time, inflight))` once the trip wire fired.
    pub(crate) saturated: Option<(u64, u64)>,
    /// Time-weighted queue-length distribution: current total queued
    /// goals, the time of the last transition, and the histogram weighted
    /// by time spent at each length (inside the measurement window).
    pub(crate) qlen_cur: u64,
    pub(crate) qlen_last: u64,
    pub(crate) qlen_hist: LogHistogram,
    // --- overload protection (immutable knobs copied from the config) ---
    pub(crate) deadline: Option<u64>,
    pub(crate) retry: Option<RetryPolicy>,
    pub(crate) admission: Option<AdmissionPolicy>,
    pub(crate) breaker_cooldown: Option<u64>,
    // --- overload protection (mutable runtime state) ---
    /// Dedicated RNG stream for retry-backoff jitter.
    pub(crate) retry_rng: Rng,
    /// Token-bucket level (whole + fractional tokens) and the instant of
    /// the last refill.
    pub(crate) tokens: f64,
    pub(crate) tokens_last: u64,
    /// Requests between attempts: root goal lost, re-injection scheduled.
    /// Keyed by the *dead* root goal id the pending `Retry` event carries.
    pub(crate) retry_pending: FastHashMap<GoalId, Inflight>,
    /// Circuit-breaker table: `(pe, neighbour) -> blocked-until`.
    /// `u64::MAX` while the fault persists; a finite instant is the
    /// half-open window after recovery. Entries are dropped lazily once
    /// the window passes.
    pub(crate) breaker: FastHashMap<(u32, u32), u64>,
    // --- overload counters ---
    /// Arrivals refused at injection (admission control, or no live edge).
    pub(crate) shed_total: u64,
    /// Requests whose sojourn exceeded the deadline (dead losses).
    pub(crate) abandoned_deadline: u64,
    /// Deadline abandonments inside the measurement window (the carried —
    /// but useless — part of throughput).
    pub(crate) abandoned_deadline_measured: u64,
    /// Requests dropped after exhausting the retry budget.
    pub(crate) abandoned_retries: u64,
    /// Re-injections performed.
    pub(crate) retries_total: u64,
    /// Breaker transitions from closed to open.
    pub(crate) breaker_opens: u64,
}

impl OpenState {
    /// Build the runtime state for `open`, resolving edges against the
    /// topology and loading any arrival trace file.
    pub(crate) fn build(
        open: &OpenTraffic,
        seed: u64,
        num_pes: usize,
        root_pe: u32,
    ) -> Result<OpenState, String> {
        open.validate()?;
        let edges = match &open.arrivals.edges {
            EdgeSet::All => (0..num_pes as u32).collect(),
            EdgeSet::Root => vec![root_pe],
            EdgeSet::List(pes) => {
                for &pe in pes {
                    if pe as usize >= num_pes {
                        return Err(format!(
                            "open traffic: edge PE {pe} out of range (topology has \
                             {num_pes} PEs)"
                        ));
                    }
                }
                pes.clone()
            }
        };
        let process = match &open.arrivals.process {
            ArrivalProcess::Poisson { rate } => ProcessState::Poisson { rate: *rate },
            ArrivalProcess::Burst {
                hi,
                lo,
                on_len,
                off_len,
            } => ProcessState::Burst {
                hi: *hi,
                lo: *lo,
                on_len: *on_len,
                off_len: *off_len,
                on: true,
                phase_end: *on_len,
            },
            ArrivalProcess::Diurnal { peak, period } => ProcessState::Diurnal {
                peak: *peak,
                period: *period,
            },
            ArrivalProcess::Trace { path } => {
                let text = std::fs::read_to_string(path).map_err(|e| {
                    format!("open traffic: cannot read arrival trace {path:?}: {e}")
                })?;
                let entries = parse_arrival_trace(&text).map_err(|e| e.0)?;
                for e in &entries {
                    if let Some(pe) = e.pe {
                        if pe as usize >= num_pes {
                            return Err(format!(
                                "open traffic: arrival trace names PE {pe}, out of \
                                 range (topology has {num_pes} PEs)"
                            ));
                        }
                    }
                }
                ProcessState::Trace { entries, idx: 0 }
            }
        };
        let threshold = if open.saturation_inflight > 0 {
            open.saturation_inflight
        } else {
            AUTO_SATURATION_PER_PE * num_pes as u64 + AUTO_SATURATION_BASE
        };
        let tokens = match &open.admission {
            Some(AdmissionPolicy::TokenBucket { burst, .. }) => *burst as f64,
            _ => 0.0,
        };
        Ok(OpenState {
            rng: Rng::seed_from_u64(seed ^ ARRIVAL_SEED_SALT),
            process,
            edges,
            edge_idx: 0,
            duration: open.duration,
            warmup: open.warmup,
            threshold,
            next_request: 0,
            inflight: FastHashMap::default(),
            arrivals_total: 0,
            completions_total: 0,
            sojourn: LogHistogram::new(),
            sojourn_stats: OnlineStats::new(),
            saturated: None,
            qlen_cur: 0,
            qlen_last: 0,
            qlen_hist: LogHistogram::new(),
            deadline: open.deadline,
            retry: open.retry,
            admission: open.admission,
            breaker_cooldown: open.breaker,
            retry_rng: Rng::seed_from_u64(seed ^ RETRY_SEED_SALT),
            tokens,
            tokens_last: 0,
            retry_pending: FastHashMap::default(),
            breaker: FastHashMap::default(),
            shed_total: 0,
            abandoned_deadline: 0,
            abandoned_deadline_measured: 0,
            abandoned_retries: 0,
            retries_total: 0,
            breaker_opens: 0,
        })
    }

    /// Exponential interarrival draw at `rate` per [`RATE_UNIT`], rounded
    /// up to at least one time unit.
    fn exp_draw(rng: &mut Rng, rate: f64) -> u64 {
        let u = rng.f64();
        let dt = -(1.0 - u).ln() * (RATE_UNIT / rate);
        (dt.ceil() as u64).max(1)
    }

    /// The next arrival instant strictly after `from`, or `None` once the
    /// process is exhausted or past `duration`. For trace replay this
    /// peeks (the cursor advances in [`OpenState::trace_pe_override`] when
    /// the arrival fires), so repeated calls without a fire are idempotent.
    pub(crate) fn next_arrival(&mut self, from: u64) -> Option<u64> {
        let at = match &mut self.process {
            ProcessState::Poisson { rate } => {
                let rate = *rate;
                from + Self::exp_draw(&mut self.rng, rate)
            }
            ProcessState::Burst {
                hi,
                lo,
                on_len,
                off_len,
                on,
                phase_end,
            } => {
                // Memorylessness makes the phase boundary exact: a
                // candidate past the boundary is discarded, the clock
                // jumps to the boundary, and the draw repeats at the new
                // phase's rate.
                let (hi, lo, on_len, off_len) = (*hi, *lo, *on_len, *off_len);
                let mut t = from;
                loop {
                    let rate = if *on { hi } else { lo };
                    let cand = if rate > 0.0 {
                        t.saturating_add(Self::exp_draw(&mut self.rng, rate))
                    } else {
                        u64::MAX
                    };
                    if cand < *phase_end {
                        break cand;
                    }
                    t = *phase_end;
                    *on = !*on;
                    *phase_end = phase_end.saturating_add(if *on { on_len } else { off_len });
                    if t >= self.duration {
                        return None; // phase-hops past the horizon
                    }
                }
            }
            ProcessState::Diurnal { peak, period } => {
                // Thinning against the peak rate: candidate arrivals at
                // `peak`, each kept with probability rate(t)/peak. The
                // instantaneous rate never drops below 10% of peak, so
                // the rejection loop terminates quickly.
                let (peak, period) = (*peak, *period);
                let mut t = from;
                loop {
                    t = t.saturating_add(Self::exp_draw(&mut self.rng, peak));
                    if t >= self.duration {
                        return None;
                    }
                    let phase = 2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64;
                    let frac = 0.55 + 0.45 * phase.sin();
                    if self.rng.f64() < frac {
                        break t;
                    }
                }
            }
            ProcessState::Trace { entries, idx } => {
                let e = entries.get(*idx)?;
                e.at
            }
        };
        (at < self.duration).then_some(at)
    }

    /// For trace replay: the explicit PE of the entry that just fired (and
    /// advance the cursor). `None` for stochastic processes or entries
    /// without a PE column.
    pub(crate) fn trace_pe_override(&mut self) -> Option<u32> {
        if let ProcessState::Trace { entries, idx } = &mut self.process {
            let pe = entries.get(*idx).and_then(|e| e.pe);
            *idx += 1;
            pe
        } else {
            None
        }
    }

    /// Account a queued-goal transition for the time-weighted queue-length
    /// distribution. `delta` is the change in total queued goals.
    pub(crate) fn note_qlen(&mut self, now: u64, delta: i64) {
        self.flush_qlen(now);
        if delta >= 0 {
            self.qlen_cur += delta as u64;
        } else {
            self.qlen_cur = self.qlen_cur.saturating_sub((-delta) as u64);
        }
    }

    /// Fold the span since the last transition into the histogram (clipped
    /// to the measurement window) and move the cursor to `now`.
    pub(crate) fn flush_qlen(&mut self, now: u64) {
        let start = self.qlen_last.max(self.warmup);
        let end = now.min(self.duration);
        if end > start {
            self.qlen_hist.record_n(self.qlen_cur, end - start);
        }
        self.qlen_last = now;
    }

    /// Requests currently in the system: routed subtrees plus requests
    /// waiting out a retry backoff. The saturation trip wire and the
    /// conservation identity both count this.
    pub(crate) fn requests_in_system(&self) -> u64 {
        self.inflight.len() as u64 + self.retry_pending.len() as u64
    }

    /// Total dead losses: deadline misses plus retry exhaustions.
    pub(crate) fn abandoned_total(&self) -> u64 {
        self.abandoned_deadline + self.abandoned_retries
    }

    /// Token-bucket admission check: refill by elapsed time, then try to
    /// take one whole token. Pure state machine — no RNG draws.
    pub(crate) fn bucket_admit(&mut self, now: u64, rate: f64, burst: u64) -> bool {
        let elapsed = now.saturating_sub(self.tokens_last);
        self.tokens = (self.tokens + elapsed as f64 * rate / RATE_UNIT).min(burst as f64);
        self.tokens_last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Backoff before re-injection attempt number `attempts + 1`:
    /// exponential in the attempt count (capped at 2^10), scaled by a
    /// jitter factor uniform in [0.5, 1.5) from the dedicated retry
    /// stream, and at least one time unit.
    pub(crate) fn retry_backoff(&mut self, base: u64, attempts: u32) -> u64 {
        let window = base.saturating_mul(1u64 << attempts.min(10));
        let jitter = 0.5 + self.retry_rng.f64();
        ((window as f64 * jitter).ceil() as u64).max(1)
    }

    /// Is routing from `pe` toward `nbr` currently blocked by the breaker?
    pub(crate) fn breaker_blocked(&self, now: u64, pe: u32, nbr: u32) -> bool {
        self.breaker
            .get(&(pe, nbr))
            .is_some_and(|&until| now < until)
    }

    /// Open the breaker from `pe` toward `nbr` (the neighbourhood crashed
    /// or its link dropped). Counts a transition only when the breaker was
    /// not already open.
    pub(crate) fn breaker_open(&mut self, pe: u32, nbr: u32) {
        if self.breaker.insert((pe, nbr), u64::MAX) != Some(u64::MAX) {
            self.breaker_opens += 1;
        }
    }

    /// The fault toward `nbr` recovered: move the breaker to half-open —
    /// still blocked for the cooldown window, then trusted again (the
    /// entry is dropped lazily by [`OpenState::breaker_blocked`] readers
    /// at snapshot-stable times; expiry is purely time-based).
    pub(crate) fn breaker_recover(&mut self, now: u64, pe: u32, nbr: u32) {
        let cooldown = self.breaker_cooldown.unwrap_or(0);
        if self.breaker.contains_key(&(pe, nbr)) {
            self.breaker.insert((pe, nbr), now.saturating_add(cooldown));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_display() {
        let specs = [
            "poisson:4.5",
            "poisson:2@root",
            "burst:8x0.5x2000x6000",
            "burst:8x0x2000x6000@3,7,11",
            "diurnal:6x20000",
            "trace:suites/arrivals.txt@0",
        ];
        for s in specs {
            let spec: ArrivalSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
            let again: ArrivalSpec = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
    }

    #[test]
    fn parse_errors_name_token_and_grammar() {
        let cases = [
            ("poisson", "poisson"),     // missing `:`
            ("poisson:abc", "\"abc\""), // bad rate token
            ("poisson:0", "\"0\""),     // zero rate
            ("burst:1x2x3", "1x2x3"),   // wrong arity
            ("burst:1x2x0x5", "\"0\""), // zero phase length
            ("nope:3", "\"nope\""),     // unknown kind
            ("poisson:1@", "edge set"), // empty edge set
            ("poisson:1@zz", "\"zz\""), // bad PE id
        ];
        for (input, needle) in cases {
            let err = input.parse::<ArrivalSpec>().unwrap_err();
            assert!(
                err.0.contains(needle),
                "{input:?}: error {:?} does not name {needle:?}",
                err.0
            );
            assert!(
                err.0.contains("poisson:RATE"),
                "{input:?}: error {:?} does not quote the grammar",
                err.0
            );
        }
    }

    #[test]
    fn trace_format_parses_and_validates() {
        let good = "# demo\noracle-arrivals-v1\n10\n20 3 # at PE 3\n\n20\n";
        let entries = parse_arrival_trace(good).unwrap();
        assert_eq!(
            entries,
            vec![
                TraceArrival { at: 10, pe: None },
                TraceArrival {
                    at: 20,
                    pe: Some(3)
                },
                TraceArrival { at: 20, pe: None },
            ]
        );

        let cases = [
            ("10\n20\n", "header"),
            ("oracle-arrivals-v1\nxyz\n", "line 2"),
            ("oracle-arrivals-v1\n10 zz\n", "\"zz\""),
            ("oracle-arrivals-v1\n10 3 4\n", "\"4\""),
            ("oracle-arrivals-v1\n30\n10\n", "backwards"),
        ];
        for (input, needle) in cases {
            let err = parse_arrival_trace(input).unwrap_err();
            assert!(
                err.0.contains(needle),
                "{input:?}: error {:?} does not name {needle:?}",
                err.0
            );
        }
    }

    #[test]
    fn open_traffic_validates_windows() {
        let spec: ArrivalSpec = "poisson:2".parse().unwrap();
        let ok = OpenTraffic::new(spec, 10_000);
        assert_eq!(ok.warmup, 1000);
        ok.validate().unwrap();
        let bad = OpenTraffic {
            warmup: 10_000,
            ..ok.clone()
        };
        assert!(bad.validate().unwrap_err().contains("warmup"));
        let bad = OpenTraffic {
            duration: 0,
            warmup: 0,
            ..ok
        };
        assert!(bad.validate().unwrap_err().contains("duration"));
    }

    #[test]
    fn poisson_interarrivals_are_deterministic_and_plausible() {
        let spec: ArrivalSpec = "poisson:10".parse().unwrap();
        let open = OpenTraffic::new(spec, 1_000_000);
        let mut a = OpenState::build(&open, 42, 4, 0).unwrap();
        let mut b = OpenState::build(&open, 42, 4, 0).unwrap();
        let mut t = 0;
        let mut n = 0u64;
        while let Some(next) = a.next_arrival(t) {
            assert_eq!(b.next_arrival(t), Some(next), "streams diverge at {t}");
            assert!(next > t);
            t = next;
            n += 1;
        }
        // ~10 per 1000 units over 1M units => ~10_000 arrivals.
        assert!((8_000..12_000).contains(&n), "{n} arrivals");
    }

    #[test]
    fn burst_respects_phases() {
        // hi=20/k during [0,1000), lo=0 during [1000,2000), repeating.
        let spec: ArrivalSpec = "burst:20x0x1000x1000".parse().unwrap();
        let open = OpenTraffic::new(spec, 100_000);
        let mut st = OpenState::build(&open, 7, 4, 0).unwrap();
        let mut t = 0;
        let mut in_off = 0u64;
        let mut total = 0u64;
        while let Some(next) = st.next_arrival(t) {
            if (next / 1000) % 2 == 1 {
                in_off += 1;
            }
            total += 1;
            t = next;
        }
        assert_eq!(in_off, 0, "arrivals fired inside the off-phase");
        assert!(total > 500, "only {total} arrivals");
    }

    #[test]
    fn trace_replay_returns_exact_schedule() {
        let dir = std::env::temp_dir().join(format!(
            "oracle-open-trace-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("arr.txt");
        std::fs::write(&path, "oracle-arrivals-v1\n5\n9 1\n14\n").unwrap();
        let spec: ArrivalSpec = format!("trace:{}", path.display()).parse().unwrap();
        let open = OpenTraffic::new(spec, 12); // duration cuts off the 14
        let mut st = OpenState::build(&open, 1, 2, 0).unwrap();
        assert_eq!(st.next_arrival(0), Some(5));
        assert_eq!(st.trace_pe_override(), None);
        assert_eq!(st.next_arrival(5), Some(9));
        assert_eq!(st.trace_pe_override(), Some(1));
        assert_eq!(st.next_arrival(9), None); // 14 >= duration
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_and_admission_specs_round_trip() {
        for s in ["3x200", "1x1", "10x5000"] {
            let p: RetryPolicy = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        for s in ["queue:64", "util:0.9", "bucket:12x32", "bucket:4.5x8"] {
            let a: AdmissionPolicy = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
            let again: AdmissionPolicy = a.to_string().parse().unwrap();
            assert_eq!(again, a);
        }
    }

    #[test]
    fn retry_and_admission_parse_errors_quote_grammar() {
        for s in ["3", "0x200", "3x0", "zzx200", "3xzz"] {
            let err = s.parse::<RetryPolicy>().unwrap_err();
            assert!(err.0.contains("MAXxBASE"), "{s:?}: {}", err.0);
        }
        for s in [
            "queue",
            "queue:0",
            "queue:zz",
            "util:0",
            "util:1.5",
            "util:nan",
            "bucket:5",
            "bucket:0x5",
            "bucket:5x0",
            "nope:3",
        ] {
            let err = s.parse::<AdmissionPolicy>().unwrap_err();
            assert!(err.0.contains("queue:MAX"), "{s:?}: {}", err.0);
        }
    }

    #[test]
    fn overload_knobs_validate() {
        let spec: ArrivalSpec = "poisson:2".parse().unwrap();
        let base = OpenTraffic::new(spec, 10_000);
        assert!(!base.protected());
        let mut ok = base.clone();
        ok.deadline = Some(2_000);
        ok.retry = Some("3x200".parse().unwrap());
        ok.admission = Some("bucket:8x16".parse().unwrap());
        ok.breaker = Some(400);
        assert!(ok.protected());
        ok.validate().unwrap();

        let bad = OpenTraffic {
            deadline: Some(0),
            ..base.clone()
        };
        assert!(bad.validate().unwrap_err().contains("deadline"));
        let bad = OpenTraffic {
            breaker: Some(0),
            ..base.clone()
        };
        assert!(bad.validate().unwrap_err().contains("breaker"));
        let bad = OpenTraffic {
            retry: Some(RetryPolicy { max: 0, base: 10 }),
            ..base.clone()
        };
        assert!(bad.validate().unwrap_err().contains("retry"));
        let bad = OpenTraffic {
            admission: Some(AdmissionPolicy::Utilization { threshold: 2.0 }),
            ..base
        };
        assert!(bad.validate().unwrap_err().contains("utilization"));
    }

    fn overload_state(admission: &str) -> OpenState {
        let spec: ArrivalSpec = "poisson:2".parse().unwrap();
        let mut open = OpenTraffic::new(spec, 10_000);
        open.retry = Some("3x200".parse().unwrap());
        open.admission = Some(admission.parse().unwrap());
        open.breaker = Some(500);
        OpenState::build(&open, 9, 4, 0).unwrap()
    }

    #[test]
    fn token_bucket_refills_and_sheds() {
        let mut st = overload_state("bucket:10x2");
        // Starts full: two tokens, third arrival at t=0 is shed.
        assert!(st.bucket_admit(0, 10.0, 2));
        assert!(st.bucket_admit(0, 10.0, 2));
        assert!(!st.bucket_admit(0, 10.0, 2));
        // 10 per 1000 units -> one token per 100 units.
        assert!(!st.bucket_admit(50, 10.0, 2));
        assert!(st.bucket_admit(150, 10.0, 2));
        // Refill caps at burst.
        assert!(st.bucket_admit(100_000, 10.0, 2));
        assert!(st.bucket_admit(100_000, 10.0, 2));
        assert!(!st.bucket_admit(100_000, 10.0, 2));
    }

    #[test]
    fn retry_backoff_is_jittered_exponential_and_deterministic() {
        let mut a = overload_state("queue:64");
        let mut b = overload_state("queue:64");
        for attempts in 0..6u32 {
            let base = 200u64;
            let d = a.retry_backoff(base, attempts);
            assert_eq!(d, b.retry_backoff(base, attempts), "streams diverged");
            let window = base * (1 << attempts);
            let lo = window / 2;
            let hi = window + window / 2 + 1;
            assert!(
                (lo..=hi).contains(&d),
                "attempt {attempts}: {d} not in [{lo},{hi}]"
            );
        }
        // The cap keeps the shift in range even for absurd attempt counts.
        assert!(a.retry_backoff(200, 200) >= 1);
    }

    #[test]
    fn breaker_state_machine_opens_and_recovers() {
        let mut st = overload_state("queue:64");
        assert!(!st.breaker_blocked(100, 0, 1));
        st.breaker_open(0, 1);
        assert_eq!(st.breaker_opens, 1);
        st.breaker_open(0, 1); // idempotent while open
        assert_eq!(st.breaker_opens, 1);
        assert!(
            st.breaker_blocked(u64::MAX - 1, 0, 1),
            "open blocks forever"
        );
        // Recovery at t=1000 with cooldown 500: blocked until 1500.
        st.breaker_recover(1000, 0, 1);
        assert!(st.breaker_blocked(1499, 0, 1));
        assert!(!st.breaker_blocked(1500, 0, 1));
        // Re-opening after recovery counts a fresh transition.
        st.breaker_open(0, 1);
        assert_eq!(st.breaker_opens, 2);
        // Recovery of an untracked pair is a no-op.
        st.breaker_recover(0, 2, 3);
        assert!(!st.breaker_blocked(0, 2, 3));
    }

    #[test]
    fn qlen_tracker_is_time_weighted_and_window_clipped() {
        let spec: ArrivalSpec = "poisson:1".parse().unwrap();
        let open = OpenTraffic {
            warmup: 100,
            ..OpenTraffic::new(spec, 1000)
        };
        let mut st = OpenState::build(&open, 1, 2, 0).unwrap();
        st.note_qlen(50, 1); // len 1 from t=50, but warmup clips [50,100)
        st.note_qlen(300, 1); // len 1 over [100,300) => 200 units at 1
        st.note_qlen(400, -1); // len 2 over [300,400) => 100 units at 2
        st.flush_qlen(500); // len 1 over [400,500) => 100 units at 1
        let (buckets, total, _, max) = st.qlen_hist.raw_parts();
        assert_eq!(total, 400);
        assert_eq!(max, 2);
        assert_eq!(buckets[1], 300);
        assert_eq!(buckets[2], 100);
    }
}
