//! The cost model: "times to be charged for primitive operations".
//!
//! All costs are in the paper's abstract time units. The defaults are
//! calibrated (see DESIGN.md) so that the paper's workloads complete in the
//! 1000–23000-unit range the paper reports, and so that the
//! communication-to-computation ratio is low — the paper deliberately chose
//! it "such that communication stagnation does not occur" in order to
//! isolate load-distribution effectiveness.

use serde::{Deserialize, Serialize};

/// Time charged for each primitive operation of the machine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// PE time to execute a goal that splits into subgoals.
    pub split_cost: u64,
    /// PE time to execute a leaf goal (base case).
    pub leaf_cost: u64,
    /// PE time to process one response from a child.
    pub combine_cost: u64,
    /// Channel occupancy of one goal-message hop.
    pub goal_hop_cost: u64,
    /// Channel occupancy of one response-message hop.
    pub response_hop_cost: u64,
    /// Channel occupancy of one control message (load word, proximity
    /// update, steal request) — "a very short message".
    pub control_hop_cost: u64,
    /// PE time charged per message handled when no communication
    /// co-processor is present (`MachineConfig::coprocessor == false`).
    pub software_routing_cost: u64,
}

impl CostModel {
    /// The calibrated defaults used for all paper-reproduction experiments.
    ///
    /// Calibration targets (see EXPERIMENTS.md): total run lengths in the
    /// paper's 1000–23000-unit range; a communication/computation ratio low
    /// enough that no channel saturates ("communication stagnation does not
    /// occur") even on the bus-based DLM, where every bus carries the load
    /// words of all its member PEs.
    pub fn paper_default() -> Self {
        CostModel {
            split_cost: 20,
            leaf_cost: 15,
            combine_cost: 5,
            goal_hop_cost: 2,
            response_hop_cost: 2,
            control_hop_cost: 1,
            software_routing_cost: 4,
        }
    }

    /// A cost model with every operation costing one unit — handy in unit
    /// tests where exact timings are asserted.
    pub fn unit() -> Self {
        CostModel {
            split_cost: 1,
            leaf_cost: 1,
            combine_cost: 1,
            goal_hop_cost: 1,
            response_hop_cost: 1,
            control_hop_cost: 1,
            software_routing_cost: 1,
        }
    }

    /// Scale the communication costs by `num / den`, keeping computation
    /// fixed — used by the communication/computation-ratio ablation the
    /// paper's conclusion calls for ("when the ratio is higher, CWN may lose
    /// some of its edge").
    pub fn with_comm_scaled(mut self, num: u64, den: u64) -> Self {
        assert!(den > 0, "zero denominator");
        let scale = |c: u64| (c * num / den).max(1);
        self.goal_hop_cost = scale(self.goal_hop_cost);
        self.response_hop_cost = scale(self.response_hop_cost);
        self.control_hop_cost = scale(self.control_hop_cost);
        self
    }

    /// Ratio of the goal-hop cost to the split cost — a rough proxy for the
    /// communication/computation ratio the paper discusses.
    pub fn comm_comp_ratio(&self) -> f64 {
        self.goal_hop_cost as f64 / self.split_cost as f64
    }

    /// Check that all charged operations take non-zero time; zero-cost PE or
    /// channel operations would let the simulation loop at a single instant.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("split_cost", self.split_cost),
            ("leaf_cost", self.leaf_cost),
            ("combine_cost", self.combine_cost),
            ("goal_hop_cost", self.goal_hop_cost),
            ("response_hop_cost", self.response_hop_cost),
            ("control_hop_cost", self.control_hop_cost),
        ];
        for (name, v) in fields {
            if v == 0 {
                return Err(format!("{name} must be positive"));
            }
        }
        Ok(())
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_low_comm_ratio() {
        let c = CostModel::paper_default();
        assert!(c.comm_comp_ratio() < 0.15, "ratio {}", c.comm_comp_ratio());
        c.validate().unwrap();
    }

    #[test]
    fn unit_model_validates() {
        CostModel::unit().validate().unwrap();
    }

    #[test]
    fn comm_scaling_changes_only_communication() {
        let base = CostModel::paper_default();
        let scaled = base.with_comm_scaled(10, 1);
        assert_eq!(scaled.split_cost, base.split_cost);
        assert_eq!(scaled.leaf_cost, base.leaf_cost);
        assert_eq!(scaled.goal_hop_cost, base.goal_hop_cost * 10);
        assert_eq!(scaled.control_hop_cost, base.control_hop_cost * 10);
    }

    #[test]
    fn comm_scaling_never_reaches_zero() {
        let scaled = CostModel::paper_default().with_comm_scaled(1, 1000);
        assert_eq!(scaled.goal_hop_cost, 1);
        scaled.validate().unwrap();
    }

    #[test]
    fn zero_cost_is_rejected() {
        let mut c = CostModel::paper_default();
        c.combine_cost = 0;
        assert!(c.validate().is_err());
    }
}
