//! Sharded conservative-synchronization execution of a single run.
//!
//! The sequential engine pops one global event calendar. This engine
//! partitions the machine into `K` shards — contiguous PE blocks from the
//! greedy-BFS partitioner in `oracle-topo`, each with the PEs' queues, RNG
//! streams, incident non-boundary channels, and the slice of the event
//! calendar belonging to those actors — and advances all shards in lockstep
//! through one simulated timestamp at a time, exchanging cross-shard traffic
//! through lock-free SPSC mailboxes at phase boundaries.
//!
//! # Why bit-identical
//!
//! The result is *bit-identical* to the sequential engine, not merely
//! statistically equivalent, because every source of ordering in the model
//! was made a pure function of (configuration, seed) beforehand:
//!
//! * **Total event order.** Every event's queue key is
//!   `(actor << 32) | per_actor_seq`, with actor codes environment < PEs <
//!   channels. Two shards never schedule for the same actor, so keys mint
//!   identically under any partition, and sorting by `(time, key)`
//!   reproduces the exact sequential pop order.
//! * **Phase split inside a timestamp.** At one instant every PE-class key
//!   sorts below every channel-class key (`Core::chan_key_base`). The
//!   engine exploits the boundary: *phase A* runs all PE/environment events
//!   at `T` (all strategy decisions; offers to boundary channels are
//!   captured, not applied), *phase B* applies the captured offers in the
//!   deterministic `(generating key, emission index)` order and completes
//!   channel transfers at `T`, *phase C* applies the resulting deliveries
//!   in generating-key order against each shard's own PEs. Deliveries (no
//!   communication co-processor) only enqueue handler work and start PE
//!   service — every event they schedule lands strictly after `T`, so the
//!   window closes.
//! * **Lookahead.** The cost model validates every primitive cost ≥ 1, and
//!   the software-routing charge is clamped to ≥ 1 at use, so nothing a
//!   phase does can create work at its own timestamp (phase A can — timers
//!   may fire with zero delay — and the phase-A pop loop re-peeks for
//!   exactly that reason). A window that *would* re-open its own timestamp
//!   trips a guard and the run falls back to the sequential engine.
//! * **Per-PE randomness.** Every runtime draw comes from the stream of the
//!   PE whose event is being handled, so randomness is independent of how
//!   events interleave across shards.
//!
//! # Termination
//!
//! A closed run ends *inside* a timestamp: the completing event has some
//! key `k*` and the sequential engine stops there, leaving same-instant
//! events with larger keys unprocessed. Shards discover completion only
//! after racing through their whole phase-A batch, so a shard may have
//! processed an event beyond `k*`. The engine detects that overshoot at the
//! next barrier and, instead of checkpoint/rollback machinery, simply
//! replays the run from scratch with a `(time, key) ≤ (T*, k*)` pop bound —
//! determinism makes the replay land on exactly the sequential final state.
//! No overshoot (the common case: the completing shard usually runs the
//! longest batch) means the first pass already *is* the sequential state.
//!
//! # Eligibility
//!
//! Configurations whose semantics would require cross-shard state mid-phase
//! run sequentially instead, transparently: open-system traffic, fault
//! plans, instant load information (reads remote PE state), communication
//! co-processor mode (deliveries run strategy code at channel timestamps,
//! where the complete/deliver phase split becomes observable through
//! backlog statistics), event tracing (interleaved capture order), the
//! wall-clock profiler, and strategies that keep cross-PE shared state
//! ([`crate::strategy::Strategy::parallel_safe`]). Runtime invariant audits
//! (`audit_every`) are honoured by a single audit of the merged final
//! machine — a shard sees only its slice of the global identities, so
//! mid-run audits are deferred to the end.
//!
//! # Contract boundary
//!
//! Reports, metrics, auditor verdicts, errors, and the event calendar are
//! bit-identical without exception; the shard count is clamped to
//! [`MAX_SHARDS`] and to the PE count so every worker owns work. The one
//! snapshot-byte divergence is *historical cursor state*: for runs that
//! cross a watchdog window ([`crate::config::MachineConfig::progress_window`]
//! events) the serialized `last_progress` triple holds the final progress
//! counters rather than the counters at the last mid-run crossing, and an
//! audited run's `last_audit_now` holds the final audit time rather than
//! the last mid-run one. (`next_check` / `next_audit` are pure functions
//! of the processed count and do reconstruct exactly.) Recovering the
//! historical values would mean logging global counters per event —
//! against this engine's purpose — and the divergence only phase-shifts
//! the stall detector of a run resumed from such a snapshot. Runs below
//! one window, like the entire equality suite, snapshot bit-identically.
//! An event-limit overrun is detected at window granularity and the run is
//! re-executed sequentially, so `SimError::EventLimit` carries the exact
//! sequential `(events, time)` pair.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use oracle_des::{
    DualQueue, Histogram, IntervalSeries, Mailbox, QueueSnapshot, SimTime, SpinBarrier,
};
use oracle_topo::ChannelId;

use crate::config::{LoadInfoMode, QueueBackend};
use crate::error::SimError;
use crate::machine::{DeferredOffer, Event, Machine, ParCtx};
use crate::message::Flight;
use crate::metrics::{Report, TrafficCounters};
use crate::trace::Trace;

/// Hard cap on the worker-shard count. The phase-B delivery broadcast
/// dedups destination shards through a `u64` bitmask indexed by shard, so
/// the engine never runs more than 64 shards — requests above the cap
/// (`--shards 200`, or `--shards auto` on a 128-thread host driving a
/// 128-PE topology) are clamped here, in the one place shard counts enter
/// the engine. 64 workers is already past the scaling knee of every
/// tracked cell, so the clamp costs nothing real.
const MAX_SHARDS: usize = 64;

/// Per-(producer, consumer) mailbox capacity for deferred channel offers.
/// Overflow is not an error path worth engineering for — the run falls
/// back to the sequential engine.
const OFFER_MAILBOX_CAP: usize = 1 << 12;
/// Per-(producer, consumer) mailbox capacity for delivery records.
const DELIVERY_MAILBOX_CAP: usize = 1 << 12;

/// A factory for identically configured machines. The engine builds one
/// machine per shard (plus a merge baseline), and builds the set again for
/// a bounded replay, so it needs the recipe rather than an instance.
pub type MakeMachine<'a> = dyn Fn() -> Result<Machine, SimError> + 'a;

/// Why a machine cannot run under the sharded engine, or `None` when it
/// can. Callers that want to *report* the fallback (CLI, tests) ask here;
/// [`run_parallel`] consults the same predicate internally.
pub fn ineligibility(m: &Machine, shards: usize) -> Option<&'static str> {
    let c = &m.core.config;
    if shards <= 1 {
        return Some("a single shard is the sequential engine");
    }
    if m.core.topo.num_pes() < 2 {
        return Some("nothing to partition below two PEs");
    }
    if c.open.is_some() {
        return Some("open-system traffic (environment-actor arrival state is global)");
    }
    if !m.core.plan.is_empty() {
        return Some("fault plan (loss draws and recovery tracking are global)");
    }
    if matches!(c.load_info, LoadInfoMode::Instant) {
        return Some("instant load information reads remote PE state mid-timestamp");
    }
    if c.coprocessor {
        return Some("co-processor deliveries run strategy code at channel timestamps");
    }
    if c.trace_capacity > 0 {
        return Some("event tracing captures a global interleaving");
    }
    if c.profile {
        return Some("profiler wall-times are not deterministic");
    }
    if !m.strategy.parallel_safe() {
        return Some("strategy keeps cross-PE shared state");
    }
    None
}

/// Run a simulation on `shards` shards and produce its report and trace,
/// bit-identical to `Machine::run_traced` on a machine from the same
/// factory. Ineligible configurations (see [`ineligibility`]) and runs the
/// engine declines mid-flight (mailbox overflow, a zero-lookahead window)
/// execute sequentially instead — same result either way.
pub fn run_parallel(make: &MakeMachine, shards: usize) -> Result<(Report, Trace), SimError> {
    run_parallel_machine(make, shards)?.finish()
}

/// [`run_parallel`], but yielding the completed machine itself rather than
/// its report — the form the checkpoint tooling and the cross-engine
/// equality tests want, since a completed machine can be snapshotted.
pub fn run_parallel_machine(make: &MakeMachine, shards: usize) -> Result<Machine, SimError> {
    let probe = make()?;
    if ineligibility(&probe, shards).is_some() {
        return run_sequential(probe);
    }
    let owners = Owners::build(&probe, shards);
    if owners.num_shards < 2 {
        return run_sequential(probe);
    }
    // The merge baseline: initialized, never advanced. Holds the post-init
    // values every additive aggregate starts from (shards carry deltas).
    let mut m0 = probe;
    m0.begin();

    match parallel_pass(make, &owners, None)? {
        Pass::Finished(shards) => finish_pass(m0, shards, &owners, make),
        Pass::Overshoot { t, key } => {
            // Deterministic replay with the sequential stop bound: the
            // second pass pops nothing past `(t, key)` and lands on the
            // sequential final state exactly.
            match parallel_pass(make, &owners, Some((t, key)))? {
                Pass::Finished(shards) => finish_pass(m0, shards, &owners, make),
                // A bounded replay cannot overshoot; anything else means
                // the engine declined — fall back rather than reason.
                _ => run_sequential(make()?),
            }
        }
        Pass::Bail => run_sequential(make()?),
    }
}

/// Merge a finished pass — unless it ran past the event limit. The shard
/// loop checks the limit once per window against the summed counters, so a
/// pass can finish having processed `max_events` or more even though the
/// sequential engine errors at the exact event that crosses the limit
/// (unless that very event completes the run — completion is checked
/// first). Re-running such a pass sequentially reproduces the sequential
/// outcome bit-for-bit, error or not, instead of approximating it.
fn finish_pass(
    m0: Machine,
    shards: Vec<Machine>,
    owners: &Owners,
    make: &MakeMachine,
) -> Result<Machine, SimError> {
    let total: u64 = shards
        .iter()
        .map(|s| s.core.events.events_processed())
        .sum();
    let completed = shards.iter().any(|s| s.core.completed());
    let max = m0.core.config.max_events;
    if total >= max && !(completed && total == max) {
        return run_sequential(make()?);
    }
    merge_shards(m0, shards, owners)
}

/// The transparent fallback: the ordinary sequential drive, stopping (like
/// the parallel paths) with the machine completed rather than consumed.
fn run_sequential(mut m: Machine) -> Result<Machine, SimError> {
    m.begin();
    m.advance_until(None)?;
    Ok(m)
}

/// Static ownership tables derived from the topology partition.
struct Owners {
    num_shards: usize,
    /// Owning shard per PE.
    pe_owner: Vec<u32>,
    /// Owning shard per channel: the shard of its lowest-id member.
    chan_owner: Vec<u32>,
    /// Owning shard per event actor (environment, PEs, channels).
    actor_owner: Vec<u32>,
    /// Channels whose members span shards (offers to them are deferred).
    defer_chan: Vec<bool>,
    /// Per-shard PE ownership masks (the `deliver_flight` filter).
    masks: Vec<Vec<bool>>,
}

impl Owners {
    fn build(m: &Machine, shards: usize) -> Owners {
        let topo = &m.core.topo;
        // The partitioner clamps to the PE count (no empty shards, so no
        // worker ever spins through a run with nothing to do), and
        // `MAX_SHARDS` bounds the delivery-broadcast bitmask.
        let part = oracle_topo::partition(topo, shards.min(MAX_SHARDS));
        let k = part.num_shards as usize;
        let n = topo.num_pes();
        let nch = topo.num_channels();
        let pe_owner = part.shard_of;
        let mut chan_owner = Vec::with_capacity(nch);
        let mut defer_chan = vec![false; nch];
        for (c, defer) in defer_chan.iter_mut().enumerate() {
            let members = topo.channel_members(ChannelId(c as u32));
            let lowest = members.iter().min().expect("channel with no members");
            chan_owner.push(pe_owner[lowest.idx()]);
            let first = pe_owner[members[0].idx()];
            if members.iter().any(|m| pe_owner[m.idx()] != first) {
                *defer = true;
            }
        }
        // The environment actor never fires in an eligible run (no open
        // traffic, no recovery); shard 0 owns it by convention.
        let mut actor_owner = Vec::with_capacity(1 + n + nch);
        actor_owner.push(0);
        actor_owner.extend_from_slice(&pe_owner);
        actor_owner.extend_from_slice(&chan_owner);
        let masks = (0..k as u32)
            .map(|s| pe_owner.iter().map(|&o| o == s).collect())
            .collect();
        Owners {
            num_shards: k,
            pe_owner,
            chan_owner,
            actor_owner,
            defer_chan,
            masks,
        }
    }
}

/// One completed channel transfer, broadcast to every shard owning a
/// member PE; each shard applies its own slice of the delivery in
/// generating-key order.
struct DeliveryRec {
    /// Key of the `ChannelDone` event that completed the transfer.
    gen_key: u64,
    channel: ChannelId,
    flight: Flight,
}

/// Outcome of one parallel pass over the event horizon.
enum Pass {
    /// All shards stopped cleanly: completed, or drained without a result
    /// (the stall case — the merged machine reports it exactly as the
    /// sequential engine would).
    Finished(Vec<Machine>),
    /// Completion landed at `(t, key)` but some shard had already processed
    /// a same-instant event beyond `key`; replay with the bound.
    Overshoot { t: u64, key: u64 },
    /// The engine declined (mailbox overflow, zero-lookahead window):
    /// fall back to sequential execution.
    Bail,
}

/// Worker exit status, one per shard.
#[derive(PartialEq)]
enum Exit {
    Complete,
    Drained,
    Overshoot,
    Bail,
    /// Fatal: another worker panicked (payload in `Shared::panic`).
    Abort,
}

/// Cross-shard coordination state for one pass.
struct Shared {
    barrier: SpinBarrier,
    /// Earliest pending event time per shard (`u64::MAX` = none).
    fronts: Vec<AtomicU64>,
    /// Events processed per shard (for the global event-limit check).
    processed: Vec<AtomicU64>,
    /// Timestamp and key of the completing event, once one fires.
    completed_t: AtomicU64,
    completed_key: AtomicU64,
    overshoot: AtomicBool,
    bail: AtomicBool,
    fatal: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// `offers[producer][consumer]`: deferred boundary-channel offers.
    offers: Vec<Vec<Mailbox<DeferredOffer>>>,
    /// `deliveries[producer][consumer]`: completed-transfer records.
    deliveries: Vec<Vec<Mailbox<DeliveryRec>>>,
}

impl Shared {
    fn new(k: usize) -> Shared {
        fn boxes<T>(k: usize, cap: usize) -> Vec<Vec<Mailbox<T>>> {
            (0..k)
                .map(|_| (0..k).map(|_| Mailbox::new(cap)).collect())
                .collect()
        }
        Shared {
            barrier: SpinBarrier::new(k),
            fronts: (0..k).map(|_| AtomicU64::new(u64::MAX)).collect(),
            processed: (0..k).map(|_| AtomicU64::new(0)).collect(),
            completed_t: AtomicU64::new(u64::MAX),
            completed_key: AtomicU64::new(u64::MAX),
            overshoot: AtomicBool::new(false),
            bail: AtomicBool::new(false),
            fatal: AtomicBool::new(false),
            panic: Mutex::new(None),
            offers: boxes(k, OFFER_MAILBOX_CAP),
            deliveries: boxes(k, DELIVERY_MAILBOX_CAP),
        }
    }

    /// True when the current worker must abandon the pass right now.
    fn aborted(&self) -> bool {
        self.barrier.is_poisoned() || self.fatal.load(Ordering::Acquire)
    }
}

/// Build the per-shard machines, run the windowed protocol to a stop, and
/// classify the outcome.
fn parallel_pass(
    make: &MakeMachine,
    owners: &Owners,
    bound: Option<(u64, u64)>,
) -> Result<Pass, SimError> {
    let k = owners.num_shards;
    let mut machines = Vec::with_capacity(k);
    for shard in 0..k {
        machines.push(build_shard(make, owners, shard as u32)?);
    }
    let shared = Shared::new(k);

    let mut results: Vec<Option<(Machine, Exit)>> = Vec::with_capacity(k);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (shard, m) in machines.into_iter().enumerate() {
            let shared = &shared;
            let owned: &[bool] = &owners.masks[shard];
            handles.push(scope.spawn(move || {
                let run = catch_unwind(AssertUnwindSafe(|| {
                    shard_loop(m, shard, owners, owned, shared, bound)
                }));
                match run {
                    Ok(pair) => Some(pair),
                    Err(payload) => {
                        let mut slot = shared.panic.lock().unwrap_or_else(|p| p.into_inner());
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        drop(slot);
                        shared.fatal.store(true, Ordering::Release);
                        shared.barrier.poison();
                        None
                    }
                }
            }));
        }
        for h in handles {
            results.push(h.join().unwrap_or(None));
        }
    });

    if let Some(payload) = shared
        .panic
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .take()
    {
        resume_unwind(payload);
    }
    let mut finished = Vec::with_capacity(k);
    let mut exits = Vec::with_capacity(k);
    for r in results {
        let Some((m, exit)) = r else {
            return Ok(Pass::Bail);
        };
        finished.push(m);
        exits.push(exit);
    }
    if exits.iter().any(|e| *e == Exit::Bail || *e == Exit::Abort) {
        return Ok(Pass::Bail);
    }
    if exits.contains(&Exit::Overshoot) {
        return Ok(Pass::Overshoot {
            t: shared.completed_t.load(Ordering::Acquire),
            key: shared.completed_key.load(Ordering::Acquire),
        });
    }
    Ok(Pass::Finished(finished))
}

/// Build shard `shard`: a full machine, initialized exactly like the
/// sequential run (initialization is deterministic, so every shard — and
/// the merge baseline — passes through the identical state), then reduced
/// to the shard's view: only the events of owned actors stay in the
/// calendar, the additive aggregates are zeroed (the baseline keeps the
/// post-init values once), and the sharding context is installed.
fn build_shard(make: &MakeMachine, owners: &Owners, shard: u32) -> Result<Machine, SimError> {
    let mut m = make()?;
    m.begin();
    let use_heap = matches!(m.core.config.queue_backend, QueueBackend::Heap);
    let snap = m.core.events.take_snapshot();
    let events: Vec<(SimTime, u64, Event)> = snap
        .events
        .into_iter()
        .filter(|(_, key, _)| owners.actor_owner[(key >> 32) as usize] == shard)
        .collect();
    m.core.events = DualQueue::from_snapshot(
        use_heap,
        QueueSnapshot {
            now: snap.now,
            processed: 0,
            events,
        },
    );
    // Additive run aggregates become per-shard deltas (the merge adds them
    // onto the baseline's post-init values). Per-actor state stays
    // absolute — the merge takes each actor's owner copy.
    m.core.goals_created = 0;
    m.core.goals_executed = 0;
    m.core.responses_processed = 0;
    m.core.seq_work = 0;
    m.core.traffic = TrafficCounters::default();
    m.core.hop_hist = Histogram::new(m.core.hop_hist.raw_parts().0.len());
    m.core.global_series = IntervalSeries::new(m.core.config.sampling_interval);
    // Shards never self-audit: a shard holds a slice of the global
    // conservation identities. The merged machine is audited once instead.
    m.core.next_audit = u64::MAX;
    m.core.par = Some(Box::new(ParCtx {
        defer_chan: owners.defer_chan.clone(),
        cur_key: 0,
        offer_sub: 0,
        deferred: Vec::new(),
    }));
    Ok(m)
}

/// True when `(t, key)` lies past the replay bound.
#[inline]
fn beyond(bound: Option<(u64, u64)>, t: u64, key: u64) -> bool {
    match bound {
        None => false,
        Some((bt, bk)) => t > bt || (t == bt && key > bk),
    }
}

/// The worker protocol for one shard. Every iteration handles exactly one
/// global timestamp; barriers keep all shards phase-aligned, and every
/// flag is checked immediately after a barrier so all shards always exit
/// at the same protocol point.
fn shard_loop(
    mut m: Machine,
    shard: usize,
    owners: &Owners,
    owned: &[bool],
    shared: &Shared,
    bound: Option<(u64, u64)>,
) -> (Machine, Exit) {
    let k = owners.num_shards;
    let chan_base = m.core.chan_key_base();
    let mut self_offers: Vec<DeferredOffer> = Vec::new();
    let mut self_delivs: Vec<DeliveryRec> = Vec::new();
    let mut offers: Vec<DeferredOffer> = Vec::new();
    let mut delivs: Vec<DeliveryRec> = Vec::new();
    let mut prev_t: Option<u64> = None;
    loop {
        // --- Window reduction: publish the shard front, take the min.
        let front = match m.core.events.peek_keyed() {
            Some((at, key)) if !beyond(bound, at.units(), key) => at.units(),
            _ => u64::MAX,
        };
        shared.fronts[shard].store(front, Ordering::Relaxed);
        shared.processed[shard].store(m.core.events.events_processed(), Ordering::Relaxed);
        shared.barrier.wait();
        if shared.aborted() {
            return (m, Exit::Abort);
        }
        if shared.bail.load(Ordering::Acquire) {
            return (m, Exit::Bail);
        }
        let t = shared
            .fronts
            .iter()
            .map(|f| f.load(Ordering::Relaxed))
            .min()
            .unwrap_or(u64::MAX);
        if t == u64::MAX {
            return (m, Exit::Drained);
        }
        let total: u64 = shared
            .processed
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .sum();
        if total >= m.core.config.max_events {
            // Aligned exit: every shard computes the same sum from the
            // same published counters, so all bail together. The check is
            // window-granular where the sequential engine's is per-event;
            // rather than fabricate an approximate error here, fall back
            // to the sequential engine, which stops at exactly the event
            // the limit names and reports the exact (events, time) pair.
            return (m, Exit::Bail);
        }
        if prev_t == Some(t) {
            // Zero-lookahead window: something at `t` was created while
            // `t` was already executing. The cost model makes this
            // unreachable, but if it ever fires, correctness comes first.
            shared.bail.store(true, Ordering::Release);
            return (m, Exit::Bail);
        }
        prev_t = Some(t);
        m.core.events.advance_to(SimTime(t));

        // --- Phase A: PE- and environment-class events at `t`, in key
        // order. All strategy decisions happen here; offers to boundary
        // channels are captured on the side.
        let mut max_key = 0u64;
        let mut completed_here = false;
        while let Some((at, key)) = m.core.events.peek_keyed() {
            if at.units() != t || key >= chan_base || beyond(bound, t, key) {
                break;
            }
            let (_, key, ev) = m.core.events.pop_keyed().expect("peeked event vanished");
            {
                let par = m.core.par.as_deref_mut().expect("shard context");
                par.cur_key = key;
                par.offer_sub = 0;
            }
            m.handle_event(ev);
            max_key = key;
            if m.core.completed() {
                shared.completed_t.store(t, Ordering::Relaxed);
                shared.completed_key.store(key, Ordering::Relaxed);
                completed_here = true;
                break;
            }
            // The progress watchdog, on shard-local counters: a stalled
            // run stalls every shard, and a window-aligned stop beats
            // spinning forever. This shard's counters are only a slice of
            // the run, so no shard can build the error the sequential
            // engine would report — bail to the sequential fallback, which
            // reproduces the stall with the true global counters.
            let n = m.core.events.events_processed();
            if n >= m.core.next_check {
                let progress = (
                    m.core.goals_created,
                    m.core.goals_executed,
                    m.core.responses_processed,
                );
                if progress == m.core.last_progress {
                    shared.bail.store(true, Ordering::Release);
                    shared.barrier.poison();
                    return (m, Exit::Bail);
                }
                m.core.last_progress = progress;
                m.core.next_check = n + m.core.config.progress_window;
            }
        }
        let _ = completed_here;
        // Route the captured offers to their owning shards.
        let deferred =
            std::mem::take(&mut m.core.par.as_deref_mut().expect("shard context").deferred);
        for d in deferred {
            let owner = owners.chan_owner[d.channel.idx()] as usize;
            if owner == shard {
                self_offers.push(d);
            } else if shared.offers[shard][owner].push(d).is_err() {
                shared.bail.store(true, Ordering::Release);
                break;
            }
        }
        shared.barrier.wait();
        if shared.aborted() {
            return (m, Exit::Abort);
        }
        if shared.bail.load(Ordering::Acquire) {
            return (m, Exit::Bail);
        }

        // --- Completion check. The completing event is always PE-class
        // (a root response combining on a PE), so completion always lands
        // in phase A; channel events at `t` stay pending, exactly as the
        // sequential engine leaves them.
        let ct = shared.completed_t.load(Ordering::Relaxed);
        if ct != u64::MAX {
            let ck = shared.completed_key.load(Ordering::Relaxed);
            if max_key > ck {
                shared.overshoot.store(true, Ordering::Release);
            }
            shared.barrier.wait();
            if shared.aborted() {
                return (m, Exit::Abort);
            }
            if shared.overshoot.load(Ordering::Acquire) {
                return (m, Exit::Overshoot);
            }
            // Every event that emitted an offer has key ≤ ck, so applying
            // the merged offers reproduces the sequential channel state.
            collect_offers(&mut offers, &mut self_offers, shared, shard, k);
            for d in offers.drain(..) {
                m.core.apply_offer(d.channel, d.flight);
            }
            return (m, Exit::Complete);
        }

        // --- Phase B: boundary offers in `(generating key, emission
        // index)` order — the exact order the sequential engine's handlers
        // applied them — then this shard's channel completions at `t`.
        collect_offers(&mut offers, &mut self_offers, shared, shard, k);
        for d in offers.drain(..) {
            m.core.apply_offer(d.channel, d.flight);
        }
        while let Some((at, key)) = m.core.events.peek_keyed() {
            if at.units() != t || beyond(bound, t, key) {
                break;
            }
            let (_, key, ev) = m.core.events.pop_keyed().expect("peeked event vanished");
            let Event::ChannelDone(ch) = ev else {
                // Link fault events are the only other channel-class
                // events, and a fault plan is ineligible.
                unreachable!("non-transfer channel event in an eligible run");
            };
            let flight = m.core.complete_channel(ch);
            // Broadcast the completed transfer to every shard owning a
            // member PE (deliveries to one PE can come from channels owned
            // by different shards, so everyone merges by generating key).
            let members = m.core.topo.channel_members(ch);
            // Shard-index bitmask; `Owners::build` clamps to `MAX_SHARDS`
            // (= 64), so every shard index fits.
            let mut sent = 0u64;
            for &member in members {
                let dest = owners.pe_owner[member.idx()] as usize;
                if sent & (1 << dest) != 0 {
                    continue;
                }
                sent |= 1 << dest;
                let rec = DeliveryRec {
                    gen_key: key,
                    channel: ch,
                    flight,
                };
                if dest == shard {
                    self_delivs.push(rec);
                } else if shared.deliveries[shard][dest].push(rec).is_err() {
                    shared.bail.store(true, Ordering::Release);
                    break;
                }
            }
            // A mailbox overflow dooms the whole pass; stop popping (and
            // mutating channel state for a discarded machine) right away.
            if shared.bail.load(Ordering::Acquire) {
                break;
            }
        }
        shared.barrier.wait();
        if shared.aborted() {
            return (m, Exit::Abort);
        }
        if shared.bail.load(Ordering::Acquire) {
            return (m, Exit::Bail);
        }

        // --- Phase C: deliveries against this shard's PEs, merged across
        // producers by generating key. Without a co-processor a delivery
        // only enqueues handler work and starts PE service — no strategy
        // code, no randomness, no offers, and nothing lands at `t`.
        for p in 0..k {
            while let Some(r) = shared.deliveries[p][shard].pop() {
                delivs.push(r);
            }
        }
        delivs.append(&mut self_delivs);
        delivs.sort_unstable_by_key(|r| r.gen_key);
        for r in delivs.drain(..) {
            m.deliver_flight(r.channel, r.flight, Some(owned));
        }
        shared.barrier.wait();
        if shared.aborted() {
            return (m, Exit::Abort);
        }
        if shared.bail.load(Ordering::Acquire) {
            return (m, Exit::Bail);
        }
    }
}

/// Drain this shard's offer mailboxes (and its own deferred batch) and
/// sort into the deterministic application order.
fn collect_offers(
    out: &mut Vec<DeferredOffer>,
    own: &mut Vec<DeferredOffer>,
    shared: &Shared,
    shard: usize,
    k: usize,
) {
    for p in 0..k {
        while let Some(d) = shared.offers[p][shard].pop() {
            out.push(d);
        }
    }
    out.append(own);
    out.sort_unstable_by_key(|d| (d.gen_key, d.sub));
}

/// Reassemble the canonical machine: every actor's state from its owning
/// shard, additive aggregates summed onto the baseline, the pending event
/// sets merged back into one calendar. The result is indistinguishable
/// from a sequential machine that just completed — including its snapshot
/// bytes.
fn merge_shards(
    mut m0: Machine,
    mut shards: Vec<Machine>,
    owners: &Owners,
) -> Result<Machine, SimError> {
    let n = m0.core.pes.len();
    let nch = m0.core.channels.len();

    // Strategy: fold each shard's per-PE slices into the baseline clone.
    for (k, sm) in shards.iter().enumerate() {
        let state = sm.strategy.snapshot_state();
        m0.strategy
            .merge_owned(&state, &owners.masks[k])
            .map_err(SimError::InvalidConfig)?;
    }

    for p in 0..n {
        let o = owners.pe_owner[p] as usize;
        let s = &mut shards[o].core;
        std::mem::swap(&mut m0.core.pes[p], &mut s.pes[p]);
        std::mem::swap(&mut m0.core.pe_rngs[p], &mut s.pe_rngs[p]);
        m0.core
            .dispatch_latency
            .swap_pe(p as u32, &mut s.dispatch_latency);
        m0.core.key_seq[1 + p] = s.key_seq[1 + p];
        m0.core.goal_seq[1 + p] = s.goal_seq[1 + p];
    }
    for c in 0..nch {
        let o = owners.chan_owner[c] as usize;
        let s = &mut shards[o].core;
        m0.core.channels.swap_slot(c as u32, &mut s.channels);
        m0.core.key_seq[1 + n + c] = s.key_seq[1 + n + c];
    }

    // The baseline still holds the full post-init calendar; the live
    // pending set is the union of the shard calendars.
    let use_heap = matches!(m0.core.config.queue_backend, QueueBackend::Heap);
    let mut pending: Vec<(SimTime, u64, Event)> = Vec::new();
    let mut processed = 0u64;
    let mut now = SimTime::ZERO;
    for s in &mut shards {
        let snap = s.core.events.take_snapshot();
        now = now.max(snap.now);
        processed += snap.processed;
        pending.extend(snap.events);
    }
    pending.sort_unstable_by_key(|&(at, key, _)| (at, key));
    m0.core.events = DualQueue::from_snapshot(
        use_heap,
        QueueSnapshot {
            now,
            processed,
            events: pending,
        },
    );

    for s in &shards {
        let c = &s.core;
        m0.core.goals_created += c.goals_created;
        m0.core.goals_executed += c.goals_executed;
        m0.core.responses_processed += c.responses_processed;
        m0.core.seq_work += c.seq_work;
        m0.core.traffic.goal_hops += c.traffic.goal_hops;
        m0.core.traffic.response_hops += c.traffic.response_hops;
        m0.core.traffic.control_msgs += c.traffic.control_msgs;
        m0.core.traffic.load_updates += c.traffic.load_updates;
        m0.core.hop_hist.merge(&c.hop_hist);
        m0.core.global_series.merge(&c.global_series);
        if m0.core.root_result.is_none() {
            m0.core.root_result = c.root_result;
        }
    }

    // Cursor reconstruction. The sequential engine advances its watchdog
    // and audit cursors at exact event-count crossings — every multiple of
    // the window, except when that very event completes the run (the
    // completion check returns first) — so the final `next_check` /
    // `next_audit` are pure functions of the merged processed count and
    // reconstruct bit-exactly. The *historical* halves are not: the
    // progress triple at the last watchdog crossing and the simulated time
    // of the last mid-run audit would require knowing the global counters
    // at one global event index mid-run, which no shard ever observes.
    // Past the first crossing the merged machine stores the final triple /
    // final audit time instead — the one documented snapshot divergence
    // (see the module docs): irrelevant to a completed run, and merely
    // phase-shifting the stall detector of a resumed one.
    let completed = m0.core.root_result.is_some();
    let crossed = if completed {
        processed.saturating_sub(1)
    } else {
        processed
    };
    let w = m0.core.config.progress_window;
    m0.core.next_check = (crossed / w + 1) * w;
    if crossed >= w {
        m0.core.last_progress = (
            m0.core.goals_created,
            m0.core.goals_executed,
            m0.core.responses_processed,
        );
    }
    if m0.core.config.audit_every > 0 {
        // The deferred invariant audit over the reassembled whole. A run
        // that would have failed a mid-run audit sequentially fails here,
        // at its end, instead.
        crate::audit::audit(&m0.core, m0.strategy.as_ref())?;
        let a = m0.core.config.audit_every;
        m0.core.next_audit = (crossed / a + 1) * a;
        if crossed >= a {
            m0.core.last_audit_now = m0.core.now().units();
        }
    }
    Ok(m0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::cost::CostModel;
    use crate::machine::Core;
    use crate::message::GoalMsg;
    use crate::program::{Expansion, Program, TaskSpec};
    use crate::strategy::Strategy;
    use oracle_topo::misc::ring;
    use oracle_topo::PeId;

    struct Fib(i64);
    impl Program for Fib {
        fn name(&self) -> String {
            format!("fib({})", self.0)
        }
        fn root(&self) -> TaskSpec {
            TaskSpec::new(self.0, 0)
        }
        fn expand(&self, spec: &TaskSpec) -> Expansion {
            if spec.a < 2 {
                Expansion::Leaf(spec.a)
            } else {
                Expansion::Split([spec.child(spec.a - 1, 0), spec.child(spec.a - 2, 0)].into())
            }
        }
        fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
            acc + child
        }
    }

    /// Scatter every goal one hop around the ring — exercises channels,
    /// cross-shard traffic, and responses. Stateless, so parallel-safe.
    struct ScatterRing;
    impl Strategy for ScatterRing {
        fn name(&self) -> &'static str {
            "scatter-ring"
        }
        fn needs_load_broadcast(&self) -> bool {
            false
        }
        fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
            let next = PeId((pe.0 + 1) % core.num_pes() as u32);
            core.forward_goal(pe, next, goal);
        }
        fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
            core.accept_goal(pe, goal);
        }
        fn parallel_safe(&self) -> bool {
            true
        }
    }

    fn make(coprocessor: bool) -> impl Fn() -> Result<Machine, SimError> {
        make_with(MachineConfig {
            coprocessor,
            ..MachineConfig::default()
        })
    }

    fn make_with(config: MachineConfig) -> impl Fn() -> Result<Machine, SimError> {
        move || {
            Machine::new(
                ring(8),
                Box::new(Fib(12)),
                Box::new(ScatterRing),
                CostModel::paper_default(),
                config.clone(),
            )
        }
    }

    fn render(r: &Report) -> String {
        format!("{r:#?}")
    }

    #[test]
    fn parallel_matches_sequential_on_a_ring() {
        let f = make(false);
        let (seq, _) = f().unwrap().run_traced().unwrap();
        // 100 exercises the clamp path: 8 PEs mean 8 effective shards, not
        // 92 idle workers spinning in every barrier.
        for shards in [2, 3, 8, 100] {
            let (par, _) = run_parallel(&f, shards).unwrap();
            assert_eq!(render(&par), render(&seq), "shards = {shards}");
        }
    }

    #[test]
    fn shard_count_clamps_to_bitmask_capacity() {
        // 81 PEs with 200 requested shards: the delivery-broadcast dedup
        // is a u64 bitmask indexed by shard, so the engine must never run
        // more than MAX_SHARDS workers (a 65th shard's bit would shift out
        // of range and its deliveries would be silently dropped).
        let m = Machine::new(
            oracle_topo::mesh::mesh2d(9, 9, false),
            Box::new(Fib(5)),
            Box::new(ScatterRing),
            CostModel::paper_default(),
            MachineConfig::default(),
        )
        .unwrap();
        let owners = Owners::build(&m, 200);
        assert_eq!(owners.num_shards, MAX_SHARDS);
        assert!(owners.pe_owner.iter().all(|&o| (o as usize) < MAX_SHARDS));
        // …and every worker owns at least one PE.
        for mask in &owners.masks {
            assert!(mask.iter().any(|&b| b));
        }
    }

    #[test]
    fn event_limit_reproduces_the_sequential_error() {
        // The shard loop checks the limit at window granularity; the
        // engine must nevertheless surface the sequential engine's exact
        // per-event error, (events, time) pair and all.
        let f = make_with(MachineConfig {
            coprocessor: false,
            max_events: 400,
            ..MachineConfig::default()
        });
        let seq = f().unwrap().run_traced().unwrap_err();
        for shards in [2, 3, 8] {
            let par = run_parallel(&f, shards).unwrap_err();
            assert_eq!(format!("{par:?}"), format!("{seq:?}"), "shards = {shards}");
        }
    }

    #[test]
    fn watchdog_crossings_reconstruct_the_exact_cursor() {
        // A window small enough that the run crosses it many times: the
        // merged machine's `next_check`/`next_audit` must land exactly
        // where the sequential engine's per-event crossings left them.
        let f = make_with(MachineConfig {
            coprocessor: false,
            progress_window: 200,
            audit_every: 300,
            ..MachineConfig::default()
        });
        let mut seq = f().unwrap();
        seq.begin();
        seq.advance_until(None).unwrap();
        assert!(
            seq.core.events.events_processed() > 400,
            "cell too small to cross the watchdog window"
        );
        for shards in [2, 3] {
            let par = run_parallel_machine(&f, shards).unwrap();
            assert_eq!(
                par.core.events.events_processed(),
                seq.core.events.events_processed(),
                "shards = {shards}"
            );
            assert_eq!(
                par.core.next_check, seq.core.next_check,
                "shards = {shards}"
            );
            assert_eq!(
                par.core.next_audit, seq.core.next_audit,
                "shards = {shards}"
            );
        }
    }

    #[test]
    fn ineligible_configs_fall_back_sequentially() {
        let f = make(true); // co-processor mode is ineligible
        let m = f().unwrap();
        assert!(ineligibility(&m, 4).is_some());
        let (seq, _) = f().unwrap().run_traced().unwrap();
        let (par, _) = run_parallel(&f, 4).unwrap();
        assert_eq!(render(&par), render(&seq));
    }

    #[test]
    fn one_shard_is_sequential() {
        let f = make(false);
        let m = f().unwrap();
        assert!(ineligibility(&m, 1).is_some());
        let (seq, _) = f().unwrap().run_traced().unwrap();
        let (par, _) = run_parallel(&f, 1).unwrap();
        assert_eq!(render(&par), render(&seq));
    }
}
