//! Deterministic fault-injection plans and recovery parameters.
//!
//! A [`FaultPlan`] is pure data: it lists fail-stop PE crashes, link
//! up/down windows, a per-transfer message-loss probability, and transient
//! PE slowdowns, all keyed to simulated time. The machine replays the plan
//! with a dedicated RNG stream derived from the run seed, so a given
//! `(config, seed, plan)` triple always produces the same trajectory —
//! including every drop, retry, and recovery decision. An empty plan adds
//! no events and draws no random numbers, leaving fault-free runs
//! bit-identical to a build without the subsystem.
//!
//! Plans can be written inline in suite files and on the command line with
//! a compact grammar (see [`FaultPlan::from_str`]):
//!
//! ```text
//! crash:7@400+loss:1%+recover:500x6
//! ```

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Fail-stop crash of one PE at a simulated instant. The PE stops
/// executing, its queued and in-progress work is lost, and messages
/// addressed to it are black-holed from then on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeCrash {
    /// Index of the PE to kill (must be `< num_pes`).
    pub pe: u32,
    /// Simulated time of the crash.
    pub at: u64,
}

/// A window during which one channel carries no new traffic. A transfer
/// already on the wire completes; everything offered while the link is
/// down queues in the channel backlog and drains after `up_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkWindow {
    /// Index of the channel to take down (must be `< num_channels`).
    pub channel: u32,
    /// Simulated time the link goes down.
    pub down_at: u64,
    /// Simulated time the link comes back up (must be `> down_at`).
    pub up_at: u64,
}

/// Transient slowdown of one PE: work *started* inside the window costs
/// `factor` times as much. Work already in progress is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slowdown {
    /// Index of the PE to slow (must be `< num_pes`).
    pub pe: u32,
    /// Start of the window.
    pub from: u64,
    /// End of the window (must be `> from`).
    pub until: u64,
    /// Cost multiplier applied while the window is open (must be `>= 1`).
    pub factor: u64,
}

/// Knobs for the acknowledgment/retry recovery layer. When present, every
/// spawned goal is tracked by its parent until the child's response
/// combines; a goal that is lost (crash, black hole, or dropped transfer)
/// or silent past its timeout is re-spawned with a fresh id, up to
/// `max_retries` attempts per slot. Duplicate responses from superseded
/// attempts are detected and discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryParams {
    /// Base silence window before a tracked goal is re-spawned. The window
    /// doubles with each retry (capped at 32x) so slow subtrees are not
    /// respawned forever.
    pub ack_timeout: u64,
    /// Maximum re-spawn attempts per goal slot before giving up.
    pub max_retries: u32,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        RecoveryParams {
            ack_timeout: 500,
            max_retries: 6,
        }
    }
}

/// A complete, deterministic fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Fail-stop PE crashes.
    pub pe_crashes: Vec<PeCrash>,
    /// Link down/up windows.
    pub link_windows: Vec<LinkWindow>,
    /// Probability in `[0, 1)` that any completed channel transfer is
    /// dropped instead of delivered.
    pub message_loss: f64,
    /// Transient PE slowdown windows.
    pub slowdowns: Vec<Slowdown>,
    /// Acknowledgment/retry recovery; `None` disables tracking entirely.
    pub recovery: Option<RecoveryParams>,
}

impl FaultPlan {
    /// A plan with no faults and no recovery — the default.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing and enables nothing. An empty
    /// plan is guaranteed not to perturb a run in any way.
    pub fn is_empty(&self) -> bool {
        self.pe_crashes.is_empty()
            && self.link_windows.is_empty()
            && self.message_loss == 0.0
            && self.slowdowns.is_empty()
            && self.recovery.is_none()
    }

    /// Add a fail-stop crash of `pe` at time `at`.
    pub fn crash(mut self, pe: u32, at: u64) -> Self {
        self.pe_crashes.push(PeCrash { pe, at });
        self
    }

    /// Take `channel` down over `[down_at, up_at)`.
    pub fn link_down(mut self, channel: u32, down_at: u64, up_at: u64) -> Self {
        self.link_windows.push(LinkWindow {
            channel,
            down_at,
            up_at,
        });
        self
    }

    /// Set the per-transfer message-loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.message_loss = p;
        self
    }

    /// Slow `pe` by `factor` over `[from, until)`.
    pub fn slow(mut self, pe: u32, from: u64, until: u64, factor: u64) -> Self {
        self.slowdowns.push(Slowdown {
            pe,
            from,
            until,
            factor,
        });
        self
    }

    /// Enable the acknowledgment/retry recovery layer.
    pub fn with_recovery(mut self, recovery: RecoveryParams) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Validate the plan against a machine of `num_pes` PEs and
    /// `num_channels` channels.
    pub fn validate(&self, num_pes: usize, num_channels: usize) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.message_loss) {
            return Err(format!(
                "message_loss must be in [0, 1), got {}",
                self.message_loss
            ));
        }
        for (i, c) in self.pe_crashes.iter().enumerate() {
            if c.pe as usize >= num_pes {
                return Err(format!(
                    "crash names PE {} but machine has {num_pes} PEs",
                    c.pe
                ));
            }
            // A PE can only die once; a second crash of the same PE is
            // always a plan-authoring mistake (and would double-count
            // `pes_crashed` in the report).
            if let Some(dup) = self.pe_crashes[..i].iter().find(|p| p.pe == c.pe) {
                return Err(format!(
                    "PE {} is crashed twice (at t={} and t={}); a crashed PE never recovers",
                    c.pe, dup.at, c.at
                ));
            }
        }
        for (i, w) in self.link_windows.iter().enumerate() {
            if w.channel as usize >= num_channels {
                return Err(format!(
                    "link window names channel {} but machine has {num_channels} channels",
                    w.channel
                ));
            }
            if w.up_at <= w.down_at {
                return Err(format!(
                    "link window on channel {} must come up after it goes down ({}..{})",
                    w.channel, w.down_at, w.up_at
                ));
            }
            // Overlapping windows on one channel would interleave their
            // down/up events and bring the link back up while the other
            // window still holds it down.
            if let Some(overlap) = self.link_windows[..i]
                .iter()
                .find(|o| o.channel == w.channel && o.down_at < w.up_at && w.down_at < o.up_at)
            {
                return Err(format!(
                    "link windows on channel {} overlap ({}..{} and {}..{})",
                    w.channel, overlap.down_at, overlap.up_at, w.down_at, w.up_at
                ));
            }
        }
        for s in &self.slowdowns {
            if s.pe as usize >= num_pes {
                return Err(format!(
                    "slowdown names PE {} but machine has {num_pes} PEs",
                    s.pe
                ));
            }
            if s.until <= s.from {
                return Err(format!(
                    "slowdown on PE {} must end after it starts ({}..{})",
                    s.pe, s.from, s.until
                ));
            }
            if s.factor == 0 {
                return Err(format!("slowdown factor on PE {} must be >= 1", s.pe));
            }
        }
        if let Some(r) = self.recovery {
            if r.ack_timeout == 0 {
                return Err("recovery ack_timeout must be nonzero".into());
            }
        }
        Ok(())
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "none");
        }
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, "+")
            }
        };
        for c in &self.pe_crashes {
            sep(f)?;
            write!(f, "crash:{}@{}", c.pe, c.at)?;
        }
        for w in &self.link_windows {
            sep(f)?;
            write!(f, "link:{}@{}..{}", w.channel, w.down_at, w.up_at)?;
        }
        if self.message_loss > 0.0 {
            sep(f)?;
            write!(f, "loss:{}%", self.message_loss * 100.0)?;
        }
        for s in &self.slowdowns {
            sep(f)?;
            write!(f, "slow:{}@{}..{}x{}", s.pe, s.from, s.until, s.factor)?;
        }
        if let Some(r) = self.recovery {
            sep(f)?;
            write!(f, "recover:{}x{}", r.ack_timeout, r.max_retries)?;
        }
        Ok(())
    }
}

/// A fault-plan term that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultPlanError(pub String);

impl fmt::Display for ParseFaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan: {}", self.0)
    }
}

impl std::error::Error for ParseFaultPlanError {}

fn parse_u64(s: &str, what: &str) -> Result<u64, ParseFaultPlanError> {
    s.parse::<u64>()
        .map_err(|_| ParseFaultPlanError(format!("expected a number for {what}, got `{s}`")))
}

fn parse_u32(s: &str, what: &str) -> Result<u32, ParseFaultPlanError> {
    s.parse::<u32>()
        .map_err(|_| ParseFaultPlanError(format!("expected a number for {what}, got `{s}`")))
}

fn split2<'a>(
    s: &'a str,
    sep: &str,
    what: &str,
) -> Result<(&'a str, &'a str), ParseFaultPlanError> {
    s.split_once(sep)
        .ok_or_else(|| ParseFaultPlanError(format!("expected `{sep}` in {what}, got `{s}`")))
}

impl FromStr for FaultPlan {
    type Err = ParseFaultPlanError;

    /// Parse the compact plan grammar: `+`-separated terms, each one of
    ///
    /// - `crash:PE@T`        — fail-stop crash of PE at time T
    /// - `link:CH@F..U`      — channel CH down over `[F, U)`
    /// - `loss:P%`           — drop each transfer with probability P/100
    /// - `slow:PE@F..UxN`    — PE costs xN over `[F, U)`
    /// - `recover:TxR`       — ack timeout T, max R retries
    /// - `none`              — the empty plan
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(FaultPlan::default());
        }
        let mut plan = FaultPlan::default();
        for term in s.split('+') {
            let term = term.trim();
            let (kind, rest) = split2(term, ":", "fault term")?;
            match kind {
                "crash" => {
                    let (pe, at) = split2(rest, "@", "crash term")?;
                    plan.pe_crashes.push(PeCrash {
                        pe: parse_u32(pe, "crash PE")?,
                        at: parse_u64(at, "crash time")?,
                    });
                }
                "link" => {
                    let (ch, window) = split2(rest, "@", "link term")?;
                    let (from, until) = split2(window, "..", "link window")?;
                    plan.link_windows.push(LinkWindow {
                        channel: parse_u32(ch, "link channel")?,
                        down_at: parse_u64(from, "link down time")?,
                        up_at: parse_u64(until, "link up time")?,
                    });
                }
                "loss" => {
                    let pct = rest.strip_suffix('%').ok_or_else(|| {
                        ParseFaultPlanError(format!("loss rate must end in `%`, got `{rest}`"))
                    })?;
                    let pct: f64 = pct
                        .parse()
                        .map_err(|_| ParseFaultPlanError(format!("bad loss percentage `{pct}`")))?;
                    plan.message_loss = pct / 100.0;
                }
                "slow" => {
                    let (pe, rest) = split2(rest, "@", "slow term")?;
                    let (window, factor) = rest.rsplit_once('x').ok_or_else(|| {
                        ParseFaultPlanError(format!("expected `x` in slow term, got `{rest}`"))
                    })?;
                    let (from, until) = split2(window, "..", "slow window")?;
                    plan.slowdowns.push(Slowdown {
                        pe: parse_u32(pe, "slow PE")?,
                        from: parse_u64(from, "slow start")?,
                        until: parse_u64(until, "slow end")?,
                        factor: parse_u64(factor, "slow factor")?,
                    });
                }
                "recover" => {
                    let (timeout, retries) = split2(rest, "x", "recover term")?;
                    plan.recovery = Some(RecoveryParams {
                        ack_timeout: parse_u64(timeout, "ack timeout")?,
                        max_retries: parse_u32(retries, "max retries")?,
                    });
                }
                other => {
                    return Err(ParseFaultPlanError(format!(
                        "unknown fault term `{other}` (expected crash/link/loss/slow/recover)"
                    )));
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::default().crash(0, 10).is_empty());
        assert!(!FaultPlan::default().with_loss(0.01).is_empty());
        assert!(!FaultPlan::default()
            .with_recovery(RecoveryParams::default())
            .is_empty());
    }

    #[test]
    fn validate_catches_out_of_range_entries() {
        let plan = FaultPlan::default().crash(9, 10);
        assert!(plan.validate(9, 12).is_err());
        assert!(plan.validate(10, 12).is_ok());

        let plan = FaultPlan::default().link_down(12, 5, 10);
        assert!(plan.validate(16, 12).is_err());
        assert!(plan.validate(16, 13).is_ok());

        let backwards = FaultPlan::default().link_down(0, 10, 10);
        assert!(backwards.validate(16, 12).is_err());

        let plan = FaultPlan::default().slow(3, 0, 100, 0);
        assert!(plan.validate(16, 12).is_err());

        let mut plan = FaultPlan::default().with_loss(1.0);
        assert!(plan.validate(16, 12).is_err());
        plan.message_loss = 0.5;
        assert!(plan.validate(16, 12).is_ok());
    }

    #[test]
    fn validate_catches_duplicate_crashes_and_overlapping_windows() {
        let twice = FaultPlan::default().crash(3, 100).crash(3, 500);
        let err = twice.validate(16, 12).unwrap_err();
        assert!(err.contains("crashed twice"), "{err}");
        // Two different PEs at the same instant are fine.
        let distinct = FaultPlan::default().crash(3, 100).crash(4, 100);
        assert!(distinct.validate(16, 12).is_ok());

        let overlap = FaultPlan::default()
            .link_down(2, 100, 300)
            .link_down(2, 250, 400);
        let err = overlap.validate(16, 12).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
        // Back-to-back windows on one channel do not overlap ([100,300) then
        // [300,400)), and identical windows on different channels are fine.
        let adjacent = FaultPlan::default()
            .link_down(2, 100, 300)
            .link_down(2, 300, 400)
            .link_down(3, 100, 300);
        assert!(adjacent.validate(16, 12).is_ok());
    }

    #[test]
    fn grammar_round_trips() {
        let plan = FaultPlan::default()
            .crash(7, 400)
            .link_down(3, 100, 250)
            .with_loss(0.01)
            .slow(2, 50, 150, 4)
            .with_recovery(RecoveryParams {
                ack_timeout: 500,
                max_retries: 6,
            });
        let text = plan.to_string();
        assert_eq!(
            text,
            "crash:7@400+link:3@100..250+loss:1%+slow:2@50..150x4+recover:500x6"
        );
        let parsed: FaultPlan = text.parse().unwrap();
        assert_eq!(parsed, plan);

        let empty: FaultPlan = "none".parse().unwrap();
        assert!(empty.is_empty());
        assert_eq!(FaultPlan::default().to_string(), "none");
    }

    #[test]
    fn grammar_rejects_malformed_terms() {
        assert!("crash:7".parse::<FaultPlan>().is_err());
        assert!("loss:1".parse::<FaultPlan>().is_err());
        assert!("loss:x%".parse::<FaultPlan>().is_err());
        assert!("link:0@5".parse::<FaultPlan>().is_err());
        assert!("slow:0@5..10".parse::<FaultPlan>().is_err());
        assert!("explode:everything".parse::<FaultPlan>().is_err());
        let err = "crash:a@5".parse::<FaultPlan>().unwrap_err();
        assert!(err.to_string().contains("crash PE"), "{err}");
    }
}
