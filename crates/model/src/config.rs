//! Machine-level configuration knobs.

use serde::{Deserialize, Serialize};

use crate::faults::FaultPlan;
use crate::open::OpenTraffic;
use crate::trace::TraceMode;

/// How PEs learn their neighbours' loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadInfoMode {
    /// The paper's mechanism: the load word is piggy-backed on every regular
    /// message, plus "a very short message to all the neighbors" broadcast
    /// every `period` units (0 disables the periodic broadcast).
    Piggyback { period: u64 },
    /// Ablation: neighbour loads are read instantaneously and exactly, with
    /// no messages. Isolates the effect of stale load information.
    Instant,
}

/// Which event-list implementation drives the simulation.
///
/// Both backends share the exact deterministic ordering contract (time, then
/// insertion sequence), so this knob changes throughput only — never a
/// simulated result. `tests/cross_queue.rs` pins Report equality across
/// backends on the full paper workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueBackend {
    /// Binary-heap event list — O(log n), kept for comparison runs.
    Heap,
    /// Calendar queue (unit-width timing wheel, Brown 1988) — O(1)
    /// amortized at the event densities the simulator produces, and the
    /// measured winner on the benchmark grid; the default.
    #[default]
    Calendar,
}

/// Which per-PE/per-channel state representation the machine uses.
///
/// Both representations produce bit-identical reports (pinned by
/// `tests/sparse_dense.rs`); the knob trades constant-factor speed on
/// small machines against bounded memory on huge ones. `Auto` (the
/// default) picks dense below [`StateMode::AUTO_SPARSE_THRESHOLD`] PEs
/// and sparse at or above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StateMode {
    /// Dense below [`StateMode::AUTO_SPARSE_THRESHOLD`] PEs, sparse above.
    #[default]
    Auto,
    /// Dense vectors indexed by PE/channel id — fastest, O(PEs + channels)
    /// memory even when almost everything is idle.
    Dense,
    /// Sparse maps holding only touched channels and latency records —
    /// O(active) memory, the mode that lets a 10^6-PE run fit in bounded
    /// RSS.
    Sparse,
}

impl StateMode {
    /// PE count at which `Auto` switches from dense to sparse state.
    pub const AUTO_SPARSE_THRESHOLD: usize = 65_536;
}

/// Order in which a PE picks its next work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// Oldest first (breadth-first-ish over the task tree) — ORACLE's
    /// behaviour and the default.
    Fifo,
    /// Newest first (depth-first over the task tree): the classic
    /// space-control discipline — queues stay short because subtrees are
    /// finished before siblings are started.
    Lifo,
    /// The queued goal with the greatest tree depth first; responses when
    /// no goal is queued.
    DeepestFirst,
}

/// Configuration of the simulated machine (everything that is not the
/// topology, the program, the strategy, or the cost model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// PE on which the root goal is injected at time zero.
    pub root_pe: u32,
    /// Width of the utilization sampling interval (the paper's load-monitor
    /// output interval), in time units.
    pub sampling_interval: u64,
    /// How neighbour-load information propagates.
    pub load_info: LoadInfoMode,
    /// Whether pending responses count toward the load metric. Read
    /// literally, the paper's metric — "the number of messages waiting to be
    /// processed" — includes responses, but with responses counted the
    /// Gradient Model's water-marks trip constantly (every combining PE
    /// looks abundant) and it sheds work far more aggressively than the
    /// paper observed (mean goal distance ~1.9 vs the paper's 0.92). The
    /// default is therefore `false` (load = queued goals, the task-queue
    /// length of Lin & Keller's formulation); `true` is kept as an ablation.
    pub count_responses_in_load: bool,
    /// Weight of "future commitments" in the load metric: each task waiting
    /// for responses adds this much to the PE's load. The paper's metric
    /// "ignores potential future commitments, indicated by the count of the
    /// tasks that are waiting for messages" — it suggests fixing that, which
    /// the Adaptive CWN preset does by setting this to a non-zero weight.
    pub future_commitment_weight: u32,
    /// When a PE sends a goal to a neighbour, optimistically bump its local
    /// view of that neighbour's load by one. Without this, consecutive
    /// subgoals created between load updates all chase the same "least
    /// loaded" neighbour.
    pub optimistic_accounting: bool,
    /// "We assume a communication co-processor to handle the routing and
    /// load-balancing functions." When `false`, every message arrival
    /// charges `software_routing_cost` of PE time, with message handling
    /// taking priority over user work — the paper predicts "the gradient
    /// model will suffer more" in this regime.
    pub coprocessor: bool,
    /// Keep each PE's full utilization time series (needed by the load
    /// monitor; costs memory in big sweeps).
    pub per_pe_series: bool,
    /// Safety valve: abort the run after this many events.
    pub max_events: u64,
    /// Window (in events) of the progress watchdog: a run in which no goal
    /// is created, executed, or combined across a full window is declared
    /// stalled. The default (one million events) is far wider than any
    /// legitimate quiet stretch; the knob exists mainly so tests can
    /// exercise watchdog crossings without million-event runs.
    #[serde(default = "default_progress_window")]
    pub progress_window: u64,
    /// Keep a structured trace of up to this many events (0 disables
    /// tracing; see [`crate::trace`]).
    pub trace_capacity: usize,
    /// What a full trace buffer does with further events: keep the first
    /// `trace_capacity` (the default) or ring-buffer the last.
    #[serde(default)]
    pub trace_mode: TraceMode,
    /// Run the engine profiler: per-event-kind counts and wall times,
    /// queue-depth high-water mark, control-message tag counters, exposed
    /// as `Report::profile`. Costs one clock read per event; wall times are
    /// nondeterministic, so leave this off (the default) for any run whose
    /// report is compared bit-for-bit.
    #[serde(default)]
    pub profile: bool,
    /// Order in which each PE picks its next work item.
    pub queue_discipline: QueueDiscipline,
    /// Event-list implementation (heap or calendar queue); affects
    /// throughput only, never simulated results.
    #[serde(default)]
    pub queue_backend: QueueBackend,
    /// Failure injection shorthand: kill one PE at a simulated instant.
    /// Folded into [`MachineConfig::fault_plan`] at machine construction;
    /// kept as a convenience knob for single-crash experiments. Runs that
    /// depended on the lost work end in [`crate::SimError::GoalsLost`]
    /// rather than a silent wrong answer.
    pub fail_pe: Option<(u32, u64)>,
    /// Deterministic fault schedule: PE crashes, link down windows,
    /// message loss, slowdowns, and the recovery layer. The empty plan
    /// (the default) adds no events and draws no random numbers.
    pub fault_plan: FaultPlan,
    /// Run the invariant auditor every this many processed events (0, the
    /// default, disables auditing). When enabled, the machine re-derives the
    /// task-conservation identity, queue-accounting counters, load-metric
    /// agreement, and channel busy-flag consistency from first principles at
    /// each audit point and aborts with
    /// [`crate::SimError::InvariantViolation`] on any mismatch. Auditing is
    /// a pure read of machine state: it schedules no events and draws no
    /// random numbers, so an audited run produces bit-identical reports to
    /// an unaudited one.
    #[serde(default)]
    pub audit_every: u64,
    /// Open-system traffic: `Some` replaces the single root goal with a
    /// stream of arriving requests (each spawning the workload's task tree)
    /// measured by steady-state sojourn times instead of completion time.
    /// `None` (the default) is the classic closed run. See [`crate::open`].
    #[serde(default)]
    pub open: Option<OpenTraffic>,
    /// Per-PE/per-channel state representation: dense vectors, sparse
    /// maps, or (the default) automatic by machine size. Never affects
    /// simulated results — only memory and constant-factor speed.
    #[serde(default)]
    pub state_mode: StateMode,
    /// Emit the per-PE report vectors (`per_pe_utilization`,
    /// `per_pe_goals`). Off by default so the report stays O(1) in the PE
    /// count; the streaming aggregates (utilization quantiles, top-K
    /// heavy hitters) are always present. The CLI exposes this as
    /// `--per-pe`.
    #[serde(default)]
    pub per_pe_metrics: bool,
    /// Heterogeneous-machine extension: each PE's execution costs are
    /// multiplied by a seeded per-PE factor drawn uniformly from
    /// `1..=pe_speed_spread`. 1 (the default) models the paper's uniform
    /// machine; larger values model mixed-speed hardware, where
    /// load-*informed* placement should matter more than load-oblivious
    /// scatter.
    pub pe_speed_spread: u64,
}

fn default_progress_window() -> u64 {
    crate::machine::PROGRESS_WINDOW
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            seed: 1,
            root_pe: 0,
            sampling_interval: 100,
            load_info: LoadInfoMode::Piggyback { period: 40 },
            count_responses_in_load: false,
            future_commitment_weight: 0,
            optimistic_accounting: true,
            coprocessor: true,
            per_pe_series: false,
            max_events: 500_000_000,
            progress_window: default_progress_window(),
            trace_capacity: 0,
            trace_mode: TraceMode::default(),
            profile: false,
            queue_discipline: QueueDiscipline::Fifo,
            queue_backend: QueueBackend::default(),
            fail_pe: None,
            fault_plan: FaultPlan::default(),
            audit_every: 0,
            open: None,
            state_mode: StateMode::default(),
            per_pe_metrics: false,
            pe_speed_spread: 1,
        }
    }
}

impl MachineConfig {
    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether a machine with `num_pes` PEs uses the sparse state
    /// representation under this config.
    pub fn sparse_state(&self, num_pes: usize) -> bool {
        match self.state_mode {
            StateMode::Dense => false,
            StateMode::Sparse => true,
            StateMode::Auto => num_pes > StateMode::AUTO_SPARSE_THRESHOLD,
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.sampling_interval == 0 {
            return Err("sampling_interval must be positive".into());
        }
        if self.max_events == 0 {
            return Err("max_events must be positive".into());
        }
        if self.progress_window == 0 {
            return Err("progress_window must be positive".into());
        }
        if self.pe_speed_spread == 0 {
            return Err("pe_speed_spread must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.fault_plan.message_loss) {
            return Err("fault_plan.message_loss must be in [0, 1)".into());
        }
        if let Some(open) = &self.open {
            open.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        MachineConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_sampling_interval_rejected() {
        let c = MachineConfig {
            sampling_interval: 0,
            ..MachineConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_seed_sets_seed() {
        assert_eq!(MachineConfig::default().with_seed(99).seed, 99);
    }

    #[test]
    fn state_mode_resolution() {
        let auto = MachineConfig::default();
        assert!(!auto.sparse_state(StateMode::AUTO_SPARSE_THRESHOLD));
        assert!(auto.sparse_state(StateMode::AUTO_SPARSE_THRESHOLD + 1));
        let dense = MachineConfig {
            state_mode: StateMode::Dense,
            ..MachineConfig::default()
        };
        assert!(!dense.sparse_state(usize::MAX));
        let sparse = MachineConfig {
            state_mode: StateMode::Sparse,
            ..MachineConfig::default()
        };
        assert!(sparse.sparse_state(1));
    }
}
