//! Per-PE state: work queue, the executing item, and waiting tasks.

use std::collections::VecDeque;

use oracle_des::{BusyTracker, FastHashMap, IntervalSeries, SimTime};
use oracle_topo::PeId;

use crate::config::QueueDiscipline;
use crate::message::{GoalId, GoalMsg, Packet};
use crate::program::{Expansion, TaskList, TaskSpec};

/// An item in a PE's work queue.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// An accepted goal awaiting execution.
    Goal(GoalMsg),
    /// A child's response awaiting combination into a waiting task.
    Response {
        /// The waiting task this response belongs to.
        goal: GoalId,
        /// The child goal that produced the response (the recovery layer's
        /// acknowledgment key).
        child: GoalId,
        /// The child's result.
        value: i64,
    },
    /// Message-handling work charged to the PE when no communication
    /// co-processor is configured: the arrived packet still to be acted on.
    Handle {
        /// The neighbour the packet came from.
        from: PeId,
        /// The packet awaiting handling.
        packet: Packet,
    },
    /// A strategy timer whose handler must be charged to the PE (no
    /// co-processor): e.g. one cycle of the Gradient Model's gradient
    /// process — "it needs to execute a more complex code and more
    /// frequently".
    TimerWork {
        /// The strategy's timer tag.
        tag: u64,
    },
}

/// What the PE is currently charging time for.
#[derive(Debug, Clone)]
pub enum Executing {
    /// Running a goal whose expansion has been determined.
    Goal(GoalMsg, Expansion),
    /// Combining one response into a waiting task.
    Response {
        goal: GoalId,
        child: GoalId,
        value: i64,
    },
    /// A waiting task spawning its next round of subgoals.
    Respawn { goal: GoalId, children: TaskList },
    /// Software routing / balancing work (no co-processor).
    Handle { from: PeId, packet: Packet },
    /// A strategy timer charged to the PE (no co-processor).
    TimerWork { tag: u64 },
}

/// A task that has spawned subgoals and awaits their responses. "Usually,
/// it is prohibitively expensive to move a task from a PE to another after
/// it has spawned sub-tasks" — waiting tasks are pinned to their PE.
#[derive(Debug, Clone)]
pub struct Waiting {
    /// The task's spec (needed for combining).
    pub spec: TaskSpec,
    /// Where this task's own parent waits.
    pub parent: Option<(PeId, GoalId)>,
    /// Responses still outstanding in the current round.
    pub pending: u32,
    /// Accumulated combination of responses received so far.
    pub acc: i64,
    /// 0-based round of spawning (for cyclic programs).
    pub round: u32,
    /// Hops the goal travelled before being executed here (kept for
    /// bookkeeping symmetry; the histogram is recorded at execution start).
    pub hops: u32,
}

/// The state of one processing element.
#[derive(Debug)]
pub struct Pe {
    /// This PE's id.
    pub id: PeId,
    /// FIFO of user work (goals and responses).
    pub queue: VecDeque<WorkItem>,
    /// Higher-priority queue of message-handling work (only used when no
    /// co-processor is configured).
    pub sys_queue: VecDeque<WorkItem>,
    /// The item currently charging PE time, if any.
    pub executing: Option<Executing>,
    /// When the current item started.
    pub exec_start: SimTime,
    /// When the current item completes.
    pub busy_until: SimTime,
    /// Tasks pinned here awaiting responses. Fast integer-keyed map: the
    /// lookup is on the response-delivery hot path.
    pub waiting: FastHashMap<GoalId, Waiting>,
    /// Last known load of each neighbour, indexed like
    /// `Topology::neighbors(id)`.
    pub known_load: Vec<u32>,
    /// Busy-time accounting.
    pub busy: BusyTracker,
    /// Interval-sampled utilization (the load-monitor stream).
    pub series: IntervalSeries,
    /// Number of goals in `queue` (excluding responses), maintained
    /// incrementally so the load metric is O(1).
    pub queued_goals: u32,
    /// Number of responses in `queue`.
    pub queued_responses: u32,
    /// Goals executed by this PE.
    pub goals_executed: u64,
    /// Execution-cost multiplier of this PE (1 = nominal speed; larger =
    /// slower hardware). Drawn per PE when the machine is heterogeneous.
    pub cost_factor: u64,
    /// True once the PE has been killed by failure injection.
    pub failed: bool,
    /// Transient cost multiplier from an open fault-plan slowdown window
    /// (1 = nominal). Applied on top of `cost_factor` to work started
    /// while the window is open.
    pub transient_factor: u64,
    /// High-water mark of the work queue length (the memory-footprint
    /// proxy; depth-first disciplines keep it small on tree workloads).
    pub peak_queue: usize,
}

impl Pe {
    /// A fresh idle PE with `degree` neighbours and the given sampling
    /// interval for its utilization series.
    pub fn new(id: PeId, degree: usize, sampling_interval: u64) -> Self {
        // Sized so steady-state enqueues stay allocation-free on the
        // paper workloads (queues rarely exceed a few dozen items).
        Self::with_queue_capacity(id, degree, sampling_interval, 32)
    }

    /// Like [`Pe::new`] but with no queue preallocation — the sparse state
    /// mode's constructor, where a million mostly idle PEs must not each
    /// hold a 32-slot buffer they will never fill. The first enqueue on an
    /// active PE allocates; the counting-allocator regression test runs on
    /// dense machines, where [`Pe::new`] keeps the hot path allocation-free.
    pub fn new_lean(id: PeId, degree: usize, sampling_interval: u64) -> Self {
        Self::with_queue_capacity(id, degree, sampling_interval, 0)
    }

    fn with_queue_capacity(id: PeId, degree: usize, sampling_interval: u64, cap: usize) -> Self {
        Pe {
            id,
            queue: VecDeque::with_capacity(cap),
            sys_queue: VecDeque::new(),
            executing: None,
            exec_start: SimTime::ZERO,
            busy_until: SimTime::ZERO,
            waiting: FastHashMap::default(),
            known_load: vec![0; degree],
            busy: BusyTracker::new(),
            series: IntervalSeries::new(sampling_interval),
            queued_goals: 0,
            queued_responses: 0,
            goals_executed: 0,
            cost_factor: 1,
            failed: false,
            transient_factor: 1,
            peak_queue: 0,
        }
    }

    /// The paper's load metric: messages waiting to be processed.
    /// `count_responses` selects whether pending responses count.
    #[inline]
    pub fn load(&self, count_responses: bool) -> u32 {
        if count_responses {
            self.queued_goals + self.queued_responses
        } else {
            self.queued_goals
        }
    }

    /// Number of tasks pinned here awaiting responses ("future
    /// commitments", the load-metric refinement the paper suggests).
    #[inline]
    pub fn waiting_tasks(&self) -> u32 {
        self.waiting.len() as u32
    }

    /// True if the PE is executing nothing and has no queued work.
    pub fn is_idle(&self) -> bool {
        self.executing.is_none() && self.queue.is_empty() && self.sys_queue.is_empty()
    }

    /// Enqueue a user work item.
    pub fn enqueue(&mut self, item: WorkItem) {
        match &item {
            WorkItem::Goal(_) => self.queued_goals += 1,
            WorkItem::Response { .. } => self.queued_responses += 1,
            WorkItem::Handle { .. } | WorkItem::TimerWork { .. } => {
                unreachable!("balancing work goes on the sys queue")
            }
        }
        self.queue.push_back(item);
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Dequeue the next work item: system (routing) work first, then user
    /// work per the configured discipline.
    pub fn dequeue(&mut self, discipline: QueueDiscipline) -> Option<WorkItem> {
        if let Some(item) = self.sys_queue.pop_front() {
            return Some(item);
        }
        let pos = match discipline {
            QueueDiscipline::Fifo => {
                if self.queue.is_empty() {
                    return None;
                }
                0
            }
            QueueDiscipline::Lifo => self.queue.len().checked_sub(1)?,
            QueueDiscipline::DeepestFirst => {
                if self.queue.is_empty() {
                    return None;
                }
                // Responses first (they shrink the waiting-task state),
                // then the deepest queued goal.
                if self.queued_responses > 0 {
                    self.queue
                        .iter()
                        .position(|w| matches!(w, WorkItem::Response { .. }))
                        .expect("queued_responses > 0")
                } else {
                    self.queue
                        .iter()
                        .enumerate()
                        .filter_map(|(i, w)| match w {
                            WorkItem::Goal(g) => Some((g.spec.depth, i)),
                            _ => None,
                        })
                        .max_by_key(|&(depth, i)| (depth, i))
                        .map(|(_, i)| i)
                        .unwrap_or(0)
                }
            }
        };
        let item = self.queue.remove(pos)?;
        match &item {
            WorkItem::Goal(_) => self.queued_goals -= 1,
            WorkItem::Response { .. } => self.queued_responses -= 1,
            WorkItem::Handle { .. } | WorkItem::TimerWork { .. } => {}
        }
        Some(item)
    }

    /// Remove the most recently queued goal (the Gradient Model exports
    /// work from its local queue; taking the newest preserves FIFO order of
    /// older work). Returns `None` if no goal is queued.
    pub fn take_newest_goal(&mut self) -> Option<GoalMsg> {
        let pos = self
            .queue
            .iter()
            .rposition(|w| matches!(w, WorkItem::Goal(_)))?;
        match self.queue.remove(pos) {
            Some(WorkItem::Goal(g)) => {
                self.queued_goals -= 1;
                Some(g)
            }
            _ => unreachable!("rposition pointed at a goal"),
        }
    }

    /// Remove the oldest queued goal.
    pub fn take_oldest_goal(&mut self) -> Option<GoalMsg> {
        let pos = self
            .queue
            .iter()
            .position(|w| matches!(w, WorkItem::Goal(_)))?;
        match self.queue.remove(pos) {
            Some(WorkItem::Goal(g)) => {
                self.queued_goals -= 1;
                Some(g)
            }
            _ => unreachable!("position pointed at a goal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QueueDiscipline;

    fn goal(id: u64) -> GoalMsg {
        GoalMsg {
            id: GoalId(id),
            spec: TaskSpec::new(0, 0),
            parent: None,
            hops: 0,
            direct: false,
            created_at: 0,
        }
    }

    #[test]
    fn load_counts_queued_messages() {
        let mut pe = Pe::new(PeId(0), 4, 10);
        pe.enqueue(WorkItem::Goal(goal(1)));
        pe.enqueue(WorkItem::Response {
            goal: GoalId(9),
            child: GoalId(10),
            value: 0,
        });
        assert_eq!(pe.load(true), 2);
        assert_eq!(pe.load(false), 1);
        assert_eq!(pe.waiting_tasks(), 0);
    }

    #[test]
    fn dequeue_is_fifo_and_maintains_counts() {
        let mut pe = Pe::new(PeId(0), 0, 10);
        pe.enqueue(WorkItem::Goal(goal(1)));
        pe.enqueue(WorkItem::Goal(goal(2)));
        assert!(
            matches!(pe.dequeue(QueueDiscipline::Fifo), Some(WorkItem::Goal(g)) if g.id == GoalId(1))
        );
        assert_eq!(pe.queued_goals, 1);
        assert!(
            matches!(pe.dequeue(QueueDiscipline::Fifo), Some(WorkItem::Goal(g)) if g.id == GoalId(2))
        );
        assert!(pe.dequeue(QueueDiscipline::Fifo).is_none());
        assert_eq!(pe.load(true), 0);
    }

    #[test]
    fn sys_queue_has_priority() {
        let mut pe = Pe::new(PeId(0), 0, 10);
        pe.enqueue(WorkItem::Goal(goal(1)));
        pe.sys_queue.push_back(WorkItem::Handle {
            from: PeId(1),
            packet: crate::message::Packet::LoadUpdate { load: 0 },
        });
        assert!(matches!(
            pe.dequeue(QueueDiscipline::Fifo),
            Some(WorkItem::Handle { .. })
        ));
        assert!(matches!(
            pe.dequeue(QueueDiscipline::Fifo),
            Some(WorkItem::Goal(_))
        ));
    }

    #[test]
    fn take_newest_goal_skips_responses() {
        let mut pe = Pe::new(PeId(0), 0, 10);
        pe.enqueue(WorkItem::Goal(goal(1)));
        pe.enqueue(WorkItem::Goal(goal(2)));
        pe.enqueue(WorkItem::Response {
            goal: GoalId(7),
            child: GoalId(8),
            value: 3,
        });
        let taken = pe.take_newest_goal().unwrap();
        assert_eq!(taken.id, GoalId(2));
        assert_eq!(pe.queued_goals, 1);
        assert_eq!(pe.queued_responses, 1);
        // FIFO order of the remainder is preserved.
        assert!(
            matches!(pe.dequeue(QueueDiscipline::Fifo), Some(WorkItem::Goal(g)) if g.id == GoalId(1))
        );
        assert!(matches!(
            pe.dequeue(QueueDiscipline::Fifo),
            Some(WorkItem::Response { .. })
        ));
    }

    #[test]
    fn take_oldest_goal() {
        let mut pe = Pe::new(PeId(0), 0, 10);
        pe.enqueue(WorkItem::Response {
            goal: GoalId(7),
            child: GoalId(8),
            value: 3,
        });
        pe.enqueue(WorkItem::Goal(goal(5)));
        pe.enqueue(WorkItem::Goal(goal(6)));
        assert_eq!(pe.take_oldest_goal().unwrap().id, GoalId(5));
        assert_eq!(pe.take_oldest_goal().unwrap().id, GoalId(6));
        assert!(pe.take_oldest_goal().is_none());
    }

    #[test]
    fn lifo_takes_newest_first() {
        let mut pe = Pe::new(PeId(0), 0, 10);
        pe.enqueue(WorkItem::Goal(goal(1)));
        pe.enqueue(WorkItem::Goal(goal(2)));
        assert!(
            matches!(pe.dequeue(QueueDiscipline::Lifo), Some(WorkItem::Goal(g)) if g.id == GoalId(2))
        );
        assert!(
            matches!(pe.dequeue(QueueDiscipline::Lifo), Some(WorkItem::Goal(g)) if g.id == GoalId(1))
        );
        assert!(pe.dequeue(QueueDiscipline::Lifo).is_none());
    }

    #[test]
    fn deepest_first_prefers_responses_then_depth() {
        let mut pe = Pe::new(PeId(0), 0, 10);
        let mut shallow = goal(1);
        shallow.spec.depth = 1;
        let mut deep = goal(2);
        deep.spec.depth = 5;
        pe.enqueue(WorkItem::Goal(shallow));
        pe.enqueue(WorkItem::Goal(deep));
        pe.enqueue(WorkItem::Response {
            goal: GoalId(9),
            child: GoalId(10),
            value: 1,
        });
        assert!(matches!(
            pe.dequeue(QueueDiscipline::DeepestFirst),
            Some(WorkItem::Response { .. })
        ));
        assert!(
            matches!(pe.dequeue(QueueDiscipline::DeepestFirst), Some(WorkItem::Goal(g)) if g.id == GoalId(2))
        );
        assert!(
            matches!(pe.dequeue(QueueDiscipline::DeepestFirst), Some(WorkItem::Goal(g)) if g.id == GoalId(1))
        );
    }

    #[test]
    fn peak_queue_tracks_high_water() {
        let mut pe = Pe::new(PeId(0), 0, 10);
        pe.enqueue(WorkItem::Goal(goal(1)));
        pe.enqueue(WorkItem::Goal(goal(2)));
        pe.dequeue(QueueDiscipline::Fifo);
        pe.enqueue(WorkItem::Goal(goal(3)));
        assert_eq!(pe.peak_queue, 2);
    }

    #[test]
    fn idle_transitions() {
        let mut pe = Pe::new(PeId(3), 2, 10);
        assert!(pe.is_idle());
        pe.enqueue(WorkItem::Goal(goal(1)));
        assert!(!pe.is_idle());
        pe.dequeue(QueueDiscipline::Fifo);
        assert!(pe.is_idle());
        pe.executing = Some(Executing::Handle {
            from: PeId(1),
            packet: crate::message::Packet::LoadUpdate { load: 0 },
        });
        assert!(!pe.is_idle());
    }
}
