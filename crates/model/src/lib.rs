//! # oracle-model — the ORACLE message-passing multiprocessor model
//!
//! This crate is the Rust equivalent of the paper's ORACLE simulator: a
//! model of a message-passing multiprocessor in which the two contended
//! resources are the processing elements (PEs) and the communication
//! channels. "ORACLE has one process for each user process running on a PE,
//! and one process for each communication channel. Thus it models contention
//! for the basic resources of a parallel system."
//!
//! The pieces:
//!
//! * [`program::Program`] — the simulated computation, a medium-grain task
//!   tree (a task runs briefly, then either completes or spawns subtasks and
//!   awaits their responses).
//! * [`strategy::Strategy`] — a dynamic, distributed load-distribution
//!   scheme, expressed as callbacks on goal creation/arrival, control
//!   messages, timers, and idleness. CWN, the Gradient Model, and the other
//!   schemes live in the `oracle-strategies` crate.
//! * [`cost::CostModel`] — the "times to be charged for primitive
//!   operations" that ORACLE took as input.
//! * [`machine::Machine`] — wires a topology, a program, and a strategy into
//!   an event-driven simulation and produces a [`metrics::Report`].

pub mod audit;
pub mod channel;
pub mod config;
pub mod cost;
pub mod error;
pub mod faults;
pub mod machine;
pub mod message;
pub mod metrics;
pub mod open;
pub mod parallel;
pub mod pe;
pub mod program;
pub mod snapshot;
pub mod sparse;
pub mod strategy;
pub mod trace;

pub use config::{LoadInfoMode, MachineConfig, QueueBackend, StateMode};
pub use cost::CostModel;
pub use error::SimError;
pub use faults::{FaultPlan, LinkWindow, PeCrash, RecoveryParams, Slowdown};
pub use machine::{Core, Machine};
pub use message::{ControlMsg, GoalId, GoalMsg};
pub use metrics::{FaultMetrics, OpenMetrics, OpenOutcome, Report, TopPe};
pub use open::{
    AdmissionPolicy, ArrivalProcess, ArrivalSpec, EdgeSet, OpenTraffic, ParseArrivalError,
    ParseOverloadError, RetryPolicy, ADMISSION_GRAMMAR, ARRIVAL_GRAMMAR, RETRY_GRAMMAR,
};
pub use parallel::{ineligibility, run_parallel, run_parallel_machine};
pub use program::{Continuation, Expansion, Program, TaskList, TaskSpec};
pub use strategy::{Strategy, StrategyState};
pub use trace::{Trace, TraceEvent, TraceMode};
