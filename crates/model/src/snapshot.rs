//! Machine-state snapshot codec — the model half of checkpoint/resume.
//!
//! [`Machine::snapshot_bytes`] serializes every piece of *mutable* run
//! state — both RNG streams, all counters and statistics collectors, every
//! PE (queues, executing item, waiting tasks, known loads), every channel
//! (in-flight transfer and backlog), the recovery layer's tracking map, the
//! watchdog/auditor cursors, the pending event queue, and the strategy's
//! private state — into a self-contained byte blob using the
//! [`oracle_des::snapshot`] codec. Immutable state (topology, cost model,
//! configuration, program, fault plan, precomputed adjacency tables) is
//! *not* serialized: a resume rebuilds it by constructing the machine from
//! the same run configuration, then calling [`Machine::restore_bytes`]
//! instead of [`Machine::begin`].
//!
//! The format is designed for bit-identical resumption: floating-point
//! statistics are stored as raw IEEE-754 bits, hash maps are written in
//! sorted key order, and the event queue is written in exact pop order (the
//! one order both backends define identically), so a resumed run replays
//! precisely the event sequence the uninterrupted run would have processed.
//!
//! The event trace and the engine profiler are deliberately not part of a
//! snapshot — both are observability aids, not simulated state: a resumed
//! run's trace and profile simply start at the resume point (the simulated
//! results stay bit-identical either way).

use oracle_des::snapshot::{SnapError, SnapReader, SnapWriter};
use oracle_des::{
    BusyTracker, FastHashMap, Histogram, IntervalSeries, LogHistogram, OnlineStats, QueueSnapshot,
    Rng, SimTime,
};
use oracle_topo::{ChannelId, PeId};

use crate::channel::Channel;
use crate::machine::{Event, Machine, Outstanding};
use crate::message::{ControlMsg, Flight, FlightDest, GoalId, GoalMsg, Packet};
use crate::open::{Inflight, OpenState, ProcessState};
use crate::pe::{Executing, Pe, Waiting, WorkItem};
use crate::program::{Expansion, TaskList, TaskSpec};
use crate::strategy::StrategyState;
use crate::SimError;

/// Magic prefix of a machine snapshot blob (`"MSNP"`).
pub const SNAPSHOT_MAGIC: u32 = 0x4D53_4E50;
/// Version of the machine snapshot layout. Bumped on any layout change;
/// restore refuses other versions rather than guessing.
///
/// v2 added the open-traffic block (arrival RNG, process cursor, in-flight
/// request table, sojourn/queue-length statistics).
///
/// v3 added the overload-protection block (retry RNG and pending-retry
/// table, token-bucket level, circuit-breaker table, shed/abandonment
/// counters, the `Retry` event tag, and per-request attempt counts).
///
/// v4 added the deterministic-ordering block of the sharded parallel
/// engine (per-PE RNG streams, per-actor event-key sequences, per-creator
/// goal-id sequences replacing the global goal counter, per-PE dispatch
/// latency accumulators, and explicit event-queue keys).
///
/// v5 made the per-channel table and the per-PE dispatch-latency
/// accumulators mode-agnostic: both now encode as a count of materialized
/// slots plus sorted `(id, state)` pairs, so sparse and dense machines
/// round-trip the same state bit-identically (an untouched sparse slot
/// and a pristine dense slot are the same state, and neither is encoded
/// when sparse).
pub const SNAPSHOT_VERSION: u32 = 5;

/// Why a restore failed: the blob itself was undecodable, or it decoded
/// fine but does not belong to this machine.
enum RestoreFail {
    Codec(SnapError),
    Mismatch(String),
}

impl From<SnapError> for RestoreFail {
    fn from(e: SnapError) -> Self {
        RestoreFail::Codec(e)
    }
}

// ---------------------------------------------------------------------
// Field codecs, in dependency order. Writers take the value; readers
// return `Result<_, SnapError>` so truncation surfaces as `Eof`.
// ---------------------------------------------------------------------

fn put_opt_u32(w: &mut SnapWriter, v: Option<u32>) {
    match v {
        Some(x) => {
            w.bool(true);
            w.u32(x);
        }
        None => w.bool(false),
    }
}

fn get_opt_u32(r: &mut SnapReader) -> Result<Option<u32>, SnapError> {
    Ok(if r.bool()? { Some(r.u32()?) } else { None })
}

fn put_spec(w: &mut SnapWriter, s: &TaskSpec) {
    w.i64(s.a);
    w.i64(s.b);
    w.u32(s.depth);
    w.u32(s.tag);
}

fn get_spec(r: &mut SnapReader) -> Result<TaskSpec, SnapError> {
    Ok(TaskSpec {
        a: r.i64()?,
        b: r.i64()?,
        depth: r.u32()?,
        tag: r.u32()?,
    })
}

fn put_parent(w: &mut SnapWriter, p: &Option<(PeId, GoalId)>) {
    match p {
        Some((pe, goal)) => {
            w.bool(true);
            w.u32(pe.0);
            w.u64(goal.0);
        }
        None => w.bool(false),
    }
}

fn get_parent(r: &mut SnapReader) -> Result<Option<(PeId, GoalId)>, SnapError> {
    Ok(if r.bool()? {
        Some((PeId(r.u32()?), GoalId(r.u64()?)))
    } else {
        None
    })
}

/// Encode a [`GoalMsg`] into a snapshot payload. Public so strategies that
/// park goals (e.g. threshold probing) can serialize them inside their
/// [`StrategyState`] bytes with the same codec the machine uses.
pub fn put_goal(w: &mut SnapWriter, g: &GoalMsg) {
    w.u64(g.id.0);
    put_spec(w, &g.spec);
    put_parent(w, &g.parent);
    w.u32(g.hops);
    w.bool(g.direct);
    w.u64(g.created_at);
}

/// Decode a [`GoalMsg`] written by [`put_goal`].
pub fn get_goal(r: &mut SnapReader) -> Result<GoalMsg, SnapError> {
    Ok(GoalMsg {
        id: GoalId(r.u64()?),
        spec: get_spec(r)?,
        parent: get_parent(r)?,
        hops: r.u32()?,
        direct: r.bool()?,
        created_at: r.u64()?,
    })
}

fn put_packet(w: &mut SnapWriter, p: &Packet) {
    match p {
        Packet::Goal(g) => {
            w.u8(0);
            put_goal(w, g);
        }
        Packet::Response { to, child, value } => {
            w.u8(1);
            w.u32(to.0 .0);
            w.u64(to.1 .0);
            w.u64(child.0);
            w.i64(*value);
        }
        Packet::Control(c) => {
            w.u8(2);
            w.u8(c.tag);
            w.i64(c.value);
        }
        Packet::LoadUpdate { load } => {
            w.u8(3);
            w.u32(*load);
        }
    }
}

fn get_packet(r: &mut SnapReader) -> Result<Packet, SnapError> {
    Ok(match r.u8()? {
        0 => Packet::Goal(get_goal(r)?),
        1 => Packet::Response {
            to: (PeId(r.u32()?), GoalId(r.u64()?)),
            child: GoalId(r.u64()?),
            value: r.i64()?,
        },
        2 => Packet::Control(ControlMsg {
            tag: r.u8()?,
            value: r.i64()?,
        }),
        3 => Packet::LoadUpdate { load: r.u32()? },
        t => {
            return Err(SnapError::Invalid {
                what: "packet tag",
                value: t as u64,
            })
        }
    })
}

fn put_flight(w: &mut SnapWriter, f: &Flight) {
    w.u32(f.from.0);
    match f.dest {
        FlightDest::Unicast(pe) => {
            w.u8(0);
            w.u32(pe.0);
        }
        FlightDest::Broadcast => w.u8(1),
    }
    put_opt_u32(w, f.piggyback_load);
    put_packet(w, &f.packet);
}

fn get_flight(r: &mut SnapReader) -> Result<Flight, SnapError> {
    let from = PeId(r.u32()?);
    let dest = match r.u8()? {
        0 => FlightDest::Unicast(PeId(r.u32()?)),
        1 => FlightDest::Broadcast,
        t => {
            return Err(SnapError::Invalid {
                what: "flight dest tag",
                value: t as u64,
            })
        }
    };
    Ok(Flight {
        from,
        dest,
        piggyback_load: get_opt_u32(r)?,
        packet: get_packet(r)?,
    })
}

fn put_work_item(w: &mut SnapWriter, item: &WorkItem) {
    match item {
        WorkItem::Goal(g) => {
            w.u8(0);
            put_goal(w, g);
        }
        WorkItem::Response { goal, child, value } => {
            w.u8(1);
            w.u64(goal.0);
            w.u64(child.0);
            w.i64(*value);
        }
        WorkItem::Handle { from, packet } => {
            w.u8(2);
            w.u32(from.0);
            put_packet(w, packet);
        }
        WorkItem::TimerWork { tag } => {
            w.u8(3);
            w.u64(*tag);
        }
    }
}

fn get_work_item(r: &mut SnapReader) -> Result<WorkItem, SnapError> {
    Ok(match r.u8()? {
        0 => WorkItem::Goal(get_goal(r)?),
        1 => WorkItem::Response {
            goal: GoalId(r.u64()?),
            child: GoalId(r.u64()?),
            value: r.i64()?,
        },
        2 => WorkItem::Handle {
            from: PeId(r.u32()?),
            packet: get_packet(r)?,
        },
        3 => WorkItem::TimerWork { tag: r.u64()? },
        t => {
            return Err(SnapError::Invalid {
                what: "work item tag",
                value: t as u64,
            })
        }
    })
}

fn put_task_list(w: &mut SnapWriter, list: &TaskList) {
    w.usize(list.len());
    for spec in list {
        put_spec(w, spec);
    }
}

fn get_task_list(r: &mut SnapReader) -> Result<TaskList, SnapError> {
    let n = r.usize()?;
    let mut list = TaskList::new();
    for _ in 0..n {
        list.push(get_spec(r)?);
    }
    Ok(list)
}

fn put_expansion(w: &mut SnapWriter, e: &Expansion) {
    match e {
        Expansion::Leaf(v) => {
            w.u8(0);
            w.i64(*v);
        }
        Expansion::Split(children) => {
            w.u8(1);
            put_task_list(w, children);
        }
    }
}

fn get_expansion(r: &mut SnapReader) -> Result<Expansion, SnapError> {
    Ok(match r.u8()? {
        0 => Expansion::Leaf(r.i64()?),
        1 => Expansion::Split(get_task_list(r)?),
        t => {
            return Err(SnapError::Invalid {
                what: "expansion tag",
                value: t as u64,
            })
        }
    })
}

fn put_executing(w: &mut SnapWriter, e: &Executing) {
    match e {
        Executing::Goal(g, exp) => {
            w.u8(0);
            put_goal(w, g);
            put_expansion(w, exp);
        }
        Executing::Response { goal, child, value } => {
            w.u8(1);
            w.u64(goal.0);
            w.u64(child.0);
            w.i64(*value);
        }
        Executing::Respawn { goal, children } => {
            w.u8(2);
            w.u64(goal.0);
            put_task_list(w, children);
        }
        Executing::Handle { from, packet } => {
            w.u8(3);
            w.u32(from.0);
            put_packet(w, packet);
        }
        Executing::TimerWork { tag } => {
            w.u8(4);
            w.u64(*tag);
        }
    }
}

fn get_executing(r: &mut SnapReader) -> Result<Executing, SnapError> {
    Ok(match r.u8()? {
        0 => Executing::Goal(get_goal(r)?, get_expansion(r)?),
        1 => Executing::Response {
            goal: GoalId(r.u64()?),
            child: GoalId(r.u64()?),
            value: r.i64()?,
        },
        2 => Executing::Respawn {
            goal: GoalId(r.u64()?),
            children: get_task_list(r)?,
        },
        3 => Executing::Handle {
            from: PeId(r.u32()?),
            packet: get_packet(r)?,
        },
        4 => Executing::TimerWork { tag: r.u64()? },
        t => {
            return Err(SnapError::Invalid {
                what: "executing tag",
                value: t as u64,
            })
        }
    })
}

fn put_event(w: &mut SnapWriter, ev: &Event) {
    match ev {
        Event::PeDone(pe) => {
            w.u8(0);
            w.u32(pe.0);
        }
        Event::ChannelDone(ch) => {
            w.u8(1);
            w.u32(ch.0);
        }
        Event::Timer(pe, tag) => {
            w.u8(2);
            w.u32(pe.0);
            w.u64(*tag);
        }
        Event::LoadBcast(pe) => {
            w.u8(3);
            w.u32(pe.0);
        }
        Event::FailPe(pe) => {
            w.u8(4);
            w.u32(pe.0);
        }
        Event::LinkDown(ch) => {
            w.u8(5);
            w.u32(ch.0);
        }
        Event::LinkUp(ch) => {
            w.u8(6);
            w.u32(ch.0);
        }
        Event::SlowStart(pe, factor) => {
            w.u8(7);
            w.u32(pe.0);
            w.u64(*factor);
        }
        Event::SlowEnd(pe) => {
            w.u8(8);
            w.u32(pe.0);
        }
        Event::AckTimeout(goal) => {
            w.u8(9);
            w.u64(goal.0);
        }
        Event::Arrival => w.u8(10),
        Event::Retry(goal) => {
            w.u8(11);
            w.u64(goal.0);
        }
    }
}

fn get_event(r: &mut SnapReader) -> Result<Event, SnapError> {
    Ok(match r.u8()? {
        0 => Event::PeDone(PeId(r.u32()?)),
        1 => Event::ChannelDone(ChannelId(r.u32()?)),
        2 => Event::Timer(PeId(r.u32()?), r.u64()?),
        3 => Event::LoadBcast(PeId(r.u32()?)),
        4 => Event::FailPe(PeId(r.u32()?)),
        5 => Event::LinkDown(ChannelId(r.u32()?)),
        6 => Event::LinkUp(ChannelId(r.u32()?)),
        7 => Event::SlowStart(PeId(r.u32()?), r.u64()?),
        8 => Event::SlowEnd(PeId(r.u32()?)),
        9 => Event::AckTimeout(GoalId(r.u64()?)),
        10 => Event::Arrival,
        11 => Event::Retry(GoalId(r.u64()?)),
        t => {
            return Err(SnapError::Invalid {
                what: "event tag",
                value: t as u64,
            })
        }
    })
}

fn put_stats(w: &mut SnapWriter, s: &OnlineStats) {
    let (count, mean, m2, min, max) = s.raw_parts();
    w.u64(count);
    w.f64(mean);
    w.f64(m2);
    w.f64(min);
    w.f64(max);
}

fn get_stats(r: &mut SnapReader) -> Result<OnlineStats, SnapError> {
    let count = r.u64()?;
    let mean = r.f64()?;
    let m2 = r.f64()?;
    let min = r.f64()?;
    let max = r.f64()?;
    Ok(OnlineStats::from_raw_parts(count, mean, m2, min, max))
}

fn put_hist(w: &mut SnapWriter, h: &Histogram) {
    let (buckets, overflow, total, sum) = h.raw_parts();
    w.usize(buckets.len());
    for &b in buckets {
        w.u64(b);
    }
    w.u64(overflow);
    w.u64(total);
    w.u64(sum);
}

fn get_hist(r: &mut SnapReader) -> Result<Histogram, SnapError> {
    let n = r.usize()?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push(r.u64()?);
    }
    let overflow = r.u64()?;
    let total = r.u64()?;
    let sum = r.u64()?;
    Ok(Histogram::from_raw_parts(buckets, overflow, total, sum))
}

fn put_log_hist(w: &mut SnapWriter, h: &LogHistogram) {
    let (buckets, total, sum, max) = h.raw_parts();
    w.usize(buckets.len());
    for &b in buckets {
        w.u64(b);
    }
    w.u64(total);
    w.f64(sum);
    w.u64(max);
}

fn get_log_hist(r: &mut SnapReader) -> Result<LogHistogram, SnapError> {
    let n = r.usize()?;
    if n != LogHistogram::new().raw_parts().0.len() {
        return Err(SnapError::Invalid {
            what: "log histogram bucket count",
            value: n as u64,
        });
    }
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push(r.u64()?);
    }
    let total = r.u64()?;
    let sum = r.f64()?;
    let max = r.u64()?;
    Ok(LogHistogram::from_raw_parts(buckets, total, sum, max))
}

/// Serialize the mutable open-traffic state. The immutable parameters
/// (rates, edge list, windows, threshold, trace entries) are rebuilt from
/// the run configuration on restore; only the cursors, counters, tables,
/// and statistics travel in the blob.
fn put_open(w: &mut SnapWriter, open: &OpenState) {
    put_rng(w, &open.rng);
    match &open.process {
        ProcessState::Poisson { .. } => w.u8(0),
        ProcessState::Burst { on, phase_end, .. } => {
            w.u8(1);
            w.bool(*on);
            w.u64(*phase_end);
        }
        ProcessState::Diurnal { .. } => w.u8(2),
        ProcessState::Trace { idx, .. } => {
            w.u8(3);
            w.usize(*idx);
        }
    }
    w.u32(open.edge_idx);
    w.u64(open.next_request);
    w.u64(open.arrivals_total);
    w.u64(open.completions_total);
    match open.saturated {
        Some((at, inflight)) => {
            w.bool(true);
            w.u64(at);
            w.u64(inflight);
        }
        None => w.bool(false),
    }
    w.u64(open.qlen_cur);
    w.u64(open.qlen_last);
    put_log_hist(w, &open.sojourn);
    put_stats(w, &open.sojourn_stats);
    put_log_hist(w, &open.qlen_hist);
    // In-flight requests in sorted goal-id order — map iteration order
    // must not leak into the blob.
    put_inflight_map(w, &open.inflight);
    // Overload-protection runtime state (v3): retry stream and pending
    // re-injections, token-bucket level (raw f64 bits), breaker table in
    // sorted (pe, neighbour) order, and the shed/abandonment counters.
    put_rng(w, &open.retry_rng);
    w.f64(open.tokens);
    w.u64(open.tokens_last);
    put_inflight_map(w, &open.retry_pending);
    let mut keys: Vec<(u32, u32)> = open.breaker.keys().copied().collect();
    keys.sort_unstable();
    w.usize(keys.len());
    for key in keys {
        w.u32(key.0);
        w.u32(key.1);
        w.u64(open.breaker[&key]);
    }
    w.u64(open.shed_total);
    w.u64(open.abandoned_deadline);
    w.u64(open.abandoned_deadline_measured);
    w.u64(open.abandoned_retries);
    w.u64(open.retries_total);
    w.u64(open.breaker_opens);
}

/// Write a goal-id → in-flight-request table in sorted goal-id order (map
/// iteration order must not leak into the blob).
fn put_inflight_map(w: &mut SnapWriter, map: &FastHashMap<GoalId, Inflight>) {
    let mut ids: Vec<GoalId> = map.keys().copied().collect();
    ids.sort_unstable();
    w.usize(ids.len());
    for id in ids {
        let infl = map[&id];
        w.u64(id.0);
        w.u64(infl.request);
        w.u64(infl.arrived);
        w.u32(infl.attempts);
    }
}

fn get_inflight_map(r: &mut SnapReader) -> Result<FastHashMap<GoalId, Inflight>, SnapError> {
    let mut map = FastHashMap::default();
    for _ in 0..r.usize()? {
        let id = GoalId(r.u64()?);
        let infl = Inflight {
            request: r.u64()?,
            arrived: r.u64()?,
            attempts: r.u32()?,
        };
        map.insert(id, infl);
    }
    Ok(map)
}

/// Restore state written by [`put_open`] into the freshly built
/// [`OpenState`] (whose immutable parameters came from the configuration).
fn get_open(r: &mut SnapReader, open: &mut OpenState) -> Result<(), RestoreFail> {
    open.rng = get_rng(r)?;
    let tag = r.u8()?;
    match (&mut open.process, tag) {
        (ProcessState::Poisson { .. }, 0) => {}
        (ProcessState::Burst { on, phase_end, .. }, 1) => {
            *on = r.bool()?;
            *phase_end = r.u64()?;
        }
        (ProcessState::Diurnal { .. }, 2) => {}
        (ProcessState::Trace { entries, idx }, 3) => {
            let i = r.usize()?;
            if i > entries.len() {
                return Err(RestoreFail::Mismatch(format!(
                    "snapshot arrival-trace cursor {i} exceeds this machine's trace \
                     length {}",
                    entries.len()
                )));
            }
            *idx = i;
        }
        (_, t) => {
            return Err(RestoreFail::Mismatch(format!(
                "snapshot arrival process (tag {t}) does not match this machine's \
                 configured process"
            )))
        }
    }
    open.edge_idx = r.u32()?;
    open.next_request = r.u64()?;
    open.arrivals_total = r.u64()?;
    open.completions_total = r.u64()?;
    open.saturated = if r.bool()? {
        Some((r.u64()?, r.u64()?))
    } else {
        None
    };
    open.qlen_cur = r.u64()?;
    open.qlen_last = r.u64()?;
    open.sojourn = get_log_hist(r)?;
    open.sojourn_stats = get_stats(r)?;
    open.qlen_hist = get_log_hist(r)?;
    open.inflight = get_inflight_map(r)?;
    open.retry_rng = get_rng(r)?;
    open.tokens = r.f64()?;
    open.tokens_last = r.u64()?;
    open.retry_pending = get_inflight_map(r)?;
    open.breaker = FastHashMap::default();
    for _ in 0..r.usize()? {
        let key = (r.u32()?, r.u32()?);
        let until = r.u64()?;
        open.breaker.insert(key, until);
    }
    open.shed_total = r.u64()?;
    open.abandoned_deadline = r.u64()?;
    open.abandoned_deadline_measured = r.u64()?;
    open.abandoned_retries = r.u64()?;
    open.retries_total = r.u64()?;
    open.breaker_opens = r.u64()?;
    Ok(())
}

fn put_busy(w: &mut SnapWriter, b: &BusyTracker) {
    let (since, accumulated) = b.raw_parts();
    match since {
        Some(t) => {
            w.bool(true);
            w.u64(t.units());
        }
        None => w.bool(false),
    }
    w.u64(accumulated);
}

fn get_busy(r: &mut SnapReader) -> Result<BusyTracker, SnapError> {
    let since = if r.bool()? {
        Some(SimTime(r.u64()?))
    } else {
        None
    };
    let accumulated = r.u64()?;
    Ok(BusyTracker::from_raw_parts(since, accumulated))
}

fn put_series(w: &mut SnapWriter, s: &IntervalSeries) {
    let (width, busy) = s.raw_parts();
    w.u64(width);
    w.usize(busy.len());
    for &b in busy {
        w.u64(b);
    }
}

fn get_series(r: &mut SnapReader) -> Result<IntervalSeries, SnapError> {
    let width = r.u64()?;
    if width == 0 {
        return Err(SnapError::Invalid {
            what: "interval series width",
            value: 0,
        });
    }
    let n = r.usize()?;
    let mut busy = Vec::with_capacity(n);
    for _ in 0..n {
        busy.push(r.u64()?);
    }
    Ok(IntervalSeries::from_raw_parts(width, busy))
}

fn put_rng(w: &mut SnapWriter, rng: &Rng) {
    for word in rng.state() {
        w.u64(word);
    }
}

fn get_rng(r: &mut SnapReader) -> Result<Rng, SnapError> {
    let mut s = [0u64; 4];
    for word in &mut s {
        *word = r.u64()?;
    }
    Ok(Rng::from_state(s))
}

fn put_pe(w: &mut SnapWriter, pe: &Pe) {
    w.usize(pe.queue.len());
    for item in &pe.queue {
        put_work_item(w, item);
    }
    w.usize(pe.sys_queue.len());
    for item in &pe.sys_queue {
        put_work_item(w, item);
    }
    match &pe.executing {
        Some(e) => {
            w.bool(true);
            put_executing(w, e);
        }
        None => w.bool(false),
    }
    w.u64(pe.exec_start.units());
    w.u64(pe.busy_until.units());
    // Waiting tasks in sorted goal-id order: map iteration order must not
    // leak into the blob or two snapshots of one state could differ.
    let mut ids: Vec<GoalId> = pe.waiting.keys().copied().collect();
    ids.sort_unstable();
    w.usize(ids.len());
    for id in ids {
        let wt = &pe.waiting[&id];
        w.u64(id.0);
        put_spec(w, &wt.spec);
        put_parent(w, &wt.parent);
        w.u32(wt.pending);
        w.i64(wt.acc);
        w.u32(wt.round);
        w.u32(wt.hops);
    }
    w.usize(pe.known_load.len());
    for &l in &pe.known_load {
        w.u32(l);
    }
    put_busy(w, &pe.busy);
    put_series(w, &pe.series);
    w.u32(pe.queued_goals);
    w.u32(pe.queued_responses);
    w.u64(pe.goals_executed);
    w.u64(pe.cost_factor);
    w.bool(pe.failed);
    w.u64(pe.transient_factor);
    w.usize(pe.peak_queue);
}

fn get_pe(r: &mut SnapReader, pe: &mut Pe) -> Result<(), RestoreFail> {
    pe.queue.clear();
    for _ in 0..r.usize()? {
        pe.queue.push_back(get_work_item(r)?);
    }
    pe.sys_queue.clear();
    for _ in 0..r.usize()? {
        pe.sys_queue.push_back(get_work_item(r)?);
    }
    pe.executing = if r.bool()? {
        Some(get_executing(r)?)
    } else {
        None
    };
    pe.exec_start = SimTime(r.u64()?);
    pe.busy_until = SimTime(r.u64()?);
    pe.waiting = FastHashMap::default();
    for _ in 0..r.usize()? {
        let id = GoalId(r.u64()?);
        let wt = Waiting {
            spec: get_spec(r)?,
            parent: get_parent(r)?,
            pending: r.u32()?,
            acc: r.i64()?,
            round: r.u32()?,
            hops: r.u32()?,
        };
        pe.waiting.insert(id, wt);
    }
    let degree = r.usize()?;
    if degree != pe.known_load.len() {
        return Err(RestoreFail::Mismatch(format!(
            "snapshot PE {} has degree {degree} but this machine's has {}",
            pe.id.0,
            pe.known_load.len()
        )));
    }
    for slot in &mut pe.known_load {
        *slot = r.u32()?;
    }
    pe.busy = get_busy(r)?;
    pe.series = get_series(r)?;
    pe.queued_goals = r.u32()?;
    pe.queued_responses = r.u32()?;
    pe.goals_executed = r.u64()?;
    pe.cost_factor = r.u64()?;
    pe.failed = r.bool()?;
    pe.transient_factor = r.u64()?;
    pe.peak_queue = r.usize()?;
    Ok(())
}

fn put_channel(w: &mut SnapWriter, ch: &Channel) {
    match &ch.in_flight {
        Some(f) => {
            w.bool(true);
            put_flight(w, f);
        }
        None => w.bool(false),
    }
    w.usize(ch.backlog.len());
    for f in &ch.backlog {
        put_flight(w, f);
    }
    put_busy(w, &ch.busy);
    w.u64(ch.transfers);
    w.usize(ch.max_backlog);
    w.bool(ch.down);
}

fn get_channel(r: &mut SnapReader, ch: &mut Channel) -> Result<(), SnapError> {
    ch.in_flight = if r.bool()? {
        Some(get_flight(r)?)
    } else {
        None
    };
    ch.backlog.clear();
    for _ in 0..r.usize()? {
        ch.backlog.push_back(get_flight(r)?);
    }
    ch.busy = get_busy(r)?;
    ch.transfers = r.u64()?;
    ch.max_backlog = r.usize()?;
    ch.down = r.bool()?;
    Ok(())
}

impl Machine {
    /// Serialize the machine's complete mutable state. Restoring the bytes
    /// into a machine freshly constructed from the same run configuration
    /// (via [`Machine::restore_bytes`]) continues the run bit-identically.
    ///
    /// Takes `&mut self` because serializing the event queue drains and
    /// rebuilds it (pop order is the one canonical order both backends
    /// share); the machine's observable state is unchanged.
    pub fn snapshot_bytes(&mut self) -> Vec<u8> {
        let queue = self.core.events.take_snapshot();
        let mut w = SnapWriter::with_capacity(4096);
        w.u32(SNAPSHOT_MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.usize(self.core.pes.len());
        w.usize(self.core.channels.len());
        put_rng(&mut w, &self.core.rng);
        put_rng(&mut w, &self.core.fault_rng);
        for rng in &self.core.pe_rngs {
            put_rng(&mut w, rng);
        }
        for &s in &self.core.key_seq {
            w.u32(s);
        }
        for &s in &self.core.goal_seq {
            w.u32(s);
        }
        w.u64(self.core.goals_created);
        w.u64(self.core.goals_executed);
        w.u64(self.core.responses_processed);
        w.u64(self.core.seq_work);
        w.u64(self.core.traffic.goal_hops);
        w.u64(self.core.traffic.response_hops);
        w.u64(self.core.traffic.control_msgs);
        w.u64(self.core.traffic.load_updates);
        put_hist(&mut w, &self.core.hop_hist);
        // Dispatch-latency accumulators as sorted (pe, stats) pairs: the
        // materialized slots only, so sparse machines encode O(touched).
        let dispatch_slots = self.core.dispatch_latency.present();
        w.usize(dispatch_slots.len());
        for (pe, s) in dispatch_slots {
            w.u32(pe);
            put_stats(&mut w, s);
        }
        put_series(&mut w, &self.core.global_series);
        match self.core.root_result {
            Some((v, t)) => {
                w.bool(true);
                w.i64(v);
                w.u64(t.units());
            }
            None => w.bool(false),
        }
        w.u64(self.core.last_progress.0);
        w.u64(self.core.last_progress.1);
        w.u64(self.core.last_progress.2);
        w.u64(self.core.next_check);
        w.u64(self.core.next_audit);
        w.u64(self.core.last_audit_now);
        // Fault / recovery state, tracking map in sorted goal-id order.
        let f = &self.core.faults;
        let mut ids: Vec<GoalId> = f.outstanding.keys().copied().collect();
        ids.sort_unstable();
        w.usize(ids.len());
        for id in ids {
            let o = &f.outstanding[&id];
            w.u64(id.0);
            put_parent(&mut w, &o.parent);
            put_spec(&mut w, &o.spec);
            w.u32(o.attempts);
            w.u64(o.first_created);
            put_opt_u32(&mut w, o.resident.map(|pe| pe.0));
        }
        w.u32(f.pes_crashed);
        w.u64(f.goals_lost);
        w.u64(f.messages_dropped);
        w.u64(f.goals_respawned);
        w.u64(f.duplicate_responses);
        w.u64(f.retries_exhausted);
        put_stats(&mut w, &f.recovery_latency);
        // Open-traffic runtime state; presence must match the restoring
        // machine's configuration.
        match self.core.open.as_deref() {
            Some(open) => {
                w.bool(true);
                put_open(&mut w, open);
            }
            None => w.bool(false),
        }
        for pe in &self.core.pes {
            put_pe(&mut w, pe);
        }
        // Channels as sorted (id, state) pairs, materialized slots only.
        let chan_slots = self.core.channels.present();
        w.usize(chan_slots.len());
        for (cid, ch) in chan_slots {
            w.u32(cid);
            put_channel(&mut w, ch);
        }
        w.u64(queue.now.units());
        w.u64(queue.processed);
        w.usize(queue.events.len());
        for (at, key, ev) in &queue.events {
            w.u64(at.units());
            w.u64(*key);
            put_event(&mut w, ev);
        }
        let state = self.strategy.snapshot_state();
        w.str(&state.name);
        w.bytes(&state.bytes);
        self.core.events.restore_snapshot(queue);
        w.into_bytes()
    }

    /// Restore state captured by [`Machine::snapshot_bytes`] into this
    /// freshly constructed machine. Call *instead of* [`Machine::begin`] —
    /// everything `begin` arms (broadcasts, fault-plan events, the root
    /// goal) is already inside the snapshot — then drive the run with
    /// [`Machine::advance_until`] / [`Machine::finish`] as usual.
    ///
    /// Fails with [`SimError::InvalidConfig`] when the bytes are corrupt,
    /// from a different snapshot version, or from a machine with a
    /// different shape (PE/channel counts, degrees, strategy). A failed
    /// restore leaves the machine partially written — discard it.
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), SimError> {
        match self.restore_inner(bytes) {
            Ok(()) => Ok(()),
            Err(RestoreFail::Codec(e)) => Err(SimError::InvalidConfig(format!(
                "corrupt machine snapshot: {e}"
            ))),
            Err(RestoreFail::Mismatch(msg)) => Err(SimError::InvalidConfig(msg)),
        }
    }

    fn restore_inner(&mut self, bytes: &[u8]) -> Result<(), RestoreFail> {
        let mut r = SnapReader::new(bytes);
        let magic = r.u32()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(RestoreFail::Mismatch(format!(
                "not a machine snapshot (magic {magic:#010x})"
            )));
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(RestoreFail::Mismatch(format!(
                "machine snapshot version {version} unsupported (expected {SNAPSHOT_VERSION})"
            )));
        }
        let num_pes = r.usize()?;
        let num_channels = r.usize()?;
        if num_pes != self.core.pes.len() || num_channels != self.core.channels.len() {
            return Err(RestoreFail::Mismatch(format!(
                "snapshot is of a {num_pes}-PE/{num_channels}-channel machine but this one has \
                 {} PEs and {} channels",
                self.core.pes.len(),
                self.core.channels.len()
            )));
        }
        self.core.rng = get_rng(&mut r)?;
        self.core.fault_rng = get_rng(&mut r)?;
        for rng in &mut self.core.pe_rngs {
            *rng = get_rng(&mut r)?;
        }
        for s in &mut self.core.key_seq {
            *s = r.u32()?;
        }
        for s in &mut self.core.goal_seq {
            *s = r.u32()?;
        }
        self.core.goals_created = r.u64()?;
        self.core.goals_executed = r.u64()?;
        self.core.responses_processed = r.u64()?;
        self.core.seq_work = r.u64()?;
        self.core.traffic.goal_hops = r.u64()?;
        self.core.traffic.response_hops = r.u64()?;
        self.core.traffic.control_msgs = r.u64()?;
        self.core.traffic.load_updates = r.u64()?;
        self.core.hop_hist = get_hist(&mut r)?;
        self.core.dispatch_latency.reset();
        let n_dispatch = r.usize()?;
        if n_dispatch > num_pes {
            return Err(RestoreFail::Mismatch(format!(
                "snapshot has {n_dispatch} dispatch-latency slots for a {num_pes}-PE machine"
            )));
        }
        for _ in 0..n_dispatch {
            let pe = r.u32()?;
            if pe as usize >= num_pes {
                return Err(RestoreFail::Mismatch(format!(
                    "dispatch-latency slot for PE {pe} out of range (machine has {num_pes})"
                )));
            }
            *self.core.dispatch_latency.slot_mut(pe) = get_stats(&mut r)?;
        }
        self.core.global_series = get_series(&mut r)?;
        self.core.root_result = if r.bool()? {
            let v = r.i64()?;
            let t = r.u64()?;
            Some((v, SimTime(t)))
        } else {
            None
        };
        self.core.last_progress = (r.u64()?, r.u64()?, r.u64()?);
        self.core.next_check = r.u64()?;
        self.core.next_audit = r.u64()?;
        self.core.last_audit_now = r.u64()?;
        self.core.faults.outstanding = FastHashMap::default();
        for _ in 0..r.usize()? {
            let id = GoalId(r.u64()?);
            let o = Outstanding {
                parent: get_parent(&mut r)?,
                spec: get_spec(&mut r)?,
                attempts: r.u32()?,
                first_created: r.u64()?,
                resident: get_opt_u32(&mut r)?.map(PeId),
            };
            self.core.faults.outstanding.insert(id, o);
        }
        self.core.faults.pes_crashed = r.u32()?;
        self.core.faults.goals_lost = r.u64()?;
        self.core.faults.messages_dropped = r.u64()?;
        self.core.faults.goals_respawned = r.u64()?;
        self.core.faults.duplicate_responses = r.u64()?;
        self.core.faults.retries_exhausted = r.u64()?;
        self.core.faults.recovery_latency = get_stats(&mut r)?;
        let has_open = r.bool()?;
        match (has_open, self.core.open.as_deref_mut()) {
            (true, Some(open)) => get_open(&mut r, open)?,
            (false, None) => {}
            (true, None) => {
                return Err(RestoreFail::Mismatch(
                    "snapshot is of an open-traffic run but this machine is a closed run".into(),
                ))
            }
            (false, Some(_)) => {
                return Err(RestoreFail::Mismatch(
                    "snapshot is of a closed run but this machine has open traffic configured"
                        .into(),
                ))
            }
        }
        for pe in &mut self.core.pes {
            get_pe(&mut r, pe)?;
        }
        self.core.channels.reset();
        let n_chan = r.usize()?;
        if n_chan > num_channels {
            return Err(RestoreFail::Mismatch(format!(
                "snapshot has {n_chan} channel slots for a {num_channels}-channel machine"
            )));
        }
        for _ in 0..n_chan {
            let cid = r.u32()?;
            if cid as usize >= num_channels {
                return Err(RestoreFail::Mismatch(format!(
                    "channel slot {cid} out of range (machine has {num_channels})"
                )));
            }
            get_channel(&mut r, self.core.channels.get_mut(ChannelId(cid)))?;
        }
        let now = SimTime(r.u64()?);
        let processed = r.u64()?;
        let n_events = r.usize()?;
        let mut events = Vec::with_capacity(n_events);
        let mut prev = now;
        for _ in 0..n_events {
            let at = SimTime(r.u64()?);
            if at < prev {
                return Err(RestoreFail::Mismatch(format!(
                    "snapshot event queue is not in pop order ({at} after {prev})"
                )));
            }
            prev = at;
            let key = r.u64()?;
            events.push((at, key, get_event(&mut r)?));
        }
        self.core.events.restore_snapshot(QueueSnapshot {
            now,
            processed,
            events,
        });
        let state = StrategyState {
            name: r.str()?.to_string(),
            bytes: r.bytes()?.to_vec(),
        };
        r.finish()?;
        // Live routing tables are derived state: recompute them from the
        // restored health (a no-op back to `None` at full health), exactly
        // as the fault handlers maintained them along the original run.
        self.core.rebuild_live_routes();
        self.strategy
            .restore_state(&state, &self.core)
            .map_err(RestoreFail::Mismatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, QueueBackend};
    use crate::cost::CostModel;
    use crate::faults::{FaultPlan, RecoveryParams};
    use crate::machine::Core;
    use crate::open::{ArrivalSpec, OpenTraffic};
    use crate::program::Program;
    use crate::strategy::Strategy;
    use oracle_topo::misc::ring;

    struct Fib(i64);

    impl Program for Fib {
        fn name(&self) -> String {
            format!("fib({})", self.0)
        }
        fn root(&self) -> TaskSpec {
            TaskSpec::new(self.0, 0)
        }
        fn expand(&self, spec: &TaskSpec) -> Expansion {
            if spec.a < 2 {
                Expansion::Leaf(spec.a)
            } else {
                Expansion::Split([spec.child(spec.a - 1, 0), spec.child(spec.a - 2, 0)].into())
            }
        }
        fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
            acc + child
        }
    }

    /// Scatter goals one hop around the ring (exercises channels, known
    /// loads, and responses); stateless, so the default snapshot hooks
    /// apply.
    struct ScatterRing;

    impl Strategy for ScatterRing {
        fn name(&self) -> &'static str {
            "scatter-ring"
        }
        fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
            let next = PeId((pe.0 + 1) % core.num_pes() as u32);
            core.forward_goal(pe, next, goal);
        }
        fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
            core.accept_goal(pe, goal);
        }
    }

    fn machine(cfg: MachineConfig) -> Machine {
        Machine::new(
            ring(4),
            Box::new(Fib(14)),
            Box::new(ScatterRing),
            CostModel::unit(),
            cfg,
        )
        .unwrap()
    }

    /// Drive a begun (or restored) machine to its end and render the full
    /// outcome — report or error — so success *and* failure trajectories
    /// must match bit-for-bit.
    fn run_to_end(mut m: Machine) -> String {
        match m.advance_until(None) {
            Ok(_) => format!("{:?}", m.finish().map(|(report, _)| report)),
            Err(e) => format!("Err({e:?})"),
        }
    }

    fn resume_matches_uninterrupted(cfg: MachineConfig) {
        let mut plain = machine(cfg.clone());
        plain.begin();
        let baseline = run_to_end(plain);

        let mut first = machine(cfg.clone());
        first.begin();
        let done = first.advance_until(Some(120)).unwrap();
        assert!(!done, "run should pause before completing");
        let bytes = first.snapshot_bytes();

        // The snapshotted machine itself keeps running to the same outcome…
        assert_eq!(run_to_end(first), baseline);

        // …and so does a fresh machine restored from the bytes.
        let mut resumed = machine(cfg);
        resumed.restore_bytes(&bytes).unwrap();
        assert_eq!(run_to_end(resumed), baseline);
    }

    #[test]
    fn audited_run_is_bit_identical_to_unaudited() {
        let base = machine(MachineConfig::default().with_seed(5))
            .run()
            .unwrap();
        let audited = machine(MachineConfig {
            audit_every: 1,
            ..MachineConfig::default().with_seed(5)
        })
        .run()
        .unwrap();
        assert_eq!(format!("{audited:?}"), format!("{base:?}"));
    }

    #[test]
    fn resume_is_bit_identical_on_both_backends() {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let cfg = MachineConfig {
                queue_backend: backend,
                ..MachineConfig::default().with_seed(7)
            };
            resume_matches_uninterrupted(cfg);
        }
    }

    #[test]
    fn resume_is_bit_identical_under_faults() {
        let cfg = MachineConfig {
            fault_plan: FaultPlan::default()
                .crash(2, 400)
                .with_loss(0.01)
                .with_recovery(RecoveryParams::default()),
            audit_every: 64,
            ..MachineConfig::default().with_seed(11)
        };
        resume_matches_uninterrupted(cfg);
    }

    #[test]
    fn open_resume_is_bit_identical_mid_measurement_window() {
        let spec: ArrivalSpec = "poisson:5".parse().unwrap();
        let cfg = MachineConfig {
            open: Some(OpenTraffic {
                warmup: 200,
                ..OpenTraffic::new(spec, 2000)
            }),
            ..MachineConfig::default().with_seed(9)
        };
        // Early pause (still in warmup).
        resume_matches_uninterrupted(cfg.clone());

        // Pause well inside the measurement window, where sojourn samples
        // and the in-flight table are non-trivial.
        let mut plain = machine(cfg.clone());
        plain.begin();
        let baseline = run_to_end(plain);

        let mut first = machine(cfg.clone());
        first.begin();
        let done = first.advance_until(Some(900)).unwrap();
        assert!(!done, "open run should pause before its horizon");
        let bytes = first.snapshot_bytes();
        assert_eq!(run_to_end(first), baseline);

        let mut resumed = machine(cfg);
        resumed.restore_bytes(&bytes).unwrap();
        assert_eq!(run_to_end(resumed), baseline);

        // An open snapshot refuses a closed machine (and vice versa).
        let mut closed = machine(MachineConfig::default().with_seed(9));
        let err = closed.restore_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("open-traffic"), "{err}");
    }

    #[test]
    fn overload_state_resume_is_bit_identical_under_faults() {
        // Deadline + retry + admission + breaker all active, plus a crash
        // and message loss, so the v3 block (retry RNG, pending retries,
        // bucket level, breaker table, counters) is non-trivial at the
        // pause point.
        let spec: ArrivalSpec = "poisson:5".parse().unwrap();
        let cfg = MachineConfig {
            open: Some(OpenTraffic {
                warmup: 200,
                deadline: Some(600),
                retry: Some("3x50".parse().unwrap()),
                admission: Some("bucket:8x4".parse().unwrap()),
                breaker: Some(300),
                ..OpenTraffic::new(spec, 2000)
            }),
            fault_plan: FaultPlan::default().crash(2, 600).with_loss(0.02),
            ..MachineConfig::default().with_seed(13)
        };
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let cfg = MachineConfig {
                queue_backend: backend,
                ..cfg.clone()
            };
            let mut plain = machine(cfg.clone());
            plain.begin();
            let baseline = run_to_end(plain);

            // Pause after the crash so breaker/retry state is in play.
            let mut first = machine(cfg.clone());
            first.begin();
            let done = first.advance_until(Some(900)).unwrap();
            assert!(!done, "overload run should pause before its horizon");
            let bytes = first.snapshot_bytes();
            assert_eq!(run_to_end(first), baseline);

            let mut resumed = machine(cfg);
            resumed.restore_bytes(&bytes).unwrap();
            assert_eq!(run_to_end(resumed), baseline);
        }
    }

    #[test]
    fn restore_rejects_corrupt_and_mismatched_blobs() {
        let cfg = MachineConfig::default().with_seed(3);
        let mut m = machine(cfg.clone());
        m.begin();
        m.advance_until(Some(50)).unwrap();
        let bytes = m.snapshot_bytes();

        // Truncation anywhere is a decode error, not a panic.
        let mut fresh = machine(cfg.clone());
        let err = fresh.restore_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");

        // Garbage magic is rejected up front.
        let mut fresh = machine(cfg.clone());
        let err = fresh.restore_bytes(&[0u8; 64]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // A machine of a different shape refuses the blob.
        let mut other = Machine::new(
            ring(8),
            Box::new(Fib(14)),
            Box::new(ScatterRing),
            CostModel::unit(),
            cfg,
        )
        .unwrap();
        let err = other.restore_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("8 PEs"), "{err}");
    }
}
