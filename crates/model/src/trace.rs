//! Structured event tracing.
//!
//! ORACLE accepted "form and content of the output information required" as
//! input; this is the equivalent facility: an optional, bounded log of the
//! semantically interesting events of a run (goal lifecycle, message
//! movement, strategy actions). Disabled by default (zero cost beyond one
//! branch); enable by setting `MachineConfig::trace_capacity`.
//!
//! Traces are the debugging companion to the load monitor: where the
//! monitor shows *where* the machine is busy, the trace shows *why* — which
//! goal went where, and when.

use oracle_topo::PeId;
use serde::{Deserialize, Serialize};

use crate::message::GoalId;

/// One traced event. `t` is the simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A goal was created on `pe` (by its parent executing there).
    GoalCreated {
        t: u64,
        goal: GoalId,
        pe: PeId,
        parent: Option<GoalId>,
    },
    /// A goal message was sent one hop.
    GoalForwarded {
        t: u64,
        goal: GoalId,
        from: PeId,
        to: PeId,
        hops: u32,
    },
    /// A goal was accepted (it will execute on `pe`).
    GoalAccepted {
        t: u64,
        goal: GoalId,
        pe: PeId,
        hops: u32,
    },
    /// A goal started executing.
    GoalStarted { t: u64, goal: GoalId, pe: PeId },
    /// The goal's execution slice on `pe` completed (it responded or
    /// spawned children). Paired with [`TraceEvent::GoalStarted`], this
    /// bounds the duration events of the Chrome trace export.
    GoalFinished { t: u64, goal: GoalId, pe: PeId },
    /// A response was produced toward the waiting parent.
    Responded {
        t: u64,
        from_pe: PeId,
        parent_pe: Option<PeId>,
        value: i64,
    },
    /// A strategy control message was sent.
    ControlSent {
        t: u64,
        from: PeId,
        to: PeId,
        tag: u8,
    },
    /// A strategy timer fired.
    TimerFired { t: u64, pe: PeId, tag: u64 },
    /// The root task completed: the run's answer.
    RootCompleted { t: u64, result: i64 },
    /// A PE failed (fail-stop), destroying `goals_lost` resident goals.
    PeCrashed { t: u64, pe: PeId, goals_lost: u64 },
    /// A goal was destroyed by a fault (crash, black-holed delivery, or
    /// dropped transfer).
    GoalLost { t: u64, goal: GoalId, pe: PeId },
    /// A channel transfer was dropped by the message-loss process.
    MessageDropped { t: u64, channel: u32 },
    /// A channel went down per the fault plan.
    LinkDown { t: u64, channel: u32 },
    /// A downed channel came back up.
    LinkUp { t: u64, channel: u32 },
    /// The recovery layer re-spawned a lost or silent goal as `new`.
    GoalRespawned {
        t: u64,
        old: GoalId,
        new: GoalId,
        pe: PeId,
        attempt: u32,
    },
    /// A response arrived for a goal slot already filled by a newer
    /// attempt; it was discarded instead of combined twice.
    DuplicateResponse { t: u64, goal: GoalId, pe: PeId },
    /// A transient slowdown window opened on `pe`.
    PeSlowed { t: u64, pe: PeId, factor: u64 },
    /// The slowdown window on `pe` closed.
    PeRestored { t: u64, pe: PeId },
    /// Open traffic: request `request` arrived and entered as root goal
    /// `goal` at `pe`.
    RequestArrived {
        t: u64,
        request: u64,
        goal: GoalId,
        pe: PeId,
    },
    /// Open traffic: the request that entered as `goal` produced its
    /// result on `pe`, `sojourn` time units after arriving.
    RequestCompleted {
        t: u64,
        request: u64,
        goal: GoalId,
        pe: PeId,
        sojourn: u64,
    },
}

impl TraceEvent {
    /// The simulated time of the event.
    pub fn time(&self) -> u64 {
        match *self {
            TraceEvent::GoalCreated { t, .. }
            | TraceEvent::GoalForwarded { t, .. }
            | TraceEvent::GoalAccepted { t, .. }
            | TraceEvent::GoalStarted { t, .. }
            | TraceEvent::GoalFinished { t, .. }
            | TraceEvent::Responded { t, .. }
            | TraceEvent::ControlSent { t, .. }
            | TraceEvent::TimerFired { t, .. }
            | TraceEvent::RootCompleted { t, .. }
            | TraceEvent::PeCrashed { t, .. }
            | TraceEvent::GoalLost { t, .. }
            | TraceEvent::MessageDropped { t, .. }
            | TraceEvent::LinkDown { t, .. }
            | TraceEvent::LinkUp { t, .. }
            | TraceEvent::GoalRespawned { t, .. }
            | TraceEvent::DuplicateResponse { t, .. }
            | TraceEvent::PeSlowed { t, .. }
            | TraceEvent::PeRestored { t, .. }
            | TraceEvent::RequestArrived { t, .. }
            | TraceEvent::RequestCompleted { t, .. } => t,
        }
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TraceEvent::GoalCreated {
                t,
                goal,
                pe,
                parent,
            } => match parent {
                Some(p) => write!(
                    f,
                    "[{t:>8}] goal {} created on {pe} (child of {})",
                    goal.0, p.0
                ),
                None => write!(f, "[{t:>8}] root goal {} created on {pe}", goal.0),
            },
            TraceEvent::GoalForwarded {
                t,
                goal,
                from,
                to,
                hops,
            } => {
                write!(
                    f,
                    "[{t:>8}] goal {} forwarded {from} -> {to} (hop {hops})",
                    goal.0
                )
            }
            TraceEvent::GoalAccepted { t, goal, pe, hops } => {
                write!(
                    f,
                    "[{t:>8}] goal {} accepted at {pe} after {hops} hops",
                    goal.0
                )
            }
            TraceEvent::GoalStarted { t, goal, pe } => {
                write!(f, "[{t:>8}] goal {} executing on {pe}", goal.0)
            }
            TraceEvent::GoalFinished { t, goal, pe } => {
                write!(f, "[{t:>8}] goal {} finished on {pe}", goal.0)
            }
            TraceEvent::Responded {
                t,
                from_pe,
                parent_pe,
                value,
            } => match parent_pe {
                Some(p) => write!(f, "[{t:>8}] {from_pe} responded {value} toward {p}"),
                None => write!(f, "[{t:>8}] {from_pe} produced the root result {value}"),
            },
            TraceEvent::ControlSent { t, from, to, tag } => {
                write!(f, "[{t:>8}] control tag {tag} {from} -> {to}")
            }
            TraceEvent::TimerFired { t, pe, tag } => {
                write!(f, "[{t:>8}] timer tag {tag} fired on {pe}")
            }
            TraceEvent::RootCompleted { t, result } => {
                write!(f, "[{t:>8}] run complete: result = {result}")
            }
            TraceEvent::PeCrashed { t, pe, goals_lost } => {
                write!(f, "[{t:>8}] {pe} crashed, {goals_lost} goals lost")
            }
            TraceEvent::GoalLost { t, goal, pe } => {
                write!(f, "[{t:>8}] goal {} lost at {pe}", goal.0)
            }
            TraceEvent::MessageDropped { t, channel } => {
                write!(f, "[{t:>8}] transfer dropped on ch{channel}")
            }
            TraceEvent::LinkDown { t, channel } => {
                write!(f, "[{t:>8}] ch{channel} down")
            }
            TraceEvent::LinkUp { t, channel } => {
                write!(f, "[{t:>8}] ch{channel} up")
            }
            TraceEvent::GoalRespawned {
                t,
                old,
                new,
                pe,
                attempt,
            } => write!(
                f,
                "[{t:>8}] goal {} respawned as {} from {pe} (attempt {attempt})",
                old.0, new.0
            ),
            TraceEvent::DuplicateResponse { t, goal, pe } => {
                write!(f, "[{t:>8}] duplicate response for goal {} at {pe}", goal.0)
            }
            TraceEvent::PeSlowed { t, pe, factor } => {
                write!(f, "[{t:>8}] {pe} slowed x{factor}")
            }
            TraceEvent::PeRestored { t, pe } => {
                write!(f, "[{t:>8}] {pe} back to full speed")
            }
            TraceEvent::RequestArrived {
                t,
                request,
                goal,
                pe,
            } => write!(
                f,
                "[{t:>8}] request {request} arrived at {pe} as goal {}",
                goal.0
            ),
            TraceEvent::RequestCompleted {
                t,
                request,
                goal,
                pe,
                sojourn,
            } => write!(
                f,
                "[{t:>8}] request {request} (goal {}) completed on {pe}, sojourn {sojourn}",
                goal.0
            ),
        }
    }
}

/// What a full trace buffer does with further events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// Keep the first `capacity` events and count the rest as dropped —
    /// the prefix of a run is usually what matters for debugging
    /// placement. The default.
    #[default]
    KeepFirst,
    /// Ring buffer: keep the *last* `capacity` events, so a long run
    /// retains its interesting tail (the events counted as dropped are the
    /// overwritten oldest ones).
    KeepLast,
}

/// A bounded event log. Once `capacity` events are recorded,
/// [`TraceMode`] decides whether further events are dropped
/// ([`TraceMode::KeepFirst`]) or overwrite the oldest ones
/// ([`TraceMode::KeepLast`]); either way the losses are counted in
/// [`Trace::dropped`], and exporters must surface that count — a truncated
/// trace must never pass for a complete one.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    #[serde(default)]
    mode: TraceMode,
    /// In `KeepLast` mode once full: index of the oldest retained event
    /// (the next overwrite target). Always 0 otherwise.
    #[serde(default)]
    head: usize,
}

impl Trace {
    /// A trace keeping at most `capacity` events (0 = tracing disabled).
    pub fn new(capacity: usize) -> Self {
        Trace::with_mode(capacity, TraceMode::KeepFirst)
    }

    /// A trace keeping at most `capacity` events under `mode`.
    pub fn with_mode(capacity: usize, mode: TraceMode) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
            mode,
            head: 0,
        }
    }

    /// True if this trace records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The retention mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Record one event (per the retention mode once full).
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else if self.capacity > 0 {
            self.dropped += 1;
            if self.mode == TraceMode::KeepLast {
                self.events[self.head] = event;
                self.head += 1;
                if self.head == self.capacity {
                    self.head = 0;
                }
            }
        }
    }

    /// The recorded events in storage order. Identical to chronological
    /// order except in a wrapped `KeepLast` trace — use [`Trace::iter`]
    /// when order matters.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The retained events in chronological order (unrotates a wrapped
    /// `KeepLast` ring).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, front) = self.events.split_at(self.head.min(self.events.len()));
        front.iter().chain(tail.iter())
    }

    /// Events dropped after the buffer filled (in `KeepLast` mode: the
    /// overwritten oldest events).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the whole trace as text, one event per line.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.dropped > 0 && self.mode == TraceMode::KeepLast {
            let _ = writeln!(out, "... {} earlier events overwritten", self.dropped);
        }
        for e in self.iter() {
            let _ = writeln!(out, "{e}");
        }
        if self.dropped > 0 && self.mode == TraceMode::KeepFirst {
            let _ = writeln!(out, "... {} further events dropped", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(0);
        assert!(!t.enabled());
        t.record(TraceEvent::RootCompleted { t: 1, result: 2 });
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_the_log() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.record(TraceEvent::TimerFired {
                t: i,
                pe: PeId(0),
                tag: 0,
            });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.render().contains("3 further events dropped"));
    }

    #[test]
    fn keep_last_retains_the_tail_in_order() {
        let mut t = Trace::with_mode(3, TraceMode::KeepLast);
        for i in 0..7 {
            t.record(TraceEvent::TimerFired {
                t: i,
                pe: PeId(0),
                tag: i,
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 4);
        let times: Vec<u64> = t.iter().map(|e| e.time()).collect();
        assert_eq!(times, vec![4, 5, 6], "chronological tail, unrotated");
        assert!(t.render().contains("4 earlier events overwritten"));
    }

    #[test]
    fn keep_last_without_wrap_matches_keep_first() {
        let mut a = Trace::with_mode(5, TraceMode::KeepLast);
        let mut b = Trace::new(5);
        for i in 0..4 {
            let e = TraceEvent::TimerFired {
                t: i,
                pe: PeId(1),
                tag: 0,
            };
            a.record(e);
            b.record(e);
        }
        assert_eq!(a.dropped(), 0);
        let ta: Vec<u64> = a.iter().map(|e| e.time()).collect();
        let tb: Vec<u64> = b.iter().map(|e| e.time()).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::GoalCreated {
            t: 10,
            goal: GoalId(5),
            pe: PeId(3),
            parent: None,
        };
        assert!(e.to_string().contains("root goal 5"));
        assert_eq!(e.time(), 10);
        let e = TraceEvent::GoalAccepted {
            t: 11,
            goal: GoalId(5),
            pe: PeId(4),
            hops: 2,
        };
        assert!(e.to_string().contains("after 2 hops"));
        let e = TraceEvent::Responded {
            t: 12,
            from_pe: PeId(4),
            parent_pe: None,
            value: 99,
        };
        assert!(e.to_string().contains("root result 99"));
    }

    #[test]
    fn fault_events_format_and_report_time() {
        let e = TraceEvent::PeCrashed {
            t: 40,
            pe: PeId(7),
            goals_lost: 3,
        };
        assert_eq!(e.time(), 40);
        assert!(e.to_string().contains("PE7 crashed"));
        assert!(e.to_string().contains("3 goals lost"));

        let e = TraceEvent::GoalLost {
            t: 41,
            goal: GoalId(9),
            pe: PeId(7),
        };
        assert_eq!(e.time(), 41);
        assert!(e.to_string().contains("goal 9 lost"));

        let e = TraceEvent::MessageDropped { t: 42, channel: 5 };
        assert_eq!(e.time(), 42);
        assert!(e.to_string().contains("ch5"));

        let down = TraceEvent::LinkDown { t: 43, channel: 2 };
        let up = TraceEvent::LinkUp { t: 44, channel: 2 };
        assert_eq!(down.time(), 43);
        assert_eq!(up.time(), 44);
        assert!(down.to_string().contains("ch2 down"));
        assert!(up.to_string().contains("ch2 up"));

        let e = TraceEvent::GoalRespawned {
            t: 45,
            old: GoalId(9),
            new: GoalId(31),
            pe: PeId(1),
            attempt: 2,
        };
        assert_eq!(e.time(), 45);
        assert!(e.to_string().contains("respawned as 31"));
        assert!(e.to_string().contains("attempt 2"));

        let e = TraceEvent::DuplicateResponse {
            t: 46,
            goal: GoalId(9),
            pe: PeId(1),
        };
        assert_eq!(e.time(), 46);
        assert!(e.to_string().contains("duplicate response"));

        let slowed = TraceEvent::PeSlowed {
            t: 47,
            pe: PeId(2),
            factor: 4,
        };
        let restored = TraceEvent::PeRestored { t: 48, pe: PeId(2) };
        assert_eq!(slowed.time(), 47);
        assert_eq!(restored.time(), 48);
        assert!(slowed.to_string().contains("slowed x4"));
        assert!(restored.to_string().contains("full speed"));
    }

    #[test]
    fn open_traffic_events_format_and_report_time() {
        let e = TraceEvent::RequestArrived {
            t: 50,
            request: 12,
            goal: GoalId(77),
            pe: PeId(3),
        };
        assert_eq!(e.time(), 50);
        assert!(e.to_string().contains("request 12 arrived"));
        assert!(e.to_string().contains("goal 77"));

        let e = TraceEvent::RequestCompleted {
            t: 51,
            request: 12,
            goal: GoalId(77),
            pe: PeId(4),
            sojourn: 41,
        };
        assert_eq!(e.time(), 51);
        assert!(e.to_string().contains("request 12"));
        assert!(e.to_string().contains("sojourn 41"));
    }

    #[test]
    fn fault_events_respect_bounded_capacity() {
        let mut t = Trace::new(3);
        for i in 0..6 {
            t.record(TraceEvent::MessageDropped { t: i, channel: 0 });
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 3);
        let rendered = t.render();
        assert!(rendered.contains("transfer dropped"));
        assert!(rendered.contains("3 further events dropped"));
    }
}
