//! The load-distribution strategy interface.
//!
//! A strategy is "dynamic … distributed on all of [the PEs] … each PE should
//! only use the information provided by its neighbors". The machine drives a
//! strategy through the callbacks below; the strategy acts on the machine
//! through the [`Core`] handle (accepting goals,
//! forwarding them to neighbours, exchanging control messages, setting
//! timers).
//!
//! Conservation contract: every goal handed to `on_goal_created` or
//! `on_goal_message` must eventually be either accepted on some PE or
//! forwarded to a neighbour — dropping a goal stalls the simulation (and is
//! caught by the machine's termination check).

use oracle_topo::PeId;
use serde::Serialize;

use crate::machine::Core;
use crate::message::{ControlMsg, GoalMsg};

/// A serializable snapshot of a strategy's mutable state, produced by
/// [`Strategy::snapshot_state`] and consumed by [`Strategy::restore_state`].
///
/// The payload is opaque to the machine: each scheme encodes its private
/// state (outstanding-bid bitmaps, proximity fields, held goals, …) with the
/// [`oracle_des::snapshot`] codec. The `name` tag guards against feeding a
/// snapshot taken from one scheme into another. Stateless strategies use the
/// empty payload.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct StrategyState {
    /// [`Strategy::name`] of the scheme the snapshot was taken from.
    pub name: String,
    /// The scheme's private state, encoded with the des snapshot codec.
    pub bytes: Vec<u8>,
}

/// A dynamic, distributed load-distribution scheme.
pub trait Strategy: Send {
    /// Short name used in reports, e.g. `"cwn"`.
    fn name(&self) -> &'static str;

    /// Whether this scheme consumes neighbour-load information. When
    /// `false`, the machine skips the periodic load-word broadcasts (the
    /// Gradient Model maintains its own proximity field instead; oblivious
    /// baselines need nothing), so a scheme is never charged channel
    /// bandwidth for information it does not read. Piggy-backed load words
    /// ride existing messages for free either way.
    fn needs_load_broadcast(&self) -> bool {
        true
    }

    /// Called once before the root goal is injected. Strategies size their
    /// per-PE state and arm initial timers here.
    fn init(&mut self, _core: &mut Core) {}

    /// A goal was just created on `pe` (by a task executing there). The
    /// strategy decides its first placement: accept locally or send to a
    /// neighbour.
    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg);

    /// A goal message arrived at `pe` from a neighbour (its `hops` field has
    /// already been incremented). The strategy decides: accept here or
    /// forward onward.
    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg);

    /// A control message from neighbour `from` arrived at `pe`.
    fn on_control(&mut self, _core: &mut Core, _pe: PeId, _from: PeId, _msg: ControlMsg) {}

    /// A timer armed with [`Core::set_timer`] fired on `pe`.
    fn on_timer(&mut self, _core: &mut Core, _pe: PeId, _tag: u64) {}

    /// `pe` transitioned from busy to idle (no executing item, empty
    /// queues). Receiver-initiated schemes react here.
    fn on_idle(&mut self, _core: &mut Core, _pe: PeId) {}

    /// `pe` lost contact with neighbour `down`: the neighbour crashed, or
    /// the link between them went down. Strategies that cache per-neighbour
    /// state (the Gradient Model's proximity field, steal targets) should
    /// invalidate it here so they stop routing work into a black hole. The
    /// machine already excludes dead neighbours from
    /// [`Core::least_loaded_neighbor`] and friends.
    fn on_neighbor_down(&mut self, _core: &mut Core, _pe: PeId, _down: PeId) {}

    /// The link between `pe` and `up` was restored (links recover; crashed
    /// PEs never do). Strategies may reset their view of the neighbour.
    fn on_neighbor_up(&mut self, _core: &mut Core, _pe: PeId, _up: PeId) {}

    /// Capture the strategy's mutable state for a checkpoint. The default
    /// (an empty payload) is correct for stateless schemes; any scheme with
    /// per-PE state **must** override this together with
    /// [`Strategy::restore_state`] or resumed runs will diverge.
    fn snapshot_state(&self) -> StrategyState {
        StrategyState {
            name: self.name().to_string(),
            bytes: Vec::new(),
        }
    }

    /// Restore state captured by [`Strategy::snapshot_state`]. Called on a
    /// freshly constructed strategy *instead of* [`Strategy::init`] — any
    /// timers or RNG draws `init` would perform already live in the
    /// snapshotted event queue and RNG state. `core` is provided read-only
    /// for sizing per-PE vectors.
    fn restore_state(&mut self, state: &StrategyState, _core: &Core) -> Result<(), String> {
        if state.name != self.name() {
            return Err(format!(
                "strategy snapshot was taken from `{}` but is being restored into `{}`",
                state.name,
                self.name()
            ));
        }
        if !state.bytes.is_empty() {
            return Err(format!(
                "strategy `{}` has no state to restore but the snapshot carries {} bytes",
                self.name(),
                state.bytes.len()
            ));
        }
        Ok(())
    }

    /// Number of goals the strategy is privately holding — goals it received
    /// via a callback but has neither accepted onto a PE queue nor forwarded
    /// into a channel yet (e.g. goals parked while probing for a placement).
    /// The invariant auditor adds this to its task-conservation identity;
    /// schemes that park goals **must** override it.
    fn goals_held(&self) -> u64 {
        0
    }

    /// Whether the scheme is safe to run under the sharded parallel engine
    /// (`crate::parallel`). Safe means: every callback for PE `p` reads and
    /// writes only per-`p` state (its own slice of any per-PE vectors, `p`'s
    /// RNG stream, `p`'s load and known-load tables) — never a structure
    /// keyed by goals or shared across PEs. Schemes with cross-PE shared
    /// state (a global in-flight map, parked-goal custody) must leave this
    /// `false`; the engine then falls back to sequential execution
    /// transparently. Defaults to `false`: a scheme must be *shown* safe,
    /// not assumed safe.
    fn parallel_safe(&self) -> bool {
        false
    }

    /// Fold the per-PE slices of another instance's snapshotted state into
    /// this one, for the PEs marked in `owned`. The parallel engine runs one
    /// strategy clone per shard and reassembles the canonical instance by
    /// calling this once per shard with that shard's ownership mask. The
    /// payload is a [`Strategy::snapshot_state`] capture from an instance of
    /// the *same* scheme. The default is correct for stateless schemes
    /// (nothing to fold) and still validates the name tag.
    fn merge_owned(&mut self, from: &StrategyState, _owned: &[bool]) -> Result<(), String> {
        if from.name != self.name() {
            return Err(format!(
                "merging shard state of `{}` into `{}`",
                from.name,
                self.name()
            ));
        }
        Ok(())
    }
}
