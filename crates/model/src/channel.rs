//! Channel state: one FIFO resource per link or bus.
//!
//! ORACLE has "one process for each communication channel", i.e. a channel
//! transfers one message at a time and later messages queue behind it —
//! this is where communication contention comes from.

use std::collections::VecDeque;

use oracle_des::{BusyTracker, SimTime};

use crate::message::Flight;

/// The state of one communication channel (link or bus).
#[derive(Debug)]
pub struct Channel {
    /// The message currently occupying the channel, if any.
    pub in_flight: Option<Flight>,
    /// Messages waiting for the channel, FIFO.
    pub backlog: VecDeque<Flight>,
    /// Busy-time accounting for channel-utilization statistics.
    pub busy: BusyTracker,
    /// Total messages transferred.
    pub transfers: u64,
    /// High-water mark of the backlog length — the stagnation indicator.
    pub max_backlog: usize,
    /// True while a fault-plan link window holds the channel down: new
    /// offers queue in the backlog, and nothing is promoted until the
    /// channel comes back up.
    pub down: bool,
}

impl Channel {
    /// A fresh idle channel.
    pub fn new() -> Self {
        Channel {
            in_flight: None,
            backlog: VecDeque::new(),
            busy: BusyTracker::new(),
            transfers: 0,
            max_backlog: 0,
            down: false,
        }
    }

    /// True if a message is currently being transferred.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Offer a flight: if the channel is free it becomes the in-flight
    /// message and the caller must schedule its completion (returns `true`);
    /// otherwise it joins the backlog (returns `false`).
    pub fn offer(&mut self, flight: Flight, now: SimTime) -> bool {
        if self.in_flight.is_none() && !self.down {
            self.in_flight = Some(flight);
            self.busy.set_busy(now);
            true
        } else {
            self.backlog.push_back(flight);
            self.max_backlog = self.max_backlog.max(self.backlog.len());
            false
        }
    }

    /// Complete the in-flight transfer, returning it, and promote the next
    /// backlog entry (if any) to in-flight. When a promotion happens the
    /// caller must schedule its completion; the channel stays busy.
    ///
    /// # Panics
    ///
    /// Panics if no transfer was in flight.
    pub fn complete(&mut self, now: SimTime) -> (Flight, Option<&Flight>) {
        let done = self
            .in_flight
            .take()
            .expect("channel completion with nothing in flight");
        self.transfers += 1;
        if self.down {
            // A transfer already on the wire when the link dropped finishes,
            // but nothing new starts until the link comes back up.
            self.busy.set_idle(now);
            return (done, None);
        }
        match self.backlog.pop_front() {
            Some(next) => {
                self.in_flight = Some(next);
                (done, self.in_flight.as_ref())
            }
            None => {
                self.busy.set_idle(now);
                (done, None)
            }
        }
    }

    /// Promote the next backlog entry to in-flight (used when a link comes
    /// back up). Returns the promoted flight, whose completion the caller
    /// must schedule; `None` if the channel is busy or the backlog is empty.
    pub fn promote(&mut self, now: SimTime) -> Option<&Flight> {
        if self.down || self.in_flight.is_some() {
            return None;
        }
        let next = self.backlog.pop_front()?;
        self.in_flight = Some(next);
        self.busy.set_busy(now);
        self.in_flight.as_ref()
    }
}

impl Default for Channel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{FlightDest, Packet};
    use oracle_topo::PeId;

    fn flight(load: u32) -> Flight {
        Flight {
            from: PeId(0),
            dest: FlightDest::Broadcast,
            piggyback_load: None,
            packet: Packet::LoadUpdate { load },
        }
    }

    #[test]
    fn free_channel_accepts_immediately() {
        let mut ch = Channel::new();
        assert!(ch.offer(flight(1), SimTime(0)));
        assert!(ch.is_busy());
        assert!(!ch.offer(flight(2), SimTime(0)), "second offer must queue");
        assert_eq!(ch.backlog.len(), 1);
    }

    #[test]
    fn completion_promotes_backlog_fifo() {
        let mut ch = Channel::new();
        ch.offer(flight(1), SimTime(0));
        ch.offer(flight(2), SimTime(0));
        ch.offer(flight(3), SimTime(0));
        let (done, next) = ch.complete(SimTime(5));
        assert!(matches!(done.packet, Packet::LoadUpdate { load: 1 }));
        assert!(matches!(
            next.unwrap().packet,
            Packet::LoadUpdate { load: 2 }
        ));
        assert!(ch.is_busy());
        let (done, next) = ch.complete(SimTime(10));
        assert!(matches!(done.packet, Packet::LoadUpdate { load: 2 }));
        assert!(next.is_some());
        let (_, next) = ch.complete(SimTime(15));
        assert!(next.is_none());
        assert!(!ch.is_busy());
        assert_eq!(ch.transfers, 3);
    }

    #[test]
    fn busy_time_accumulates_only_while_transferring() {
        let mut ch = Channel::new();
        ch.offer(flight(1), SimTime(10));
        ch.complete(SimTime(14));
        assert_eq!(ch.busy.busy_time(SimTime(20)), 4);
        assert!(!ch.busy.is_busy());
    }

    #[test]
    #[should_panic(expected = "nothing in flight")]
    fn completing_idle_channel_panics() {
        Channel::new().complete(SimTime(0));
    }

    #[test]
    fn down_channel_backlogs_offers_until_promoted() {
        let mut ch = Channel::new();
        ch.down = true;
        assert!(!ch.offer(flight(1), SimTime(0)), "down channel must queue");
        assert!(!ch.is_busy());
        assert!(ch.promote(SimTime(1)).is_none(), "no promote while down");
        ch.down = false;
        let next = ch.promote(SimTime(2)).unwrap();
        assert!(matches!(next.packet, Packet::LoadUpdate { load: 1 }));
        assert!(ch.is_busy());
    }

    #[test]
    fn in_flight_completes_but_does_not_promote_while_down() {
        let mut ch = Channel::new();
        ch.offer(flight(1), SimTime(0));
        ch.offer(flight(2), SimTime(0));
        ch.down = true;
        let (done, next) = ch.complete(SimTime(5));
        assert!(matches!(done.packet, Packet::LoadUpdate { load: 1 }));
        assert!(next.is_none(), "backlog must wait for LinkUp");
        assert_eq!(ch.backlog.len(), 1);
        assert!(!ch.busy.is_busy());
    }
}
