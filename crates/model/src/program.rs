//! The simulated computation: medium-grain task trees.
//!
//! "When activated, such a task executes for a short time, and then either
//! completes, or starts some sub-tasks and awaits response from them. When
//! it receives a response, it repeats the same cycle."
//!
//! A [`Program`] describes such a computation declaratively: the machine
//! asks it to *expand* each task (leaf or split), *combine* child responses,
//! and optionally *continue* with more children after a round of responses
//! (which models computations whose parallelism rises and falls in cycles).
//! Programs compute real values — running naive Fibonacci through the
//! simulated machine must produce the actual Fibonacci number, which
//! end-to-end checks the whole message plumbing.

use oracle_des::InlineVec;
use serde::{Deserialize, Serialize};

/// The parameters of one task (goal). The meaning of the fields is
/// program-specific; two `i64` parameters plus a depth and a tag cover every
/// workload in this reproduction without heap allocation per task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TaskSpec {
    /// First program-specific parameter (e.g. `M` of `dc(M,N)`, `n` of `fib`).
    pub a: i64,
    /// Second program-specific parameter (e.g. `N` of `dc(M,N)`).
    pub b: i64,
    /// Depth of this task in the task tree (root = 0).
    pub depth: u32,
    /// Program-specific discriminator (e.g. the phase of a cyclic program).
    pub tag: u32,
}

impl TaskSpec {
    /// A root spec with both parameters set and depth/tag zero.
    pub fn new(a: i64, b: i64) -> Self {
        TaskSpec {
            a,
            b,
            depth: 0,
            tag: 0,
        }
    }

    /// A child spec: same tag, depth one greater.
    pub fn child(&self, a: i64, b: i64) -> Self {
        TaskSpec {
            a,
            b,
            depth: self.depth + 1,
            tag: self.tag,
        }
    }
}

/// Child list of one task split. Up to four children — the overwhelmingly
/// common fan-out (binary divide-and-conquer, fib, tak) — live inline with
/// no heap allocation; wider fan-outs (cyclic phases, random trees) spill
/// transparently. Accepts array literals, `Vec`s, and `collect()`:
/// `Expansion::Split([a, b].into())` allocates nothing.
pub type TaskList = InlineVec<TaskSpec, 4>;

/// Result of executing a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expansion {
    /// Base case: the task completes immediately with this value.
    Leaf(i64),
    /// The task spawns these subgoals and waits for their responses.
    Split(TaskList),
}

/// What a waiting task does once all responses of the current round are in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Continuation {
    /// Respond to the parent with this value.
    Done(i64),
    /// Spawn another round of subgoals (cyclic-parallelism programs).
    Spawn(TaskList),
}

/// A simulated computation.
pub trait Program: Send {
    /// Short human-readable name, e.g. `"fib(18)"`.
    fn name(&self) -> String;

    /// The root task injected at time zero.
    fn root(&self) -> TaskSpec;

    /// Execute a task: base case or split into subgoals.
    fn expand(&self, spec: &TaskSpec) -> Expansion;

    /// Initial accumulator for combining child responses.
    fn combine_init(&self, _spec: &TaskSpec) -> i64 {
        0
    }

    /// Fold one child response into the accumulator. Must be commutative:
    /// responses arrive in arbitrary order.
    fn combine(&self, spec: &TaskSpec, acc: i64, child: i64) -> i64;

    /// Called when all responses of round `round` (0-based) have been
    /// combined; defaults to completing with the accumulator.
    fn continue_after(&self, _spec: &TaskSpec, _round: u32, acc: i64) -> Continuation {
        Continuation::Done(acc)
    }

    /// Multiplier on the split/leaf execution cost of this task
    /// (heterogeneous-grain workloads).
    fn work_multiplier(&self, _spec: &TaskSpec) -> u64 {
        1
    }

    /// Total number of goals the computation will generate, when known
    /// analytically (reported on the X axis of the paper's plots).
    fn expected_goals(&self) -> Option<u64> {
        None
    }

    /// The final result, when known analytically — used to validate runs.
    fn expected_result(&self) -> Option<i64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal two-level program used to exercise the trait defaults.
    struct TwoLevel;

    impl Program for TwoLevel {
        fn name(&self) -> String {
            "two-level".into()
        }
        fn root(&self) -> TaskSpec {
            TaskSpec::new(0, 0)
        }
        fn expand(&self, spec: &TaskSpec) -> Expansion {
            if spec.depth == 0 {
                Expansion::Split([spec.child(1, 0), spec.child(2, 0)].into())
            } else {
                Expansion::Leaf(spec.a)
            }
        }
        fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
            acc + child
        }
    }

    #[test]
    fn child_spec_inherits_depth_and_tag() {
        let mut root = TaskSpec::new(5, 9);
        root.tag = 3;
        let c = root.child(1, 2);
        assert_eq!(c.depth, 1);
        assert_eq!(c.tag, 3);
        assert_eq!((c.a, c.b), (1, 2));
    }

    #[test]
    fn trait_defaults() {
        let p = TwoLevel;
        assert_eq!(p.combine_init(&p.root()), 0);
        assert_eq!(p.work_multiplier(&p.root()), 1);
        assert_eq!(p.expected_goals(), None);
        assert_eq!(p.expected_result(), None);
        assert_eq!(p.continue_after(&p.root(), 0, 42), Continuation::Done(42));
    }

    #[test]
    fn expansion_shapes() {
        let p = TwoLevel;
        match p.expand(&p.root()) {
            Expansion::Split(children) => assert_eq!(children.len(), 2),
            Expansion::Leaf(_) => panic!("root should split"),
        }
        let leaf = TaskSpec {
            a: 7,
            b: 0,
            depth: 1,
            tag: 0,
        };
        assert_eq!(p.expand(&leaf), Expansion::Leaf(7));
    }
}
