//! Nearest-neighbour load diffusion (extension baseline).
//!
//! A third classical family from the same era as the paper's two schemes
//! (Cybenko-style diffusive balancing): goals stay local on creation, and a
//! periodic per-PE process levels the load against each neighbour — if my
//! queue exceeds a neighbour's known load by at least `threshold`, I send
//! enough goals to split the difference (capped per cycle so one cycle
//! cannot flood a channel).
//!
//! Where the Gradient Model moves one goal per cycle toward the nearest
//! inferred idle PE, diffusion moves many goals one hop toward *any* less
//! loaded neighbour. It is agility-wise between CWN (immediate push) and GM
//! (demand-driven trickle), which makes it a useful calibration point in the
//! shootout.

use oracle_model::{Core, GoalMsg, Strategy};
use oracle_topo::PeId;
use serde::{Deserialize, Serialize};

/// Timer tag for the diffusion process's periodic wakeup.
const TIMER_CYCLE: u64 = 4;

/// Parameters of the diffusion strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffusionParams {
    /// Sleep between diffusion cycles, in time units.
    pub interval: u64,
    /// Minimum load difference before any goal moves.
    pub threshold: u32,
    /// Most goals exported per neighbour per cycle.
    pub max_per_cycle: u32,
}

impl Default for DiffusionParams {
    fn default() -> Self {
        DiffusionParams {
            interval: 20,
            threshold: 2,
            max_per_cycle: 2,
        }
    }
}

/// The diffusion strategy.
#[derive(Debug, Clone)]
pub struct Diffusion {
    params: DiffusionParams,
}

impl Diffusion {
    /// Diffusion with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0` or `threshold < 1`.
    pub fn new(params: DiffusionParams) -> Self {
        assert!(params.interval > 0, "diffusion interval must be positive");
        assert!(params.threshold >= 1, "threshold must be at least 1");
        Diffusion { params }
    }

    fn cycle(&mut self, core: &mut Core, pe: PeId) {
        let degree = core.topology().degree(pe);
        for i in 0..degree {
            let nbr = core.topology().neighbors(pe)[i].pe;
            let own = core.queued_goal_count(pe);
            let theirs = core.known_load_of(pe, nbr);
            if own < theirs.saturating_add(self.params.threshold) {
                continue;
            }
            // Split the difference, capped.
            let surplus = (own - theirs) / 2;
            let to_move = surplus.min(self.params.max_per_cycle);
            for _ in 0..to_move {
                match core.take_newest_goal(pe) {
                    Some(goal) => core.forward_goal(pe, nbr, goal),
                    None => break,
                }
            }
        }
        core.set_timer(pe, self.params.interval, TIMER_CYCLE);
    }
}

impl Strategy for Diffusion {
    fn name(&self) -> &'static str {
        "diffusion"
    }

    fn init(&mut self, core: &mut Core) {
        for i in 0..core.num_pes() as u32 {
            let delay = 1 + core.rng(PeId(i)).below(self.params.interval);
            core.set_timer(PeId(i), delay, TIMER_CYCLE);
        }
    }

    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        core.accept_goal(pe, goal);
    }

    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        core.accept_goal(pe, goal);
    }

    fn on_timer(&mut self, core: &mut Core, pe: PeId, tag: u64) {
        if tag == TIMER_CYCLE {
            self.cycle(core, pe);
        }
    }

    // Stateless; each cycle reads only the timer PE's queue and load view.
    fn parallel_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_fib;
    use oracle_model::MachineConfig;
    use oracle_topo::mesh::mesh2d;

    #[test]
    fn spreads_work_and_completes() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(Diffusion::new(DiffusionParams::default())),
            14,
            MachineConfig::default(),
        );
        let active = r.per_pe_utilization.iter().filter(|&&u| u > 0.05).count();
        assert!(active >= 10, "diffusion reached only {active}/16 PEs");
    }

    #[test]
    fn beats_keep_local() {
        let diff = run_fib(
            mesh2d(4, 4, false),
            Box::new(Diffusion::new(DiffusionParams::default())),
            13,
            MachineConfig::default(),
        );
        let local = run_fib(
            mesh2d(4, 4, false),
            Box::new(crate::KeepLocal),
            13,
            MachineConfig::default(),
        );
        assert!(
            diff.speedup > 2.0 * local.speedup,
            "diffusion {} should dominate keep-local {}",
            diff.speedup,
            local.speedup
        );
    }

    #[test]
    fn goals_move_hop_by_hop() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(Diffusion::new(DiffusionParams::default())),
            12,
            MachineConfig::default(),
        );
        // Many goals stay where created; movers go one hop per cycle.
        assert!(r.hop_histogram[0] > 0);
        assert!(r.avg_goal_distance < 3.0);
    }

    #[test]
    fn deterministic() {
        let mk = || {
            run_fib(
                mesh2d(4, 4, false),
                Box::new(Diffusion::new(DiffusionParams::default())),
                12,
                MachineConfig::default().with_seed(6),
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        Diffusion::new(DiffusionParams {
            interval: 0,
            ..DiffusionParams::default()
        });
    }
}
