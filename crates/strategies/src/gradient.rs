//! The Gradient Model (Lin & Keller), as described in the paper's §2.2.
//!
//! "Whenever a subgoal is generated, it is simply entered in the local
//! queue. A separate, asynchronous process exists for the load-balancing
//! functions. This process wakes up periodically, and computes the load on
//! the PE … If the load is below the low-water-mark, the state is idle. If
//! the load is above the high-water-mark, the state is abundant; otherwise,
//! it is neutral. It then computes its proximity. An idle node has a 0
//! proximity. For all other nodes, the proximity is one more than the
//! smallest proximity among the immediate neighbors. If the calculated
//! proximity is more than network diameter, then it is set to (network
//! diameter + 1) … If the proximity so calculated is different than the old
//! value, then it is broadcast to all the neighbors. All the PEs initially
//! assume that the proximities of their neighbors are 0. … If the state is
//! abundant, it sends a goal message from the local queue to the neighbor
//! with least proximity."
//!
//! Work export is demand-driven, per the paper's own rationale: "the work is
//! kept locally, and sent out only when the presence of an idle node is
//! inferred" — an abundant PE only exports when the least neighbour
//! proximity is at most the diameter (`require_demand`, on by default; turn
//! off for the literal-unconditional ablation).

use oracle_des::snapshot::{SnapReader, SnapWriter};
use oracle_model::{ControlMsg, Core, GoalMsg, Strategy, StrategyState};
use oracle_topo::PeId;
use serde::{Deserialize, Serialize};

use crate::util::neighbor_index;

/// Control-message tag for proximity updates.
const TAG_PROXIMITY: u8 = 1;
/// Timer tag for the gradient process's periodic wakeup.
const TIMER_CYCLE: u64 = 1;

/// Parameters of the Gradient Model: "the low-water-mark, the
/// high-water-mark, and the sleeping interval between two execution cycles
/// of the gradient process."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GradientParams {
    /// Below this load a PE is idle.
    pub low_water_mark: u32,
    /// Above this load a PE is abundant.
    pub high_water_mark: u32,
    /// Sleep between gradient-process cycles, in time units.
    pub interval: u64,
    /// Stagger each PE's first wakeup randomly within one interval (avoids
    /// artificial lock-step synchrony among the asynchronous processes).
    pub stagger: bool,
    /// Export work only when an idle node is inferred (least neighbour
    /// proximity ≤ diameter). The paper's rationale; disable to ablate.
    pub require_demand: bool,
}

impl GradientParams {
    /// Table 1's parameters for the grid topologies.
    pub fn paper_grid() -> Self {
        GradientParams {
            low_water_mark: 1,
            high_water_mark: 2,
            interval: 20,
            stagger: true,
            require_demand: true,
        }
    }

    /// Table 1's parameters for the double-lattice-meshes.
    pub fn paper_dlm() -> Self {
        GradientParams {
            high_water_mark: 1,
            ..Self::paper_grid()
        }
    }
}

/// Per-PE state of the gradient process.
#[derive(Debug, Clone)]
struct GmPe {
    /// Own last-broadcast proximity.
    proximity: u32,
    /// Last received proximity of each neighbour (indexed like the
    /// topology's neighbour list); "all the PEs initially assume that the
    /// proximities of their neighbors are 0".
    neighbor_prox: Vec<u32>,
}

/// The Gradient Model strategy.
#[derive(Debug, Clone)]
pub struct GradientModel {
    params: GradientParams,
    state: Vec<GmPe>,
}

impl GradientModel {
    /// Gradient Model with the given parameters.
    pub fn new(params: GradientParams) -> Self {
        assert!(
            params.low_water_mark <= params.high_water_mark,
            "low-water-mark must not exceed high-water-mark"
        );
        assert!(params.interval > 0, "gradient interval must be positive");
        GradientModel {
            params,
            state: Vec::new(),
        }
    }

    /// Convenience constructor.
    pub fn with(lwm: u32, hwm: u32, interval: u64) -> Self {
        GradientModel::new(GradientParams {
            low_water_mark: lwm,
            high_water_mark: hwm,
            interval,
            stagger: true,
            require_demand: true,
        })
    }

    /// One cycle of the gradient process on `pe`.
    fn gradient_cycle(&mut self, core: &mut Core, pe: PeId) {
        let load = core.load(pe);
        let cap = core.diameter() + 1;

        // Proximity: 0 when idle, else 1 + min neighbour proximity, capped.
        let st = &self.state[pe.idx()];
        let min_nbr_prox = st.neighbor_prox.iter().copied().min().unwrap_or(cap);
        let new_prox = if load < self.params.low_water_mark {
            0
        } else {
            (min_nbr_prox.saturating_add(1)).min(cap)
        };
        if new_prox != st.proximity {
            self.state[pe.idx()].proximity = new_prox;
            core.broadcast_control(
                pe,
                ControlMsg {
                    tag: TAG_PROXIMITY,
                    value: new_prox as i64,
                },
            );
        }

        // Abundant PEs push one goal toward the nearest inferred idle PE.
        // Dead or cut-off neighbours never receive exports: their proximity
        // was pinned past the diameter in on_neighbor_down, and the
        // reachability check below covers the race before that hook fires.
        if load > self.params.high_water_mark {
            let st = &self.state[pe.idx()];
            let mut best: Option<(PeId, u32)> = None;
            for (i, n) in core.topology().neighbors(pe).iter().enumerate() {
                if !core.neighbor_reachable(pe, n.pe) {
                    continue;
                }
                let prox = st.neighbor_prox[i];
                match best {
                    Some((_, b)) if b <= prox => {}
                    _ => best = Some((n.pe, prox)),
                }
            }
            if let Some((to, prox)) = best {
                let demand_seen = !self.params.require_demand || prox <= core.diameter();
                if demand_seen {
                    if let Some(goal) = core.take_newest_goal(pe) {
                        core.forward_goal(pe, to, goal);
                    }
                }
            }
        }

        core.set_timer(pe, self.params.interval, TIMER_CYCLE);
    }
}

impl Strategy for GradientModel {
    fn name(&self) -> &'static str {
        "gradient"
    }

    fn needs_load_broadcast(&self) -> bool {
        false // GM maintains its own proximity field instead.
    }

    fn init(&mut self, core: &mut Core) {
        let n = core.num_pes();
        self.state = (0..n)
            .map(|i| GmPe {
                proximity: 0,
                neighbor_prox: vec![0; core.topology().degree(PeId(i as u32))],
            })
            .collect();
        for i in 0..n as u32 {
            let delay = if self.params.stagger {
                core.rng(PeId(i)).below(self.params.interval)
            } else {
                self.params.interval
            };
            core.set_timer(PeId(i), delay.max(1), TIMER_CYCLE);
        }
    }

    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        // "Whenever a subgoal is generated, it is simply entered in the
        // local queue."
        core.accept_goal(pe, goal);
    }

    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        // "Any PE that receives a goal message from its neighbor just adds
        // it to its queue." (It may be re-exported on a later cycle.)
        core.accept_goal(pe, goal);
    }

    fn on_control(&mut self, core: &mut Core, pe: PeId, from: PeId, msg: ControlMsg) {
        if msg.tag == TAG_PROXIMITY {
            if let Some(idx) = neighbor_index(core, pe, from) {
                self.state[pe.idx()].neighbor_prox[idx] = msg.value as u32;
            }
        }
    }

    fn on_timer(&mut self, core: &mut Core, pe: PeId, tag: u64) {
        if tag == TIMER_CYCLE {
            self.gradient_cycle(core, pe);
        }
    }

    fn on_neighbor_down(&mut self, core: &mut Core, pe: PeId, down: PeId) {
        // The stale proximity of a dead neighbour is a phantom demand
        // signal: pin it past the cap so the gradient stops pointing there.
        if let Some(idx) = neighbor_index(core, pe, down) {
            self.state[pe.idx()].neighbor_prox[idx] = core.diameter() + 1;
        }
    }

    fn on_neighbor_up(&mut self, core: &mut Core, pe: PeId, up: PeId) {
        // Back to the initial assumption ("proximities of their neighbors
        // are 0") until the neighbour's next real update arrives.
        if let Some(idx) = neighbor_index(core, pe, up) {
            self.state[pe.idx()].neighbor_prox[idx] = 0;
        }
    }

    fn snapshot_state(&self) -> StrategyState {
        let mut w = SnapWriter::new();
        w.usize(self.state.len());
        for st in &self.state {
            w.u32(st.proximity);
            w.usize(st.neighbor_prox.len());
            for &p in &st.neighbor_prox {
                w.u32(p);
            }
        }
        StrategyState {
            name: self.name().to_string(),
            bytes: w.into_bytes(),
        }
    }

    fn restore_state(&mut self, state: &StrategyState, core: &Core) -> Result<(), String> {
        if state.name != self.name() {
            return Err(format!(
                "strategy snapshot was taken from `{}` but is being restored into `{}`",
                state.name,
                self.name()
            ));
        }
        let bad = |e| format!("corrupt `gradient` snapshot payload: {e}");
        let mut r = SnapReader::new(&state.bytes);
        let n = r.usize().map_err(bad)?;
        if n != core.num_pes() {
            return Err(format!(
                "`gradient` snapshot covers {n} PEs but this machine has {}",
                core.num_pes()
            ));
        }
        let mut restored = Vec::with_capacity(n);
        for i in 0..n {
            let proximity = r.u32().map_err(bad)?;
            let deg = r.usize().map_err(bad)?;
            let expect = core.topology().degree(PeId(i as u32));
            if deg != expect {
                return Err(format!(
                    "`gradient` snapshot lists {deg} neighbours for PE {i} \
                     but the topology gives it {expect}"
                ));
            }
            let mut neighbor_prox = Vec::with_capacity(deg);
            for _ in 0..deg {
                neighbor_prox.push(r.u32().map_err(bad)?);
            }
            restored.push(GmPe {
                proximity,
                neighbor_prox,
            });
        }
        r.finish().map_err(bad)?;
        self.state = restored;
        Ok(())
    }

    // The proximity field is per-PE: a PE updates its own proximity and its
    // own view of each neighbour's, learning of remote changes only through
    // control messages.
    fn parallel_safe(&self) -> bool {
        true
    }

    fn merge_owned(&mut self, from: &StrategyState, owned: &[bool]) -> Result<(), String> {
        if from.name != self.name() {
            return Err(format!(
                "merging shard state of `{}` into `{}`",
                from.name,
                self.name()
            ));
        }
        let bad = |e| format!("corrupt `gradient` shard payload: {e}");
        let mut r = SnapReader::new(&from.bytes);
        let n = r.usize().map_err(bad)?;
        if n != self.state.len() || n != owned.len() {
            return Err(format!(
                "`gradient` shard state covers {n} PEs but this machine has {}",
                self.state.len()
            ));
        }
        for (i, &own) in owned.iter().enumerate() {
            let proximity = r.u32().map_err(bad)?;
            let deg = r.usize().map_err(bad)?;
            if deg != self.state[i].neighbor_prox.len() {
                return Err(format!(
                    "`gradient` shard state lists {deg} neighbours for PE {i} \
                     but the topology gives it {}",
                    self.state[i].neighbor_prox.len()
                ));
            }
            let mut neighbor_prox = Vec::with_capacity(deg);
            for _ in 0..deg {
                neighbor_prox.push(r.u32().map_err(bad)?);
            }
            if own {
                self.state[i] = GmPe {
                    proximity,
                    neighbor_prox,
                };
            }
        }
        r.finish().map_err(bad)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_fib;
    use oracle_model::MachineConfig;
    use oracle_topo::mesh::mesh2d;

    #[test]
    fn paper_params() {
        let g = GradientParams::paper_grid();
        assert_eq!(
            (g.low_water_mark, g.high_water_mark, g.interval),
            (1, 2, 20)
        );
        let d = GradientParams::paper_dlm();
        assert_eq!(
            (d.low_water_mark, d.high_water_mark, d.interval),
            (1, 1, 20)
        );
    }

    #[test]
    fn completes_and_spreads_some_work() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(GradientModel::new(GradientParams::paper_grid())),
            14,
            MachineConfig::default(),
        );
        let active = r.per_pe_utilization.iter().filter(|&&u| u > 0.01).count();
        assert!(active > 4, "GM spread work to only {active} PEs");
        assert!(r.traffic.control_msgs > 0, "no proximity updates sent");
    }

    #[test]
    fn most_goals_stay_local() {
        // "A significant number of goals just stay at the PE they were
        // created on" — the average distance is typically below 1.
        let r = run_fib(
            mesh2d(5, 5, false),
            Box::new(GradientModel::new(GradientParams::paper_grid())),
            15,
            MachineConfig::default(),
        );
        assert!(
            r.hop_histogram[0] > r.goals_created / 3,
            "too few zero-hop goals: {:?}",
            &r.hop_histogram[..2.min(r.hop_histogram.len())]
        );
        assert!(
            r.avg_goal_distance < 2.0,
            "GM goals travelled too far on average: {}",
            r.avg_goal_distance
        );
    }

    #[test]
    fn deterministic() {
        let mk = || {
            run_fib(
                mesh2d(4, 4, false),
                Box::new(GradientModel::new(GradientParams::paper_grid())),
                12,
                MachineConfig::default().with_seed(3),
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn literal_variant_without_demand_gating_still_completes() {
        // The ablation of "sent out only when the presence of an idle node
        // is inferred": abundant PEs export unconditionally.
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(GradientModel::new(GradientParams {
                require_demand: false,
                stagger: false,
                ..GradientParams::paper_grid()
            })),
            13,
            MachineConfig::default(),
        );
        assert!(r.avg_utilization > 0.05);
    }

    #[test]
    fn demand_gating_reduces_exports() {
        let run = |require_demand| {
            run_fib(
                mesh2d(4, 4, false),
                Box::new(GradientModel::new(GradientParams {
                    require_demand,
                    ..GradientParams::paper_grid()
                })),
                14,
                MachineConfig::default(),
            )
        };
        let gated = run(true);
        let literal = run(false);
        assert!(
            literal.traffic.goal_hops >= gated.traffic.goal_hops,
            "ungated GM should move at least as many goals ({} vs {})",
            literal.traffic.goal_hops,
            gated.traffic.goal_hops
        );
    }

    #[test]
    #[should_panic(expected = "low-water-mark")]
    fn inverted_watermarks_panic() {
        GradientModel::with(3, 1, 20);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        GradientModel::with(1, 2, 0);
    }
}
