//! Declarative strategy specifications.

use std::fmt;
use std::str::FromStr;

use oracle_model::{MachineConfig, Strategy};
use serde::{Deserialize, Serialize};

use crate::acwn::{AcwnParams, AdaptiveCwn};
use crate::baselines::{KeepLocal, RandomWalk, RoundRobin};
use crate::cwn::{Cwn, CwnParams};
use crate::diffusion::{Diffusion, DiffusionParams};
use crate::global::GlobalRandom;
use crate::gradient::{GradientModel, GradientParams};
use crate::stealing::WorkStealing;
use crate::threshold::{ThresholdParams, ThresholdProbe};

/// A description of a load-distribution strategy.
///
/// ```
/// use oracle_strategies::StrategySpec;
///
/// let cwn: StrategySpec = "cwn:9x1".parse().unwrap();
/// assert_eq!(cwn, StrategySpec::cwn_paper(true));
/// assert_eq!(cwn.build().name(), "cwn");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// Contracting Within a Neighborhood.
    Cwn { radius: u32, horizon: u32 },
    /// The Gradient Model.
    Gradient {
        low_water_mark: u32,
        high_water_mark: u32,
        interval: u64,
    },
    /// Adaptive CWN (saturation + redistribution + future commitments).
    AdaptiveCwn {
        radius: u32,
        horizon: u32,
        saturation: u32,
        redistribute: bool,
    },
    /// Keep every goal local (no distribution).
    Local,
    /// Random walk of `hops` hops per goal.
    RandomWalk { hops: u32 },
    /// Round-robin scatter over neighbours.
    RoundRobin,
    /// Receiver-initiated work stealing.
    WorkStealing { retry_delay: u64 },
    /// Periodic nearest-neighbour load diffusion.
    Diffusion {
        interval: u64,
        threshold: u32,
        max_per_cycle: u32,
    },
    /// Uniform random placement over the whole machine (global
    /// communication — §2.1's unscalable regime).
    GlobalRandom,
    /// Sender-initiated threshold probing (Eager–Lazowska–Zahorjan).
    ThresholdProbe { threshold: u32, probe_limit: u32 },
}

impl StrategySpec {
    /// The paper's CWN parameters for a topology family. `grid` selects the
    /// grid column of Table 1, otherwise the DLM column.
    pub fn cwn_paper(grid: bool) -> Self {
        let p = if grid {
            CwnParams::paper_grid()
        } else {
            CwnParams::paper_dlm()
        };
        StrategySpec::Cwn {
            radius: p.radius,
            horizon: p.horizon,
        }
    }

    /// The paper's Gradient Model parameters (Table 1).
    pub fn gradient_paper(grid: bool) -> Self {
        let p = if grid {
            GradientParams::paper_grid()
        } else {
            GradientParams::paper_dlm()
        };
        StrategySpec::Gradient {
            low_water_mark: p.low_water_mark,
            high_water_mark: p.high_water_mark,
            interval: p.interval,
        }
    }

    /// Instantiate the strategy.
    pub fn build(&self) -> Box<dyn Strategy> {
        match *self {
            StrategySpec::Cwn { radius, horizon } => Box::new(Cwn::with(radius, horizon)),
            StrategySpec::Gradient {
                low_water_mark,
                high_water_mark,
                interval,
            } => Box::new(GradientModel::with(
                low_water_mark,
                high_water_mark,
                interval,
            )),
            StrategySpec::AdaptiveCwn {
                radius,
                horizon,
                saturation,
                redistribute,
            } => Box::new(AdaptiveCwn::new(AcwnParams {
                cwn: CwnParams {
                    radius,
                    horizon,
                    strict_min: true,
                },
                saturation,
                redistribute,
                retry_delay: 40,
            })),
            StrategySpec::Local => Box::new(KeepLocal),
            StrategySpec::RandomWalk { hops } => Box::new(RandomWalk::new(hops)),
            StrategySpec::RoundRobin => Box::new(RoundRobin::new()),
            StrategySpec::WorkStealing { retry_delay } => Box::new(WorkStealing::new(retry_delay)),
            StrategySpec::Diffusion {
                interval,
                threshold,
                max_per_cycle,
            } => Box::new(Diffusion::new(DiffusionParams {
                interval,
                threshold,
                max_per_cycle,
            })),
            StrategySpec::GlobalRandom => Box::new(GlobalRandom::new()),
            StrategySpec::ThresholdProbe {
                threshold,
                probe_limit,
            } => Box::new(ThresholdProbe::new(ThresholdParams {
                threshold,
                probe_limit,
            })),
        }
    }

    /// Fold strategy-specific machine-configuration requirements into
    /// `cfg` (Adaptive CWN turns on the future-commitments load metric).
    pub fn apply_config(&self, cfg: &mut MachineConfig) {
        if let StrategySpec::AdaptiveCwn { .. } = self {
            cfg.future_commitment_weight = 1;
        }
    }
}

impl fmt::Display for StrategySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StrategySpec::Cwn { radius, horizon } => write!(f, "cwn:{radius}x{horizon}"),
            StrategySpec::Gradient {
                low_water_mark,
                high_water_mark,
                interval,
            } => write!(f, "gm:{low_water_mark}x{high_water_mark}x{interval}"),
            StrategySpec::AdaptiveCwn {
                radius,
                horizon,
                saturation,
                redistribute,
            } => write!(
                f,
                "acwn:{radius}x{horizon}x{saturation}x{}",
                u8::from(redistribute)
            ),
            StrategySpec::Local => write!(f, "local"),
            StrategySpec::RandomWalk { hops } => write!(f, "random:{hops}"),
            StrategySpec::RoundRobin => write!(f, "rr"),
            StrategySpec::WorkStealing { retry_delay } => write!(f, "steal:{retry_delay}"),
            StrategySpec::Diffusion {
                interval,
                threshold,
                max_per_cycle,
            } => write!(f, "diffusion:{interval}x{threshold}x{max_per_cycle}"),
            StrategySpec::GlobalRandom => write!(f, "global"),
            StrategySpec::ThresholdProbe {
                threshold,
                probe_limit,
            } => write!(f, "threshold:{threshold}x{probe_limit}"),
        }
    }
}

/// Error parsing a [`StrategySpec`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStrategyError(pub String);

impl fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid strategy spec: {}", self.0)
    }
}

impl std::error::Error for ParseStrategyError {}

impl FromStr for StrategySpec {
    type Err = ParseStrategyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseStrategyError(s.to_string());
        let (kind, args) = match s.split_once(':') {
            Some((k, a)) => (k, a),
            None => (s, ""),
        };
        let nums: Vec<u64> = if args.is_empty() {
            Vec::new()
        } else {
            args.split('x')
                .map(|p| p.parse().map_err(|_| err()))
                .collect::<Result<_, _>>()?
        };
        match (kind, nums.as_slice()) {
            ("cwn", [r, h]) => Ok(StrategySpec::Cwn {
                radius: *r as u32,
                horizon: *h as u32,
            }),
            ("gm" | "gradient", [l, h, i]) => Ok(StrategySpec::Gradient {
                low_water_mark: *l as u32,
                high_water_mark: *h as u32,
                interval: *i,
            }),
            ("acwn", [r, h, s, redist]) => Ok(StrategySpec::AdaptiveCwn {
                radius: *r as u32,
                horizon: *h as u32,
                saturation: *s as u32,
                redistribute: *redist != 0,
            }),
            ("local", []) => Ok(StrategySpec::Local),
            ("random", [hops]) => Ok(StrategySpec::RandomWalk { hops: *hops as u32 }),
            ("rr" | "round-robin", []) => Ok(StrategySpec::RoundRobin),
            ("steal", [d]) => Ok(StrategySpec::WorkStealing { retry_delay: *d }),
            ("steal", []) => Ok(StrategySpec::WorkStealing { retry_delay: 40 }),
            ("diffusion", [i, t, m]) => Ok(StrategySpec::Diffusion {
                interval: *i,
                threshold: *t as u32,
                max_per_cycle: *m as u32,
            }),
            ("diffusion", []) => Ok(StrategySpec::Diffusion {
                interval: 20,
                threshold: 2,
                max_per_cycle: 2,
            }),
            ("global", []) => Ok(StrategySpec::GlobalRandom),
            ("threshold", [t, k]) => Ok(StrategySpec::ThresholdProbe {
                threshold: *t as u32,
                probe_limit: *k as u32,
            }),
            ("threshold", []) => Ok(StrategySpec::ThresholdProbe {
                threshold: 2,
                probe_limit: 3,
            }),
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_display_parse() {
        let specs = [
            StrategySpec::Cwn {
                radius: 9,
                horizon: 2,
            },
            StrategySpec::Gradient {
                low_water_mark: 1,
                high_water_mark: 2,
                interval: 20,
            },
            StrategySpec::AdaptiveCwn {
                radius: 9,
                horizon: 2,
                saturation: 3,
                redistribute: true,
            },
            StrategySpec::Local,
            StrategySpec::RandomWalk { hops: 3 },
            StrategySpec::RoundRobin,
            StrategySpec::WorkStealing { retry_delay: 50 },
            StrategySpec::Diffusion {
                interval: 20,
                threshold: 2,
                max_per_cycle: 2,
            },
            StrategySpec::GlobalRandom,
            StrategySpec::ThresholdProbe {
                threshold: 2,
                probe_limit: 3,
            },
        ];
        for spec in specs {
            let parsed: StrategySpec = spec.to_string().parse().unwrap();
            assert_eq!(parsed, spec, "{spec}");
        }
    }

    #[test]
    fn paper_presets_match_table_1() {
        assert_eq!(
            StrategySpec::cwn_paper(true),
            StrategySpec::Cwn {
                radius: 9,
                horizon: 1
            }
        );
        assert_eq!(
            StrategySpec::cwn_paper(false),
            StrategySpec::Cwn {
                radius: 5,
                horizon: 1
            }
        );
        assert_eq!(
            StrategySpec::gradient_paper(true),
            StrategySpec::Gradient {
                low_water_mark: 1,
                high_water_mark: 2,
                interval: 20
            }
        );
        assert_eq!(
            StrategySpec::gradient_paper(false),
            StrategySpec::Gradient {
                low_water_mark: 1,
                high_water_mark: 1,
                interval: 20
            }
        );
    }

    #[test]
    fn build_names() {
        assert_eq!(StrategySpec::Local.build().name(), "local");
        assert_eq!(StrategySpec::cwn_paper(true).build().name(), "cwn");
        assert_eq!(
            StrategySpec::gradient_paper(true).build().name(),
            "gradient"
        );
    }

    #[test]
    fn acwn_sets_future_commitments() {
        let mut cfg = MachineConfig::default();
        StrategySpec::AdaptiveCwn {
            radius: 9,
            horizon: 2,
            saturation: 3,
            redistribute: true,
        }
        .apply_config(&mut cfg);
        assert_eq!(cfg.future_commitment_weight, 1);

        let mut cfg2 = MachineConfig::default();
        StrategySpec::cwn_paper(true).apply_config(&mut cfg2);
        assert_eq!(cfg2.future_commitment_weight, 0);
    }

    #[test]
    fn parse_rejects_nonsense() {
        for bad in ["", "cwn", "cwn:1", "gm:1x2", "wat:3", "steal:x"] {
            assert!(bad.parse::<StrategySpec>().is_err(), "{bad:?} parsed");
        }
    }
}
