//! Baseline placement policies used to calibrate the two competitors.
//!
//! * [`KeepLocal`] — no distribution at all: everything runs on the PE that
//!   created it (which, transitively, is the root PE). The floor.
//! * [`RandomWalk`] — each goal takes `walk_hops` uniformly random hops and
//!   is accepted where it lands: load-oblivious diffusion.
//! * [`RoundRobin`] — each PE scatters its goals over its neighbours in
//!   cyclic order: deterministic load-oblivious diffusion.

use oracle_des::snapshot::{SnapReader, SnapWriter};
use oracle_model::{Core, GoalMsg, Strategy, StrategyState};
use oracle_topo::PeId;

/// Keep every goal on its creating PE (no load distribution).
#[derive(Debug, Clone, Default)]
pub struct KeepLocal;

impl Strategy for KeepLocal {
    fn name(&self) -> &'static str {
        "local"
    }

    fn needs_load_broadcast(&self) -> bool {
        false
    }

    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        core.accept_goal(pe, goal);
    }

    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        // Only possible for directed transfers; accept them.
        core.accept_goal(pe, goal);
    }

    fn parallel_safe(&self) -> bool {
        true
    }
}

/// Send each goal on a random walk of `walk_hops` hops, then accept it.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    walk_hops: u32,
}

impl RandomWalk {
    /// A random walk of `walk_hops` hops per goal (0 degenerates to
    /// keep-local).
    pub fn new(walk_hops: u32) -> Self {
        RandomWalk { walk_hops }
    }

    fn step(&self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        let degree = core.topology().degree(pe);
        debug_assert!(degree > 0, "PE with no neighbours");
        let pick = core.rng(pe).below(degree as u64) as usize;
        let to = core.topology().neighbors(pe)[pick].pe;
        core.forward_goal(pe, to, goal);
    }
}

impl Strategy for RandomWalk {
    fn name(&self) -> &'static str {
        "random-walk"
    }

    fn needs_load_broadcast(&self) -> bool {
        false
    }

    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        if self.walk_hops == 0 {
            core.accept_goal(pe, goal);
        } else {
            self.step(core, pe, goal);
        }
    }

    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        if goal.direct || goal.hops >= self.walk_hops {
            core.accept_goal(pe, goal);
        } else {
            self.step(core, pe, goal);
        }
    }

    // Every draw comes from the handling PE's own RNG stream.
    fn parallel_safe(&self) -> bool {
        true
    }
}

/// Scatter each PE's goals over its neighbours in cyclic order; goals are
/// accepted after one hop.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: Vec<u32>,
}

impl RoundRobin {
    /// A fresh round-robin scatterer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Strategy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn needs_load_broadcast(&self) -> bool {
        false
    }

    fn init(&mut self, core: &mut Core) {
        self.next = vec![0; core.num_pes()];
    }

    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        let degree = core.topology().degree(pe) as u32;
        debug_assert!(degree > 0, "PE with no neighbours");
        let slot = self.next[pe.idx()] % degree;
        self.next[pe.idx()] = self.next[pe.idx()].wrapping_add(1);
        let to = core.topology().neighbors(pe)[slot as usize].pe;
        core.forward_goal(pe, to, goal);
    }

    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        core.accept_goal(pe, goal);
    }

    fn snapshot_state(&self) -> StrategyState {
        let mut w = SnapWriter::new();
        w.usize(self.next.len());
        for &n in &self.next {
            w.u32(n);
        }
        StrategyState {
            name: self.name().to_string(),
            bytes: w.into_bytes(),
        }
    }

    fn restore_state(&mut self, state: &StrategyState, core: &Core) -> Result<(), String> {
        if state.name != self.name() {
            return Err(format!(
                "strategy snapshot was taken from `{}` but is being restored into `{}`",
                state.name,
                self.name()
            ));
        }
        let bad = |e| format!("corrupt `round-robin` snapshot payload: {e}");
        let mut r = SnapReader::new(&state.bytes);
        let n = r.usize().map_err(bad)?;
        if n != core.num_pes() {
            return Err(format!(
                "`round-robin` snapshot covers {n} PEs but this machine has {}",
                core.num_pes()
            ));
        }
        let mut next = Vec::with_capacity(n);
        for _ in 0..n {
            next.push(r.u32().map_err(bad)?);
        }
        r.finish().map_err(bad)?;
        self.next = next;
        Ok(())
    }

    // The cyclic cursor is per-PE: only `next[pe]` is read or written.
    fn parallel_safe(&self) -> bool {
        true
    }

    fn merge_owned(&mut self, from: &StrategyState, owned: &[bool]) -> Result<(), String> {
        if from.name != self.name() {
            return Err(format!(
                "merging shard state of `{}` into `{}`",
                from.name,
                self.name()
            ));
        }
        let bad = |e| format!("corrupt `round-robin` shard payload: {e}");
        let mut r = SnapReader::new(&from.bytes);
        let n = r.usize().map_err(bad)?;
        if n != self.next.len() || n != owned.len() {
            return Err(format!(
                "`round-robin` shard state covers {n} PEs but this machine has {}",
                self.next.len()
            ));
        }
        for slot in self.next.iter_mut().zip(owned) {
            let v = r.u32().map_err(bad)?;
            if *slot.1 {
                *slot.0 = v;
            }
        }
        r.finish().map_err(bad)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_fib;
    use oracle_model::MachineConfig;
    use oracle_topo::{mesh::mesh2d, misc::ring};

    #[test]
    fn keep_local_runs_everything_on_root() {
        let r = run_fib(ring(5), Box::new(KeepLocal), 10, MachineConfig::default());
        assert_eq!(r.avg_goal_distance, 0.0);
        assert!(r.per_pe_utilization[1..].iter().all(|&u| u == 0.0));
        // Utilization of a 5-PE machine doing sequential work ≈ 1/5.
        assert!(r.avg_utilization < 0.25);
    }

    #[test]
    fn random_walk_travels_exactly_walk_hops() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(RandomWalk::new(3)),
            12,
            MachineConfig::default(),
        );
        assert_eq!(r.hop_histogram.len(), 4);
        assert_eq!(&r.hop_histogram[..3], &[0, 0, 0]);
        assert_eq!(r.avg_goal_distance, 3.0);
    }

    #[test]
    fn random_walk_spreads_work() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(RandomWalk::new(3)),
            14,
            MachineConfig::default(),
        );
        // A 3-hop walk from a corner-rooted tree cannot cover the whole
        // mesh evenly, but most PEs should see real work.
        let active = r.per_pe_utilization.iter().filter(|&&u| u > 0.05).count();
        assert!(active >= 9, "random walk reached only {active} PEs");
    }

    #[test]
    fn round_robin_cycles_neighbours() {
        let r = run_fib(
            ring(6),
            Box::new(RoundRobin::new()),
            12,
            MachineConfig::default(),
        );
        assert_eq!(r.avg_goal_distance, 1.0);
        let active = r.per_pe_utilization.iter().filter(|&&u| u > 0.0).count();
        assert!(active >= 3);
    }

    #[test]
    fn zero_hop_walk_is_local() {
        let r = run_fib(
            ring(4),
            Box::new(RandomWalk::new(0)),
            8,
            MachineConfig::default(),
        );
        assert_eq!(r.avg_goal_distance, 0.0);
    }
}
