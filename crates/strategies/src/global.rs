//! Uniform global-random placement — the scheme CWN was designed to avoid.
//!
//! The paper's §2.1 opens with the scalability argument: "global
//! communication — allowing communication between arbitrary pairs of PEs —
//! is not scalable. In a system with global communication, as the number of
//! PEs is increased, a point is reached beyond which the system is always
//! communication bound." This strategy realizes exactly that regime: every
//! new goal is sent to a uniformly random PE anywhere in the machine,
//! routed hop-by-hop over the contended channels. On small machines it
//! balances beautifully; as the machine (and therefore the mean route
//! length) grows, communication swamps it — the `global_scalability`
//! ablation plots the crossover against CWN.

use std::collections::HashMap;

use oracle_des::snapshot::{SnapReader, SnapWriter};
use oracle_model::{Core, GoalId, GoalMsg, Strategy, StrategyState};
use oracle_topo::PeId;

/// Send every goal to a uniformly random PE (global communication).
#[derive(Debug, Clone, Default)]
pub struct GlobalRandom {
    /// Final destination of each goal currently in flight.
    in_flight: HashMap<GoalId, PeId>,
}

impl GlobalRandom {
    /// A fresh global-random placer.
    pub fn new() -> Self {
        Self::default()
    }

    fn route_toward(&mut self, core: &mut Core, pe: PeId, dest: PeId, goal: GoalMsg) {
        if dest == pe {
            self.in_flight.remove(&goal.id);
            core.accept_goal(pe, goal);
            return;
        }
        let hop = core.topology().next_hop(pe, dest);
        core.forward_goal(pe, hop, goal);
    }
}

impl Strategy for GlobalRandom {
    fn name(&self) -> &'static str {
        "global-random"
    }

    fn needs_load_broadcast(&self) -> bool {
        false
    }

    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        let n = core.num_pes() as u64;
        let dest = PeId(core.rng(pe).below(n) as u32);
        self.in_flight.insert(goal.id, dest);
        self.route_toward(core, pe, dest, goal);
    }

    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        match self.in_flight.get(&goal.id).copied() {
            Some(dest) => self.route_toward(core, pe, dest, goal),
            // Directed transfers (or lost state) are accepted in place.
            None => core.accept_goal(pe, goal),
        }
    }

    fn snapshot_state(&self) -> StrategyState {
        let mut w = SnapWriter::new();
        // Sorted key order: HashMap iteration order is not deterministic,
        // snapshot bytes must be.
        let mut ids: Vec<GoalId> = self.in_flight.keys().copied().collect();
        ids.sort_unstable();
        w.usize(ids.len());
        for id in ids {
            w.u64(id.0);
            w.u32(self.in_flight[&id].0);
        }
        StrategyState {
            name: self.name().to_string(),
            bytes: w.into_bytes(),
        }
    }

    fn restore_state(&mut self, state: &StrategyState, core: &Core) -> Result<(), String> {
        if state.name != self.name() {
            return Err(format!(
                "strategy snapshot was taken from `{}` but is being restored into `{}`",
                state.name,
                self.name()
            ));
        }
        let bad = |e| format!("corrupt `global-random` snapshot payload: {e}");
        let mut r = SnapReader::new(&state.bytes);
        let n = r.usize().map_err(bad)?;
        let mut in_flight = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = GoalId(r.u64().map_err(bad)?);
            let dest = PeId(r.u32().map_err(bad)?);
            if dest.idx() >= core.num_pes() {
                return Err(format!(
                    "`global-random` snapshot routes a goal to PE {} \
                     but this machine has only {} PEs",
                    dest.0,
                    core.num_pes()
                ));
            }
            in_flight.insert(id, dest);
        }
        r.finish().map_err(bad)?;
        self.in_flight = in_flight;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_fib;
    use oracle_model::MachineConfig;
    use oracle_topo::{mesh::mesh2d, misc::complete};

    #[test]
    fn balances_well_on_small_machines() {
        let r = run_fib(
            mesh2d(3, 3, false),
            Box::new(GlobalRandom::new()),
            14,
            MachineConfig::default(),
        );
        // Uniform placement: every PE sees close-to-average work.
        assert!(
            r.imbalance_cv < 0.3,
            "global random should be nearly even, cv = {}",
            r.imbalance_cv
        );
        let active = r.per_pe_utilization.iter().filter(|&&u| u > 0.05).count();
        assert_eq!(active, 9);
    }

    #[test]
    fn goal_distance_tracks_mean_path_length() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(GlobalRandom::new()),
            13,
            MachineConfig::default(),
        );
        let mean = mesh2d(4, 4, false).mean_distance();
        // 1/16 of goals stay local (dest == source), the rest travel the
        // topology's typical distance.
        assert!(
            (r.avg_goal_distance - mean).abs() < 1.0,
            "avg distance {} vs mean path {mean}",
            r.avg_goal_distance
        );
    }

    #[test]
    fn on_complete_graph_it_is_one_hop_scatter() {
        let r = run_fib(
            complete(6),
            Box::new(GlobalRandom::new()),
            12,
            MachineConfig::default(),
        );
        assert!(r.avg_goal_distance <= 1.0);
        assert_eq!(r.result, 144);
    }

    #[test]
    fn deterministic() {
        let mk = || {
            run_fib(
                mesh2d(4, 4, false),
                Box::new(GlobalRandom::new()),
                12,
                MachineConfig::default().with_seed(13),
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.hop_histogram, b.hop_histogram);
    }
}
