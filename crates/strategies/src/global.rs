//! Uniform global-random placement — the scheme CWN was designed to avoid.
//!
//! The paper's §2.1 opens with the scalability argument: "global
//! communication — allowing communication between arbitrary pairs of PEs —
//! is not scalable. In a system with global communication, as the number of
//! PEs is increased, a point is reached beyond which the system is always
//! communication bound." This strategy realizes exactly that regime: every
//! new goal is sent to a uniformly random PE anywhere in the machine,
//! routed hop-by-hop over the contended channels. On small machines it
//! balances beautifully; as the machine (and therefore the mean route
//! length) grows, communication swamps it — the `global_scalability`
//! ablation plots the crossover against CWN.

use std::collections::HashMap;

use oracle_model::{Core, GoalId, GoalMsg, Strategy};
use oracle_topo::PeId;

/// Send every goal to a uniformly random PE (global communication).
#[derive(Debug, Clone, Default)]
pub struct GlobalRandom {
    /// Final destination of each goal currently in flight.
    in_flight: HashMap<GoalId, PeId>,
}

impl GlobalRandom {
    /// A fresh global-random placer.
    pub fn new() -> Self {
        Self::default()
    }

    fn route_toward(&mut self, core: &mut Core, pe: PeId, dest: PeId, goal: GoalMsg) {
        if dest == pe {
            self.in_flight.remove(&goal.id);
            core.accept_goal(pe, goal);
            return;
        }
        let hop = core.topology().next_hop(pe, dest);
        core.forward_goal(pe, hop, goal);
    }
}

impl Strategy for GlobalRandom {
    fn name(&self) -> &'static str {
        "global-random"
    }

    fn needs_load_broadcast(&self) -> bool {
        false
    }

    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        let n = core.num_pes() as u64;
        let dest = PeId(core.rng().below(n) as u32);
        self.in_flight.insert(goal.id, dest);
        self.route_toward(core, pe, dest, goal);
    }

    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        match self.in_flight.get(&goal.id).copied() {
            Some(dest) => self.route_toward(core, pe, dest, goal),
            // Directed transfers (or lost state) are accepted in place.
            None => core.accept_goal(pe, goal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_fib;
    use oracle_model::MachineConfig;
    use oracle_topo::{mesh::mesh2d, misc::complete};

    #[test]
    fn balances_well_on_small_machines() {
        let r = run_fib(
            mesh2d(3, 3, false),
            Box::new(GlobalRandom::new()),
            14,
            MachineConfig::default(),
        );
        // Uniform placement: every PE sees close-to-average work.
        assert!(
            r.imbalance_cv < 0.3,
            "global random should be nearly even, cv = {}",
            r.imbalance_cv
        );
        let active = r.per_pe_utilization.iter().filter(|&&u| u > 0.05).count();
        assert_eq!(active, 9);
    }

    #[test]
    fn goal_distance_tracks_mean_path_length() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(GlobalRandom::new()),
            13,
            MachineConfig::default(),
        );
        let mean = mesh2d(4, 4, false).mean_distance();
        // 1/16 of goals stay local (dest == source), the rest travel the
        // topology's typical distance.
        assert!(
            (r.avg_goal_distance - mean).abs() < 1.0,
            "avg distance {} vs mean path {mean}",
            r.avg_goal_distance
        );
    }

    #[test]
    fn on_complete_graph_it_is_one_hop_scatter() {
        let r = run_fib(
            complete(6),
            Box::new(GlobalRandom::new()),
            12,
            MachineConfig::default(),
        );
        assert!(r.avg_goal_distance <= 1.0);
        assert_eq!(r.result, 144);
    }

    #[test]
    fn deterministic() {
        let mk = || {
            run_fib(
                mesh2d(4, 4, false),
                Box::new(GlobalRandom::new()),
                12,
                MachineConfig::default().with_seed(13),
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.hop_histogram, b.hop_histogram);
    }
}
