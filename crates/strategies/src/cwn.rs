//! Contracting Within a Neighborhood (CWN) — the paper's scheme.
//!
//! "Any time a subgoal is created on a PE, it consults this load
//! information, and sends the new goal message to its least loaded
//! neighbor. … A PE that receives such a message checks to see if the hop
//! count is equal to the allowed radius. If so, it must keep the goal for
//! processing. Otherwise it sends the goal to its least loaded neighbor
//! after adding 1 to the count. If a PE finds its own load is less than its
//! least loaded neighbors, it keeps the goal provided the message has
//! travelled a stipulated minimum hops already. Thus, a new subgoal travels
//! along the steepest load gradient to a local minimum."
//!
//! A goal, once accepted, "remains there, and is finally executed by that
//! PE. It cannot be re-sent elsewhere."

use oracle_model::{Core, GoalMsg, Strategy};
use oracle_topo::PeId;
use serde::{Deserialize, Serialize};

/// Parameters of CWN: "the radius, i.e. the maximum distance a goal message
/// is allowed to travel, and the horizon, i.e. the minimum distance a goal
/// message is required to travel."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CwnParams {
    /// Maximum hops from the source; at this distance the goal must stop.
    pub radius: u32,
    /// Minimum hops before a local-minimum PE may keep the goal ("look over
    /// the horizon").
    pub horizon: u32,
    /// How "its own load is less than its least loaded neighbors" treats a
    /// tie. With `true` (the paper's strict reading) a goal on a load
    /// plateau keeps moving — which produces the paper's Table-3 spike at
    /// the radius; with `false` a plateau counts as a local minimum and the
    /// goal stops at the horizon.
    pub strict_min: bool,
}

impl CwnParams {
    /// Table 1's parameters for the grid topologies.
    pub fn paper_grid() -> Self {
        CwnParams {
            radius: 9,
            horizon: 1,
            strict_min: true,
        }
    }

    /// Table 1's parameters for the double-lattice-meshes.
    pub fn paper_dlm() -> Self {
        CwnParams {
            radius: 5,
            horizon: 1,
            strict_min: true,
        }
    }
}

/// The CWN strategy.
#[derive(Debug, Clone)]
pub struct Cwn {
    params: CwnParams,
}

impl Cwn {
    /// CWN with the given radius and horizon.
    pub fn new(params: CwnParams) -> Self {
        Cwn { params }
    }

    /// Convenience constructor (strict local-minimum test, as in the paper).
    pub fn with(radius: u32, horizon: u32) -> Self {
        Cwn::new(CwnParams {
            radius,
            horizon,
            strict_min: true,
        })
    }
}

impl Strategy for Cwn {
    fn name(&self) -> &'static str {
        "cwn"
    }

    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        // "In the interest of agility, this scheme sends every subgoal out
        // to another PE as soon as it is created." Radius 0 degenerates to
        // keep-local.
        if self.params.radius == 0 {
            core.accept_goal(pe, goal);
            return;
        }
        // With every neighbour dead or cut off, keep the goal: a wrong
        // placement beats routing work into a black hole.
        match core.least_loaded_neighbor(pe, None) {
            Some((to, _)) => core.forward_goal(pe, to, goal),
            None => core.accept_goal(pe, goal),
        }
    }

    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        // Directed transfers (used by AdaptiveCwn's redistribution) are
        // final.
        if goal.direct || goal.hops >= self.params.radius {
            core.accept_goal(pe, goal);
            return;
        }
        if goal.hops >= self.params.horizon {
            let own = core.load(pe);
            let min_nbr = core.min_known_neighbor_load(pe);
            let is_local_min = if self.params.strict_min {
                own < min_nbr
            } else {
                own <= min_nbr
            };
            if is_local_min {
                core.accept_goal(pe, goal);
                return;
            }
        }
        match core.least_loaded_neighbor(pe, None) {
            Some((to, _)) => core.forward_goal(pe, to, goal),
            None => core.accept_goal(pe, goal),
        }
    }

    // Stateless, and every callback reads only its own PE's load view.
    fn parallel_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_fib;
    use oracle_model::MachineConfig;
    use oracle_topo::{mesh::mesh2d, misc::ring};

    #[test]
    fn paper_params() {
        assert_eq!(
            CwnParams::paper_grid(),
            CwnParams {
                radius: 9,
                horizon: 1,
                strict_min: true,
            }
        );
        assert_eq!(
            CwnParams::paper_dlm(),
            CwnParams {
                radius: 5,
                horizon: 1,
                strict_min: true,
            }
        );
    }

    #[test]
    fn hops_never_exceed_radius() {
        let r = run_fib(
            mesh2d(5, 5, false),
            Box::new(Cwn::with(4, 2)),
            12,
            MachineConfig::default(),
        );
        assert!(
            r.hop_histogram.len() <= 5,
            "goal travelled past the radius: {:?}",
            r.hop_histogram
        );
        // Every goal was contracted out: no goal executed at distance 0.
        assert_eq!(r.hop_histogram[0], 0);
    }

    #[test]
    fn horizon_forces_minimum_distance() {
        let r = run_fib(
            mesh2d(5, 5, false),
            Box::new(Cwn::with(6, 3)),
            12,
            MachineConfig::default(),
        );
        // No goal may stop before 3 hops (except none exist below horizon).
        assert_eq!(&r.hop_histogram[..3], &[0, 0, 0]);
        assert!(r.avg_goal_distance >= 3.0);
    }

    #[test]
    fn radius_zero_degenerates_to_local() {
        let r = run_fib(
            ring(4),
            Box::new(Cwn::with(0, 0)),
            10,
            MachineConfig::default(),
        );
        assert_eq!(r.avg_goal_distance, 0.0);
        assert_eq!(r.hop_histogram, vec![r.goals_created]);
    }

    #[test]
    fn spreads_work_across_the_machine() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(Cwn::with(6, 2)),
            14,
            MachineConfig::default(),
        );
        let active = r.per_pe_utilization.iter().filter(|&&u| u > 0.05).count();
        assert!(active >= 12, "only {active}/16 PEs saw real work");
        assert!(r.avg_utilization > 0.30, "util {}", r.avg_utilization);
    }

    #[test]
    fn deterministic() {
        let a = run_fib(
            mesh2d(4, 4, false),
            Box::new(Cwn::with(6, 2)),
            12,
            MachineConfig::default().with_seed(5),
        );
        let b = run_fib(
            mesh2d(4, 4, false),
            Box::new(Cwn::with(6, 2)),
            12,
            MachineConfig::default().with_seed(5),
        );
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.hop_histogram, b.hop_histogram);
    }

    #[test]
    fn radius_spike_appears_at_radius() {
        // "The sudden rise at [the last bucket] for CWN is because [radius]
        // is the allowed radius. A message that has gone that far must stop."
        // The spike needs a loaded machine, so run the paper's fib(18).
        let r = run_fib(
            mesh2d(10, 10, false),
            Box::new(Cwn::new(CwnParams::paper_grid())),
            18,
            MachineConfig::default(),
        );
        let h = &r.hop_histogram;
        assert_eq!(h.len(), 10, "histogram should reach exactly radius 9");
        // The spike: more goals stop exactly at the radius than just before.
        assert!(h[9] > h[8], "no radius spike: {:?} (h[9] vs h[8])", &h[..]);
    }
}
