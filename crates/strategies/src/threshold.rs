//! Sender-initiated threshold probing (Eager, Lazowska & Zahorjan, 1986) —
//! the third classical scheme of the paper's era, restricted to
//! neighbourhoods.
//!
//! Where CWN ships *every* goal and GM ships only on inferred demand,
//! threshold probing ships only when the *sender* is loaded, and asks
//! first: a PE whose load reaches `threshold` probes a random neighbour; if
//! the neighbour's load is below the threshold it accepts the transfer,
//! otherwise the sender probes another, up to `probe_limit` tries, then
//! keeps the goal. The original algorithm probes arbitrary nodes; true to
//! the paper's locality argument (and to the machine model, whose control
//! messages are single-hop) this implementation probes neighbours only.
//!
//! The probed goal is *held at the sender* until the handshake resolves, so
//! placement is load-informed by construction — at the price of a
//! round-trip latency per transfer, which is exactly the agility trade-off
//! the paper frames CWN around.

use std::collections::HashMap;

use oracle_des::snapshot::{SnapReader, SnapWriter};
use oracle_model::snapshot::{get_goal, put_goal};
use oracle_model::{ControlMsg, Core, GoalId, GoalMsg, Strategy, StrategyState};
use oracle_topo::PeId;
use serde::{Deserialize, Serialize};

/// Control tag: "is your load below the threshold?" (value = goal id).
const TAG_PROBE: u8 = 6;
/// Control tag: "yes — send it" (value = goal id).
const TAG_PROBE_OK: u8 = 7;
/// Control tag: "no — try elsewhere" (value = goal id).
const TAG_PROBE_REJECT: u8 = 8;

/// Parameters of threshold probing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdParams {
    /// Transfer goals away when the local load is at or above this.
    pub threshold: u32,
    /// Probes attempted per goal before keeping it.
    pub probe_limit: u32,
}

impl Default for ThresholdParams {
    fn default() -> Self {
        ThresholdParams {
            threshold: 2,
            probe_limit: 3,
        }
    }
}

/// A goal parked at its creator while its probe is outstanding.
#[derive(Debug)]
struct Pending {
    goal: GoalMsg,
    home: PeId,
    probes_left: u32,
}

/// The sender-initiated threshold-probing strategy.
#[derive(Debug)]
pub struct ThresholdProbe {
    params: ThresholdParams,
    pending: HashMap<GoalId, Pending>,
}

impl ThresholdProbe {
    /// Threshold probing with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` or `probe_limit == 0`.
    pub fn new(params: ThresholdParams) -> Self {
        assert!(params.threshold >= 1, "threshold must be at least 1");
        assert!(params.probe_limit >= 1, "probe_limit must be at least 1");
        ThresholdProbe {
            params,
            pending: HashMap::new(),
        }
    }

    fn send_probe(&mut self, core: &mut Core, pe: PeId, goal_id: GoalId) {
        let degree = core.topology().degree(pe);
        let pick = core.rng(pe).below(degree as u64) as usize;
        let to = core.topology().neighbors(pe)[pick].pe;
        core.send_control(
            pe,
            to,
            ControlMsg {
                tag: TAG_PROBE,
                value: goal_id.0 as i64,
            },
        );
    }
}

impl Strategy for ThresholdProbe {
    fn name(&self) -> &'static str {
        "threshold-probe"
    }

    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        if core.load(pe) < self.params.threshold {
            core.accept_goal(pe, goal);
            return;
        }
        let id = goal.id;
        self.pending.insert(
            id,
            Pending {
                goal,
                home: pe,
                probes_left: self.params.probe_limit,
            },
        );
        self.pending.get_mut(&id).unwrap().probes_left -= 1;
        self.send_probe(core, pe, id);
    }

    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        // Transfers arrive as directed goals; accept them.
        core.accept_goal(pe, goal);
    }

    fn on_control(&mut self, core: &mut Core, pe: PeId, from: PeId, msg: ControlMsg) {
        let goal_id = GoalId(msg.value as u64);
        match msg.tag {
            TAG_PROBE => {
                let tag = if core.load(pe) < self.params.threshold {
                    TAG_PROBE_OK
                } else {
                    TAG_PROBE_REJECT
                };
                core.send_control(
                    pe,
                    from,
                    ControlMsg {
                        tag,
                        value: msg.value,
                    },
                );
            }
            TAG_PROBE_OK => {
                if let Some(p) = self.pending.remove(&goal_id) {
                    let mut goal = p.goal;
                    goal.direct = true;
                    core.forward_goal(p.home, from, goal);
                }
            }
            TAG_PROBE_REJECT => {
                // Retry elsewhere or give up and keep the goal at home.
                let retry = match self.pending.get_mut(&goal_id) {
                    Some(p) if p.probes_left > 0 => {
                        p.probes_left -= 1;
                        true
                    }
                    Some(_) => false,
                    None => return,
                };
                if retry {
                    self.send_probe(core, pe, goal_id);
                } else if let Some(p) = self.pending.remove(&goal_id) {
                    core.accept_goal(p.home, p.goal);
                }
            }
            _ => {}
        }
    }

    fn snapshot_state(&self) -> StrategyState {
        let mut w = SnapWriter::new();
        // Sorted key order: HashMap iteration order is not deterministic,
        // snapshot bytes must be.
        let mut ids: Vec<GoalId> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        w.usize(ids.len());
        for id in ids {
            let p = &self.pending[&id];
            w.u64(id.0);
            put_goal(&mut w, &p.goal);
            w.u32(p.home.0);
            w.u32(p.probes_left);
        }
        StrategyState {
            name: self.name().to_string(),
            bytes: w.into_bytes(),
        }
    }

    fn restore_state(&mut self, state: &StrategyState, core: &Core) -> Result<(), String> {
        if state.name != self.name() {
            return Err(format!(
                "strategy snapshot was taken from `{}` but is being restored into `{}`",
                state.name,
                self.name()
            ));
        }
        let bad = |e| format!("corrupt `threshold-probe` snapshot payload: {e}");
        let mut r = SnapReader::new(&state.bytes);
        let n = r.usize().map_err(bad)?;
        let mut pending = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = GoalId(r.u64().map_err(bad)?);
            let goal = get_goal(&mut r).map_err(bad)?;
            let home = PeId(r.u32().map_err(bad)?);
            if home.idx() >= core.num_pes() {
                return Err(format!(
                    "`threshold-probe` snapshot parks a goal on PE {} \
                     but this machine has only {} PEs",
                    home.0,
                    core.num_pes()
                ));
            }
            let probes_left = r.u32().map_err(bad)?;
            pending.insert(
                id,
                Pending {
                    goal,
                    home,
                    probes_left,
                },
            );
        }
        r.finish().map_err(bad)?;
        self.pending = pending;
        Ok(())
    }

    fn goals_held(&self) -> u64 {
        // Parked goals are neither queued on a PE nor on the wire; without
        // this the auditor's task-conservation identity would not balance.
        self.pending.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_fib;
    use oracle_model::MachineConfig;
    use oracle_topo::mesh::mesh2d;

    #[test]
    fn completes_and_spreads_work() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(ThresholdProbe::new(ThresholdParams::default())),
            14,
            MachineConfig::default(),
        );
        let active = r.per_pe_utilization.iter().filter(|&&u| u > 0.05).count();
        assert!(
            active >= 10,
            "threshold probing reached only {active}/16 PEs"
        );
        assert!(r.traffic.control_msgs > 0, "no probes were sent");
    }

    #[test]
    fn transfers_are_load_informed_single_hops() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(ThresholdProbe::new(ThresholdParams::default())),
            13,
            MachineConfig::default(),
        );
        // Goals either stay (0 hops, load below threshold or all probes
        // rejected) or move exactly one hop after a successful probe.
        assert!(r.hop_histogram.len() <= 2, "{:?}", r.hop_histogram);
        assert!(r.hop_histogram[0] > 0);
    }

    #[test]
    fn threshold_controls_probe_and_transfer_volume() {
        // The threshold gates both sides of the handshake: lowering it
        // makes senders probe more often but receivers accept more rarely.
        let run = |threshold| {
            run_fib(
                mesh2d(4, 4, false),
                Box::new(ThresholdProbe::new(ThresholdParams {
                    threshold,
                    probe_limit: 3,
                })),
                13,
                MachineConfig::default(),
            )
        };
        let eager = run(1);
        let lazy = run(6);
        assert!(
            eager.traffic.control_msgs > lazy.traffic.control_msgs,
            "threshold 1 should probe more ({} vs {})",
            eager.traffic.control_msgs,
            lazy.traffic.control_msgs
        );
        assert!(
            eager.traffic.goal_hops < lazy.traffic.goal_hops,
            "threshold 1 accepts more rarely ({} vs {})",
            eager.traffic.goal_hops,
            lazy.traffic.goal_hops
        );
    }

    #[test]
    fn deterministic() {
        let mk = || {
            run_fib(
                mesh2d(4, 4, false),
                Box::new(ThresholdProbe::new(ThresholdParams::default())),
                12,
                MachineConfig::default().with_seed(17),
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_panics() {
        ThresholdProbe::new(ThresholdParams {
            threshold: 0,
            probe_limit: 3,
        });
    }
}
