//! # oracle-strategies — dynamic load distribution schemes
//!
//! The two competitors of the paper plus the extensions its conclusion asks
//! for and a set of context baselines:
//!
//! * [`cwn::Cwn`] — Contracting Within a Neighborhood (Kale): every new goal
//!   is sent along the steepest load gradient to a local minimum within
//!   `radius` hops of its source, after travelling at least `horizon` hops.
//! * [`gradient::GradientModel`] — the Gradient Model (Lin & Keller): goals
//!   stay local; an asynchronous per-PE process propagates *proximity* (the
//!   guessed distance to the nearest idle PE) and abundant PEs push work
//!   down the proximity gradient.
//! * [`acwn::AdaptiveCwn`] — CWN plus the paper's §5 future-work list:
//!   saturation control, a future-commitments load metric, and a
//!   well-controlled redistribution component.
//! * [`stealing::WorkStealing`] — receiver-initiated neighbour stealing, the
//!   scheme that eventually displaced both competitors; included for
//!   context.
//! * [`diffusion::Diffusion`] — classical nearest-neighbour load diffusion,
//!   a third period scheme between CWN's push and GM's trickle.
//! * [`global::GlobalRandom`] — uniform random placement over the whole
//!   machine: the "global communication" regime §2.1 argues is unscalable.
//! * [`threshold::ThresholdProbe`] — sender-initiated threshold probing
//!   (Eager, Lazowska & Zahorjan 1986): ask before you ship.
//! * [`baselines`] — keep-local, random-walk, round-robin scatter: the
//!   sanity floor and ceiling for any placement policy.

pub mod acwn;
pub mod baselines;
pub mod cwn;
pub mod diffusion;
pub mod global;
pub mod gradient;
pub mod spec;
pub mod stealing;
pub mod threshold;

pub use acwn::AdaptiveCwn;
pub use baselines::{KeepLocal, RandomWalk, RoundRobin};
pub use cwn::Cwn;
pub use diffusion::Diffusion;
pub use global::GlobalRandom;
pub use gradient::GradientModel;
pub use spec::StrategySpec;
pub use stealing::WorkStealing;
pub use threshold::ThresholdProbe;

pub(crate) mod util {
    use oracle_model::Core;
    use oracle_topo::PeId;

    /// Index of `nbr` in `pe`'s sorted neighbour list.
    pub fn neighbor_index(core: &Core, pe: PeId, nbr: PeId) -> Option<usize> {
        core.topology()
            .neighbors(pe)
            .binary_search_by_key(&nbr, |n| n.pe)
            .ok()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared harness for strategy unit tests: run a workload on a small
    //! topology under a given strategy and return the report.

    use oracle_model::{
        CostModel, Expansion, Machine, MachineConfig, Program, Report, Strategy, TaskSpec,
    };
    use oracle_topo::Topology;

    /// fib(n) as a local test program (avoids a dev-dependency cycle on
    /// oracle-workloads).
    pub struct Fib(pub i64);

    impl Program for Fib {
        fn name(&self) -> String {
            format!("fib({})", self.0)
        }
        fn root(&self) -> TaskSpec {
            TaskSpec::new(self.0, 0)
        }
        fn expand(&self, spec: &TaskSpec) -> Expansion {
            if spec.a < 2 {
                Expansion::Leaf(spec.a)
            } else {
                Expansion::Split([spec.child(spec.a - 1, 0), spec.child(spec.a - 2, 0)].into())
            }
        }
        fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
            acc + child
        }
    }

    /// Exact fib for assertions.
    pub fn fib(n: i64) -> i64 {
        let (mut a, mut b) = (0i64, 1i64);
        for _ in 0..n {
            (a, b) = (b, a + b);
        }
        a
    }

    /// Run `fib(n)` on `topo` under `strategy` with paper costs.
    pub fn run_fib(
        topo: Topology,
        strategy: Box<dyn Strategy>,
        n: i64,
        config: MachineConfig,
    ) -> Report {
        let machine = Machine::new(
            topo,
            Box::new(Fib(n)),
            strategy,
            CostModel::paper_default(),
            config,
        )
        .expect("machine config");
        let report = machine.run().expect("simulation should complete");
        assert_eq!(report.result, fib(n), "simulated fib({n}) wrong");
        report.check_invariants();
        report
    }
}
