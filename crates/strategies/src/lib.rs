//! # oracle-strategies — dynamic load distribution schemes
//!
//! The two competitors of the paper plus the extensions its conclusion asks
//! for and a set of context baselines:
//!
//! * [`cwn::Cwn`] — Contracting Within a Neighborhood (Kale): every new goal
//!   is sent along the steepest load gradient to a local minimum within
//!   `radius` hops of its source, after travelling at least `horizon` hops.
//! * [`gradient::GradientModel`] — the Gradient Model (Lin & Keller): goals
//!   stay local; an asynchronous per-PE process propagates *proximity* (the
//!   guessed distance to the nearest idle PE) and abundant PEs push work
//!   down the proximity gradient.
//! * [`acwn::AdaptiveCwn`] — CWN plus the paper's §5 future-work list:
//!   saturation control, a future-commitments load metric, and a
//!   well-controlled redistribution component.
//! * [`stealing::WorkStealing`] — receiver-initiated neighbour stealing, the
//!   scheme that eventually displaced both competitors; included for
//!   context.
//! * [`diffusion::Diffusion`] — classical nearest-neighbour load diffusion,
//!   a third period scheme between CWN's push and GM's trickle.
//! * [`global::GlobalRandom`] — uniform random placement over the whole
//!   machine: the "global communication" regime §2.1 argues is unscalable.
//! * [`threshold::ThresholdProbe`] — sender-initiated threshold probing
//!   (Eager, Lazowska & Zahorjan 1986): ask before you ship.
//! * [`baselines`] — keep-local, random-walk, round-robin scatter: the
//!   sanity floor and ceiling for any placement policy.

pub mod acwn;
pub mod baselines;
pub mod cwn;
pub mod diffusion;
pub mod global;
pub mod gradient;
pub mod spec;
pub mod stealing;
pub mod threshold;

pub use acwn::AdaptiveCwn;
pub use baselines::{KeepLocal, RandomWalk, RoundRobin};
pub use cwn::Cwn;
pub use diffusion::Diffusion;
pub use global::GlobalRandom;
pub use gradient::GradientModel;
pub use spec::StrategySpec;
pub use stealing::WorkStealing;
pub use threshold::ThresholdProbe;

pub(crate) mod util {
    use oracle_model::Core;
    use oracle_topo::PeId;

    /// Index of `nbr` in `pe`'s sorted neighbour list.
    pub fn neighbor_index(core: &Core, pe: PeId, nbr: PeId) -> Option<usize> {
        core.topology()
            .neighbors(pe)
            .binary_search_by_key(&nbr, |n| n.pe)
            .ok()
    }
}

#[cfg(test)]
mod resume_tests {
    //! Checkpoint/resume equivalence for every shipped strategy: pausing a
    //! run mid-flight, snapshotting the machine (including the strategy's
    //! private state via [`oracle_model::Strategy::snapshot_state`]), and
    //! resuming in a fresh machine must produce a bit-identical final
    //! report on both queue backends.

    use crate::testutil::Fib;
    use crate::*;
    use oracle_model::{CostModel, Machine, MachineConfig, QueueBackend, Strategy};
    use oracle_topo::mesh::mesh2d;

    fn run_to_end(mut m: Machine) -> String {
        if let Err(e) = m.advance_until(None) {
            return format!("Err({e:?})");
        }
        match m.finish() {
            Ok((report, _)) => format!("{report:?}"),
            Err(e) => format!("Err({e:?})"),
        }
    }

    fn assert_resume_identical(mk: &dyn Fn() -> Box<dyn Strategy>, config: &MachineConfig) {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let config = MachineConfig {
                queue_backend: backend,
                ..config.clone()
            };
            let machine = || {
                Machine::new(
                    mesh2d(4, 4, false),
                    Box::new(Fib(13)),
                    mk(),
                    CostModel::paper_default(),
                    config.clone(),
                )
                .expect("machine config")
            };

            let mut baseline = machine();
            baseline.begin();
            let expected = run_to_end(baseline);

            let mut paused = machine();
            paused.begin();
            paused.advance_until(Some(400)).expect("run to pause point");
            let blob = paused.snapshot_bytes();
            assert_eq!(run_to_end(paused), expected, "continued run diverged");

            let mut resumed = machine();
            resumed
                .restore_bytes(&blob)
                .expect("snapshot should restore");
            assert_eq!(
                run_to_end(resumed),
                expected,
                "resumed run diverged ({backend:?})"
            );
        }
    }

    #[test]
    fn cwn_resumes_bit_identically() {
        assert_resume_identical(
            &|| Box::new(Cwn::with(6, 2)),
            &MachineConfig::default().with_seed(23),
        );
    }

    #[test]
    fn gradient_resumes_bit_identically() {
        assert_resume_identical(
            &|| Box::new(GradientModel::new(gradient::GradientParams::paper_grid())),
            &MachineConfig::default().with_seed(23),
        );
    }

    #[test]
    fn acwn_resumes_bit_identically() {
        assert_resume_identical(
            &|| Box::new(AdaptiveCwn::new(acwn::AcwnParams::paper_grid())),
            &MachineConfig {
                future_commitment_weight: 1,
                ..MachineConfig::default().with_seed(23)
            },
        );
    }

    #[test]
    fn stealing_resumes_bit_identically() {
        assert_resume_identical(
            &|| Box::new(WorkStealing::new(25)),
            &MachineConfig::default().with_seed(23),
        );
    }

    #[test]
    fn threshold_resumes_bit_identically() {
        assert_resume_identical(
            &|| Box::new(ThresholdProbe::new(threshold::ThresholdParams::default())),
            &MachineConfig::default().with_seed(23),
        );
    }

    #[test]
    fn global_random_resumes_bit_identically() {
        assert_resume_identical(
            &|| Box::new(GlobalRandom::new()),
            &MachineConfig::default().with_seed(23),
        );
    }

    #[test]
    fn diffusion_resumes_bit_identically() {
        assert_resume_identical(
            &|| Box::new(Diffusion::new(diffusion::DiffusionParams::default())),
            &MachineConfig::default().with_seed(23),
        );
    }

    #[test]
    fn baselines_resume_bit_identically() {
        let cfg = MachineConfig::default().with_seed(23);
        assert_resume_identical(&|| Box::new(KeepLocal), &cfg);
        assert_resume_identical(&|| Box::new(RandomWalk::new(3)), &cfg);
        assert_resume_identical(&|| Box::new(RoundRobin::new()), &cfg);
    }

    #[test]
    fn audited_resume_stays_clean_and_identical() {
        // Auditor on through pause, snapshot, and resume: still
        // bit-identical, and no invariant fires (threshold probing parks
        // goals, exercising the `goals_held` term of task conservation).
        assert_resume_identical(
            &|| Box::new(ThresholdProbe::new(threshold::ThresholdParams::default())),
            &MachineConfig {
                audit_every: 16,
                ..MachineConfig::default().with_seed(23)
            },
        );
    }

    #[test]
    fn snapshot_refuses_wrong_strategy_or_garbage() {
        let steal = WorkStealing::new(25);
        let state = steal.snapshot_state();
        let mut gm = GradientModel::new(gradient::GradientParams::paper_grid());
        let machine = Machine::new(
            mesh2d(4, 4, false),
            Box::new(Fib(10)),
            Box::new(Cwn::with(6, 2)),
            CostModel::paper_default(),
            MachineConfig::default(),
        )
        .expect("machine config");
        let core = machine.core();
        let err = gm.restore_state(&state, core).unwrap_err();
        assert!(
            err.contains("work-stealing") && err.contains("gradient"),
            "{err}"
        );

        let mut truncated = state.clone();
        truncated.bytes.truncate(3);
        let mut steal2 = WorkStealing::new(25);
        let err = steal2.restore_state(&truncated, core).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared harness for strategy unit tests: run a workload on a small
    //! topology under a given strategy and return the report.

    use oracle_model::{
        CostModel, Expansion, Machine, MachineConfig, Program, Report, Strategy, TaskSpec,
    };
    use oracle_topo::Topology;

    /// fib(n) as a local test program (avoids a dev-dependency cycle on
    /// oracle-workloads).
    pub struct Fib(pub i64);

    impl Program for Fib {
        fn name(&self) -> String {
            format!("fib({})", self.0)
        }
        fn root(&self) -> TaskSpec {
            TaskSpec::new(self.0, 0)
        }
        fn expand(&self, spec: &TaskSpec) -> Expansion {
            if spec.a < 2 {
                Expansion::Leaf(spec.a)
            } else {
                Expansion::Split([spec.child(spec.a - 1, 0), spec.child(spec.a - 2, 0)].into())
            }
        }
        fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
            acc + child
        }
    }

    /// Exact fib for assertions.
    pub fn fib(n: i64) -> i64 {
        let (mut a, mut b) = (0i64, 1i64);
        for _ in 0..n {
            (a, b) = (b, a + b);
        }
        a
    }

    /// Run `fib(n)` on `topo` under `strategy` with paper costs.
    pub fn run_fib(
        topo: Topology,
        strategy: Box<dyn Strategy>,
        n: i64,
        mut config: MachineConfig,
    ) -> Report {
        // Strategy tests assert on work placement, which lives in the
        // (now opt-in) per-PE report vectors.
        config.per_pe_metrics = true;
        let machine = Machine::new(
            topo,
            Box::new(Fib(n)),
            strategy,
            CostModel::paper_default(),
            config,
        )
        .expect("machine config");
        let report = machine.run().expect("simulation should complete");
        assert_eq!(report.result, fib(n), "simulated fib({n}) wrong");
        report.check_invariants();
        report
    }
}
