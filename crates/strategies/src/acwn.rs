//! Adaptive CWN — the paper's §5 future-work list, implemented.
//!
//! "A small, well-controlled (i.e. responsive to runtime conditions)
//! re-distribution component should be added to CWN. … CWN certainly needs
//! saturation control. When the system is running at 100% utilization,
//! there is no need to send every goal out to other PEs. … Taking future
//! commitments into account while computing the load is another suggestion.
//! … Notice that both of these amount to incorporating the good features of
//! GM in CWN. Care must be taken not to lose the agility of CWN."
//!
//! Three additions over [`crate::Cwn`]:
//!
//! 1. **Saturation control** — when the creating PE and all its neighbours
//!    are at or above `saturation` load, the goal is kept locally instead of
//!    contracted out.
//! 2. **Redistribution** — a PE that goes idle requests one queued goal
//!    from its most-loaded known neighbour (a directed, single-hop
//!    transfer; accepted goals still never move once execution is
//!    imminent — only *queued* goals are donated).
//! 3. **Future commitments** — enabled via
//!    `MachineConfig::future_commitment_weight` (the spec's builder sets it),
//!    which folds waiting tasks into every load word this strategy sees.

use oracle_des::snapshot::{SnapReader, SnapWriter};
use oracle_model::{ControlMsg, Core, GoalMsg, Strategy, StrategyState};
use oracle_topo::PeId;
use serde::{Deserialize, Serialize};

use crate::cwn::CwnParams;

/// Control tag: idle PE requesting one goal.
const TAG_REDIST_REQ: u8 = 4;
/// Control tag: nothing to donate.
const TAG_REDIST_DENY: u8 = 5;
/// Timer tag for redistribution retry.
const TIMER_RETRY: u64 = 3;

/// Parameters of Adaptive CWN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcwnParams {
    /// The underlying CWN radius/horizon.
    pub cwn: CwnParams,
    /// Saturation threshold: keep goals local when own load and all known
    /// neighbour loads reach this value (0 disables saturation control).
    pub saturation: u32,
    /// Enable the idle-PE redistribution component.
    pub redistribute: bool,
    /// Backoff before an idle PE retries a denied redistribution request.
    pub retry_delay: u64,
}

impl AcwnParams {
    /// Defaults layered on the paper's grid CWN parameters.
    pub fn paper_grid() -> Self {
        AcwnParams {
            cwn: CwnParams::paper_grid(),
            saturation: 3,
            redistribute: true,
            retry_delay: 40,
        }
    }

    /// Defaults layered on the paper's DLM CWN parameters.
    pub fn paper_dlm() -> Self {
        AcwnParams {
            cwn: CwnParams::paper_dlm(),
            ..Self::paper_grid()
        }
    }
}

/// The Adaptive CWN strategy.
#[derive(Debug, Clone)]
pub struct AdaptiveCwn {
    params: AcwnParams,
    outstanding: Vec<bool>,
}

impl AdaptiveCwn {
    /// Adaptive CWN with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `retry_delay == 0` while redistribution is enabled.
    pub fn new(params: AcwnParams) -> Self {
        assert!(
            !params.redistribute || params.retry_delay > 0,
            "retry_delay must be positive when redistribution is enabled"
        );
        AdaptiveCwn {
            params,
            outstanding: Vec::new(),
        }
    }

    /// True when the neighbourhood is saturated and the goal should stay.
    fn saturated(&self, core: &Core, pe: PeId) -> bool {
        self.params.saturation > 0
            && core.load(pe) >= self.params.saturation
            && core.min_known_neighbor_load(pe) >= self.params.saturation
    }

    fn request_work(&mut self, core: &mut Core, pe: PeId) {
        if self.outstanding[pe.idx()] {
            return;
        }
        // Nobody reachable is known to have queued work: try again later.
        let Some((victim, known)) = core.most_loaded_neighbor(pe) else {
            core.set_timer(pe, self.params.retry_delay, TIMER_RETRY);
            return;
        };
        if known == 0 {
            core.set_timer(pe, self.params.retry_delay, TIMER_RETRY);
            return;
        }
        self.outstanding[pe.idx()] = true;
        core.send_control(
            pe,
            victim,
            ControlMsg {
                tag: TAG_REDIST_REQ,
                value: 0,
            },
        );
    }
}

impl Strategy for AdaptiveCwn {
    fn name(&self) -> &'static str {
        "adaptive-cwn"
    }

    fn init(&mut self, core: &mut Core) {
        self.outstanding = vec![false; core.num_pes()];
    }

    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        if self.params.cwn.radius == 0 || self.saturated(core, pe) {
            core.accept_goal(pe, goal);
            return;
        }
        match core.least_loaded_neighbor(pe, None) {
            Some((to, _)) => core.forward_goal(pe, to, goal),
            None => core.accept_goal(pe, goal),
        }
    }

    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        if goal.direct {
            self.outstanding[pe.idx()] = false;
            core.accept_goal(pe, goal);
            return;
        }
        if goal.hops >= self.params.cwn.radius {
            core.accept_goal(pe, goal);
            return;
        }
        if goal.hops >= self.params.cwn.horizon && core.load(pe) < core.min_known_neighbor_load(pe)
        {
            core.accept_goal(pe, goal);
            return;
        }
        // Saturation control applies in transit too: a saturated
        // neighbourhood keeps the goal rather than bouncing it around.
        if self.saturated(core, pe) && goal.hops >= self.params.cwn.horizon {
            core.accept_goal(pe, goal);
            return;
        }
        match core.least_loaded_neighbor(pe, None) {
            Some((to, _)) => core.forward_goal(pe, to, goal),
            None => core.accept_goal(pe, goal),
        }
    }

    fn on_control(&mut self, core: &mut Core, pe: PeId, from: PeId, msg: ControlMsg) {
        match msg.tag {
            TAG_REDIST_REQ => match core.take_oldest_goal(pe) {
                Some(mut goal) => {
                    goal.direct = true;
                    core.forward_goal(pe, from, goal);
                }
                None => core.send_control(
                    pe,
                    from,
                    ControlMsg {
                        tag: TAG_REDIST_DENY,
                        value: 0,
                    },
                ),
            },
            TAG_REDIST_DENY => {
                self.outstanding[pe.idx()] = false;
                if core.load(pe) == 0 {
                    core.set_timer(pe, self.params.retry_delay, TIMER_RETRY);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, core: &mut Core, pe: PeId, tag: u64) {
        if tag == TIMER_RETRY && self.params.redistribute && core.load(pe) == 0 {
            self.request_work(core, pe);
        }
    }

    fn on_idle(&mut self, core: &mut Core, pe: PeId) {
        if self.params.redistribute {
            self.request_work(core, pe);
        }
    }

    fn snapshot_state(&self) -> StrategyState {
        let mut w = SnapWriter::new();
        w.usize(self.outstanding.len());
        for &b in &self.outstanding {
            w.bool(b);
        }
        StrategyState {
            name: self.name().to_string(),
            bytes: w.into_bytes(),
        }
    }

    fn restore_state(&mut self, state: &StrategyState, core: &Core) -> Result<(), String> {
        if state.name != self.name() {
            return Err(format!(
                "strategy snapshot was taken from `{}` but is being restored into `{}`",
                state.name,
                self.name()
            ));
        }
        let bad = |e| format!("corrupt `adaptive-cwn` snapshot payload: {e}");
        let mut r = SnapReader::new(&state.bytes);
        let n = r.usize().map_err(bad)?;
        if n != core.num_pes() {
            return Err(format!(
                "`adaptive-cwn` snapshot covers {n} PEs but this machine has {}",
                core.num_pes()
            ));
        }
        let mut outstanding = Vec::with_capacity(n);
        for _ in 0..n {
            outstanding.push(r.bool().map_err(bad)?);
        }
        r.finish().map_err(bad)?;
        self.outstanding = outstanding;
        Ok(())
    }

    // The outstanding-request bitmap is per-PE, and redistribution
    // transfers are directed single hops between neighbours.
    fn parallel_safe(&self) -> bool {
        true
    }

    fn merge_owned(&mut self, from: &StrategyState, owned: &[bool]) -> Result<(), String> {
        if from.name != self.name() {
            return Err(format!(
                "merging shard state of `{}` into `{}`",
                from.name,
                self.name()
            ));
        }
        let bad = |e| format!("corrupt `adaptive-cwn` shard payload: {e}");
        let mut r = SnapReader::new(&from.bytes);
        let n = r.usize().map_err(bad)?;
        if n != self.outstanding.len() || n != owned.len() {
            return Err(format!(
                "`adaptive-cwn` shard state covers {n} PEs but this machine has {}",
                self.outstanding.len()
            ));
        }
        for slot in self.outstanding.iter_mut().zip(owned) {
            let v = r.bool().map_err(bad)?;
            if *slot.1 {
                *slot.0 = v;
            }
        }
        r.finish().map_err(bad)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_fib;
    use oracle_model::MachineConfig;
    use oracle_topo::mesh::mesh2d;

    fn acwn_config() -> MachineConfig {
        MachineConfig {
            future_commitment_weight: 1,
            ..MachineConfig::default()
        }
    }

    #[test]
    fn completes_and_spreads_work() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(AdaptiveCwn::new(AcwnParams {
                cwn: CwnParams {
                    radius: 6,
                    horizon: 2,
                    strict_min: true,
                },
                ..AcwnParams::paper_grid()
            })),
            14,
            acwn_config(),
        );
        let active = r.per_pe_utilization.iter().filter(|&&u| u > 0.05).count();
        assert!(active >= 12, "ACWN reached only {active}/16 PEs");
    }

    #[test]
    fn saturation_keeps_some_goals_local() {
        // Plain CWN keeps nothing at hop 0; ACWN with saturation does once
        // the machine fills up.
        let r = run_fib(
            mesh2d(3, 3, false),
            Box::new(AdaptiveCwn::new(AcwnParams {
                cwn: CwnParams {
                    radius: 4,
                    horizon: 1,
                    strict_min: true,
                },
                saturation: 2,
                redistribute: false,
                retry_delay: 40,
            })),
            14,
            acwn_config(),
        );
        assert!(
            r.hop_histogram[0] > 0,
            "saturation control never kept a goal local: {:?}",
            r.hop_histogram
        );
    }

    #[test]
    fn saturation_cuts_communication() {
        let plain = run_fib(
            mesh2d(3, 3, false),
            Box::new(crate::Cwn::with(4, 1)),
            14,
            MachineConfig::default(),
        );
        let adaptive = run_fib(
            mesh2d(3, 3, false),
            Box::new(AdaptiveCwn::new(AcwnParams {
                cwn: CwnParams {
                    radius: 4,
                    horizon: 1,
                    strict_min: true,
                },
                saturation: 2,
                redistribute: false,
                retry_delay: 40,
            })),
            14,
            acwn_config(),
        );
        assert!(
            adaptive.traffic.goal_hops < plain.traffic.goal_hops,
            "saturation control should reduce goal traffic ({} vs {})",
            adaptive.traffic.goal_hops,
            plain.traffic.goal_hops
        );
    }

    #[test]
    fn deterministic() {
        let mk = || {
            run_fib(
                mesh2d(4, 4, false),
                Box::new(AdaptiveCwn::new(AcwnParams::paper_grid())),
                12,
                acwn_config().with_seed(9),
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    #[should_panic(expected = "retry_delay")]
    fn zero_retry_with_redistribution_panics() {
        AdaptiveCwn::new(AcwnParams {
            cwn: CwnParams {
                radius: 4,
                horizon: 1,
                strict_min: true,
            },
            saturation: 0,
            redistribute: true,
            retry_delay: 0,
        });
    }
}
