//! Receiver-initiated work stealing (context baseline).
//!
//! Not in the paper — it is the scheme that ultimately displaced both CWN
//! and the Gradient Model — but it makes a valuable third point of
//! comparison: goals stay where they are created (like GM), and *idle* PEs
//! pull work from a neighbour (where GM's abundant PEs push it).
//!
//! Protocol: an idle PE sends a steal request to one neighbour (its
//! most-loaded known neighbour, falling back to a random one when all known
//! loads are zero). A PE receiving a request donates its oldest queued goal
//! as a directed transfer, or replies with a deny. A denied thief backs off
//! `retry_delay` units and tries again while still idle.

use oracle_des::snapshot::{SnapReader, SnapWriter};
use oracle_model::{ControlMsg, Core, GoalMsg, Strategy, StrategyState};
use oracle_topo::PeId;

/// Control tag: "give me work".
pub(crate) const TAG_STEAL_REQ: u8 = 2;
/// Control tag: "I have nothing to give".
pub(crate) const TAG_STEAL_DENY: u8 = 3;
/// Timer tag for the retry backoff.
const TIMER_RETRY: u64 = 2;

/// Receiver-initiated neighbour work stealing.
#[derive(Debug, Clone)]
pub struct WorkStealing {
    retry_delay: u64,
    /// One outstanding request per PE at a time.
    outstanding: Vec<bool>,
    /// Consecutive denies per PE, for exponential backoff (capped) —
    /// without it, a mostly idle machine drowns the channels in steal
    /// requests.
    denies: Vec<u32>,
}

impl WorkStealing {
    /// Work stealing with the given deny-retry backoff.
    ///
    /// # Panics
    ///
    /// Panics if `retry_delay == 0`.
    pub fn new(retry_delay: u64) -> Self {
        assert!(retry_delay > 0, "retry_delay must be positive");
        WorkStealing {
            retry_delay,
            outstanding: Vec::new(),
            denies: Vec::new(),
        }
    }

    fn try_steal(&mut self, core: &mut Core, pe: PeId) {
        if self.outstanding[pe.idx()] {
            return;
        }
        // Prefer the most-loaded reachable neighbour; if nobody is known
        // to have work, probe a random neighbour (knowledge may be stale).
        // With every neighbour dead or cut off, stay idle and retry later.
        let Some((mut victim, known)) = core.most_loaded_neighbor(pe) else {
            core.set_timer(pe, self.retry_delay, TIMER_RETRY);
            return;
        };
        if known == 0 {
            let degree = core.topology().degree(pe);
            let pick = core.rng(pe).below(degree as u64) as usize;
            let probe = core.topology().neighbors(pe)[pick].pe;
            if core.neighbor_reachable(pe, probe) {
                victim = probe;
            }
        }
        self.outstanding[pe.idx()] = true;
        core.send_control(
            pe,
            victim,
            ControlMsg {
                tag: TAG_STEAL_REQ,
                value: 0,
            },
        );
    }
}

impl Strategy for WorkStealing {
    fn name(&self) -> &'static str {
        "work-stealing"
    }

    fn init(&mut self, core: &mut Core) {
        self.outstanding = vec![false; core.num_pes()];
        self.denies = vec![0; core.num_pes()];
        // Kick-start: every PE begins idle, and on_idle only fires on
        // busy-to-idle transitions, so arm one initial probe per PE.
        for i in 0..core.num_pes() as u32 {
            let delay = 1 + core.rng(PeId(i)).below(self.retry_delay);
            core.set_timer(PeId(i), delay, TIMER_RETRY);
        }
    }

    fn on_goal_created(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        core.accept_goal(pe, goal);
    }

    fn on_goal_message(&mut self, core: &mut Core, pe: PeId, goal: GoalMsg) {
        if goal.direct {
            self.outstanding[pe.idx()] = false;
            self.denies[pe.idx()] = 0;
        }
        core.accept_goal(pe, goal);
    }

    fn on_control(&mut self, core: &mut Core, pe: PeId, from: PeId, msg: ControlMsg) {
        match msg.tag {
            TAG_STEAL_REQ => match core.take_oldest_goal(pe) {
                Some(mut goal) => {
                    goal.direct = true;
                    core.forward_goal(pe, from, goal);
                }
                None => core.send_control(
                    pe,
                    from,
                    ControlMsg {
                        tag: TAG_STEAL_DENY,
                        value: 0,
                    },
                ),
            },
            TAG_STEAL_DENY => {
                self.outstanding[pe.idx()] = false;
                let denies = &mut self.denies[pe.idx()];
                *denies = denies.saturating_add(1);
                if core.load(pe) == 0 {
                    // Gentle exponential backoff: the first couple of denies
                    // retry at the base delay, persistent failures at up to
                    // 8x — keeps the frontier responsive without letting a
                    // mostly-idle machine flood the channels with requests.
                    let backoff = self.retry_delay << denies.saturating_sub(2).min(3);
                    core.set_timer(pe, backoff, TIMER_RETRY);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, core: &mut Core, pe: PeId, tag: u64) {
        if tag == TIMER_RETRY && core.load(pe) == 0 {
            self.try_steal(core, pe);
        }
    }

    fn on_idle(&mut self, core: &mut Core, pe: PeId) {
        self.try_steal(core, pe);
    }

    fn snapshot_state(&self) -> StrategyState {
        let mut w = SnapWriter::new();
        w.usize(self.outstanding.len());
        for &b in &self.outstanding {
            w.bool(b);
        }
        for &d in &self.denies {
            w.u32(d);
        }
        StrategyState {
            name: self.name().to_string(),
            bytes: w.into_bytes(),
        }
    }

    fn restore_state(&mut self, state: &StrategyState, core: &Core) -> Result<(), String> {
        if state.name != self.name() {
            return Err(format!(
                "strategy snapshot was taken from `{}` but is being restored into `{}`",
                state.name,
                self.name()
            ));
        }
        let bad = |e| format!("corrupt `work-stealing` snapshot payload: {e}");
        let mut r = SnapReader::new(&state.bytes);
        let n = r.usize().map_err(bad)?;
        if n != core.num_pes() {
            return Err(format!(
                "`work-stealing` snapshot covers {n} PEs but this machine has {}",
                core.num_pes()
            ));
        }
        let mut outstanding = Vec::with_capacity(n);
        for _ in 0..n {
            outstanding.push(r.bool().map_err(bad)?);
        }
        let mut denies = Vec::with_capacity(n);
        for _ in 0..n {
            denies.push(r.u32().map_err(bad)?);
        }
        r.finish().map_err(bad)?;
        self.outstanding = outstanding;
        self.denies = denies;
        Ok(())
    }

    // Steal bookkeeping (outstanding request, deny cursor) is per-PE; the
    // steal handshake itself rides control messages through channels.
    fn parallel_safe(&self) -> bool {
        true
    }

    fn merge_owned(&mut self, from: &StrategyState, owned: &[bool]) -> Result<(), String> {
        if from.name != self.name() {
            return Err(format!(
                "merging shard state of `{}` into `{}`",
                from.name,
                self.name()
            ));
        }
        let bad = |e| format!("corrupt `work-stealing` shard payload: {e}");
        let mut r = SnapReader::new(&from.bytes);
        let n = r.usize().map_err(bad)?;
        if n != self.outstanding.len() || n != owned.len() {
            return Err(format!(
                "`work-stealing` shard state covers {n} PEs but this machine has {}",
                self.outstanding.len()
            ));
        }
        for slot in self.outstanding.iter_mut().zip(owned) {
            let v = r.bool().map_err(bad)?;
            if *slot.1 {
                *slot.0 = v;
            }
        }
        for slot in self.denies.iter_mut().zip(owned) {
            let v = r.u32().map_err(bad)?;
            if *slot.1 {
                *slot.0 = v;
            }
        }
        r.finish().map_err(bad)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_fib;
    use oracle_model::MachineConfig;
    use oracle_topo::mesh::mesh2d;

    #[test]
    fn steals_spread_work() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(WorkStealing::new(30)),
            14,
            MachineConfig::default(),
        );
        let active = r.per_pe_utilization.iter().filter(|&&u| u > 0.05).count();
        assert!(active >= 10, "stealing reached only {active}/16 PEs");
        assert!(r.traffic.control_msgs > 0);
    }

    #[test]
    fn all_transfers_are_single_hop() {
        let r = run_fib(
            mesh2d(4, 4, false),
            Box::new(WorkStealing::new(30)),
            12,
            MachineConfig::default(),
        );
        // Goals either stay (0 hops) or are donated one hop at a time.
        assert!(r.avg_goal_distance < 2.0);
        assert!(r.hop_histogram[0] > 0, "no goal stayed local");
    }

    #[test]
    fn deterministic() {
        let mk = || {
            run_fib(
                mesh2d(4, 4, false),
                Box::new(WorkStealing::new(25)),
                12,
                MachineConfig::default().with_seed(11),
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    #[should_panic(expected = "retry_delay")]
    fn zero_retry_panics() {
        WorkStealing::new(0);
    }
}
