//! `oracle-cli` — run the ORACLE load-distribution simulator from the
//! command line.
//!
//! ```text
//! oracle-cli run --topology grid:10 --strategy cwn:9x1 --workload fib:15 [--seed N] [--csv] [--series]
//! oracle-cli compare --topology grid:10 --workload fib:15 [--seed N]
//! oracle-cli topo-info grid:20 dlm:20 hypercube:7
//! oracle-cli list
//! ```

use std::process::ExitCode;

use oracle::builder::paper_strategies;
use oracle::prelude::*;
use oracle::table::{f1, f2};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "experiment" => cmd_experiment(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "topo-info" => cmd_topo_info(&args[1..]),
        "list" => {
            print_list();
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
oracle-cli — ORACLE load-distribution simulator (Kale, ICPP 1988 reproduction)

commands:
  run       --topology T --strategy S --workload W [--seed N] [--csv]
            [--series] [--trace N] [--heatmap FILE.ppm] [--faults PLAN]
            run one simulation and print its report
  compare   --topology T --workload W [--seed N]
            run CWN vs the Gradient Model with the paper's parameters
  batch FILE [--csv] [--threads N]
            run a suite file (lines of:
            TOPOLOGY STRATEGY WORKLOAD [seed=N] [faults=PLAN]);
            --threads caps the worker pool (default: all cores; results
            are identical at any thread count)
  experiment NAME [--quick] [--seed N] [--threads N]
            regenerate a paper table/figure: table1 | table2 | table3 |
            plots-dc-grid | plots-dc-dlm | plots-fib | plots-time-grid |
            plots-time-dlm | appendix | ablations |
            resilience [--json] (fault-injection extension)
  topo-info T [T ...] [--dot]
            print PEs, channels, diameter, mean distance — or Graphviz DOT
  list      list the available spec grammars

spec grammars:
  topology: grid:10 | grid:4x6 | torus:8x8 | dlm:10 | dlm:5x20x20 |
            hypercube:7 | kary:4x3 | tree:2x5 | ring:16 | complete:8 |
            star:9 | bus:6
  strategy: cwn:RADIUSxHORIZON | gm:LWMxHWMxINTERVAL | acwn:RxHxSATxREDIST |
            local | random:HOPS | rr | steal[:RETRY] |
            diffusion[:INTERVALxTHRESHOLDxMAX] | global
  workload: fib:18 | dc:4181 | dc:1x4181 | lopsided:BUDGETxSKEW% |
            random:BUDGETxMAXCHILDxGRAINxSEED | cyclic:PHASESxWIDTHxLEAVES |
            tak:18x12x6
  faults:   `+`-separated terms of crash:PE@T | link:CH@DOWN..UP | loss:P% |
            slow:PE@FROM..UNTILxFACTOR | recover:TIMEOUTxRETRIES | none";

/// Pull `--flag value` pairs and boolean flags out of an argument list.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn value_of(&self, flag: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    fn parse<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.value_of(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("{flag} {v:?}: {e}")),
        }
    }
}

/// Apply the shared `--threads N` flag: cap the worker pool every batch in
/// this process uses. Thread count changes wall clock only, never results.
fn apply_threads(flags: &Flags) -> Result<(), String> {
    let threads: usize = flags.parse("--threads", 0)?;
    if flags.value_of("--threads").is_some() && threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    oracle::runner::set_default_threads(threads);
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let topology: TopologySpec = flags.parse("--topology", TopologySpec::grid(10))?;
    let strategy: StrategySpec = flags.parse("--strategy", StrategySpec::cwn_paper(true))?;
    let workload: WorkloadSpec = flags.parse("--workload", WorkloadSpec::fib(15))?;
    let seed: u64 = flags.parse("--seed", 1)?;
    let faults: oracle::model::FaultPlan =
        flags.parse("--faults", oracle::model::FaultPlan::none())?;

    let trace_cap: usize = flags.parse("--trace", 0)?;
    let heatmap_path = flags.value_of("--heatmap");
    let config = SimulationBuilder::new()
        .topology(topology)
        .strategy(strategy)
        .workload(workload)
        .per_pe_series(flags.has("--series") || heatmap_path.is_some())
        .trace_capacity(trace_cap)
        .seed(seed)
        .fault_plan(faults)
        .config();
    let (report, trace) = config.run_traced().map_err(|e| e.to_string())?;
    if let Some(path) = heatmap_path {
        let series = report
            .per_pe_series
            .as_ref()
            .expect("per-PE series was requested");
        let img = oracle::heatmap::render(series, 4);
        img.write_to(path)
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote load-monitor heatmap to {path} ({}x{} px)",
            img.width(),
            img.height()
        );
    }

    if flags.has("--csv") {
        println!("metric,value");
        println!("strategy,{}", report.strategy);
        println!("topology,{}", report.topology);
        println!("program,{}", report.program);
        println!("num_pes,{}", report.num_pes);
        println!("completion_time,{}", report.completion_time);
        println!("result,{}", report.result);
        println!("goals,{}", report.goals_executed);
        println!("avg_utilization_pct,{:.3}", report.avg_utilization);
        println!("speedup,{:.3}", report.speedup);
        println!("avg_goal_distance,{:.3}", report.avg_goal_distance);
        println!("goal_hops,{}", report.traffic.goal_hops);
        println!("response_hops,{}", report.traffic.response_hops);
        println!("control_msgs,{}", report.traffic.control_msgs);
        println!("load_updates,{}", report.traffic.load_updates);
        println!("events,{}", report.events);
        if report.faults.any() {
            println!("pes_crashed,{}", report.faults.pes_crashed);
            println!("goals_lost,{}", report.faults.goals_lost);
            println!("goals_respawned,{}", report.faults.goals_respawned);
            println!("messages_dropped,{}", report.faults.messages_dropped);
            println!("duplicate_responses,{}", report.faults.duplicate_responses);
            println!("retries_exhausted,{}", report.faults.retries_exhausted);
        }
    } else {
        println!(
            "{} on {} under {}",
            report.program, report.topology, report.strategy
        );
        println!("  result            {}", report.result);
        println!("  goals             {}", report.goals_executed);
        println!("  completion time   {} units", report.completion_time);
        println!("  avg utilization   {:.1} %", report.avg_utilization);
        println!(
            "  speedup           {:.2} on {} PEs",
            report.speedup, report.num_pes
        );
        println!("  avg goal distance {:.2} hops", report.avg_goal_distance);
        println!(
            "  traffic           goal {} / response {} / control {} / load {}",
            report.traffic.goal_hops,
            report.traffic.response_hops,
            report.traffic.control_msgs,
            report.traffic.load_updates
        );
        println!("  events processed  {}", report.events);
        if report.faults.any() {
            println!(
                "  faults            {} PE crash(es), {} goals lost, {} re-spawned, \
                 {} messages dropped",
                report.faults.pes_crashed,
                report.faults.goals_lost,
                report.faults.goals_respawned,
                report.faults.messages_dropped
            );
        }
    }
    if flags.has("--series") {
        println!("\nutilization over time (interval start, %):");
        for (t, u) in &report.util_series {
            println!("  {t},{:.1}", u * 100.0);
        }
    }
    if trace_cap > 0 {
        println!("\nevent trace (first {} events):", trace.events().len());
        print!("{}", trace.render());
    }
    Ok(())
}

fn cmd_experiment(args: &[String]) -> Result<(), String> {
    use oracle::experiments::{
        ablations, appendix, plots, resilience, table1, table2, table3, Fidelity,
    };
    use oracle::topo::TopologySpec as T;

    let Some(name) = args.first() else {
        return Err("experiment needs a name (e.g. table2); see --help".into());
    };
    let flags = Flags { args: &args[1..] };
    let fidelity = if flags.has("--quick") {
        Fidelity::Quick
    } else {
        Fidelity::Paper
    };
    let seed: u64 = flags.parse("--seed", 1)?;
    apply_threads(&flags)?;

    match name.as_str() {
        "table1" => {
            let grid = table1::optimize(fidelity, true, seed);
            let dlm = table1::optimize(fidelity, false, seed);
            println!("{}", table1::render(&grid, &dlm));
        }
        "table2" => {
            let cells = table2::run(fidelity, seed);
            println!("{}", table2::render(&cells));
            let s = table2::summarize(&cells);
            println!(
                "CWN better in {}/{} cells, significantly in {}",
                s.cwn_wins, s.cells, s.significant
            );
        }
        "table3" => {
            let d = table3::run(fidelity, seed);
            println!("{}", table3::render(&d));
        }
        "resilience" => {
            let cells = resilience::run(fidelity, seed);
            if flags.has("--json") {
                println!("{}", resilience::to_json(&cells));
            } else {
                println!("{}", resilience::render(&cells));
                let completed = cells.iter().filter(|c| c.completed).count();
                println!(
                    "{completed}/{} runs completed with the correct result \
                     (--json for per-cell fault counters)",
                    cells.len()
                );
            }
        }
        "plots-dc-grid" | "plots-dc-dlm" | "plots-fib" => {
            let fib = name == "plots-fib";
            let workloads = plots::plot_workloads(fidelity, fib);
            for &side in fidelity.grid_sides().iter().rev() {
                let topos: Vec<T> = if fib {
                    vec![T::dlm(side), T::grid(side)]
                } else if name == "plots-dc-grid" {
                    vec![T::grid(side)]
                } else {
                    vec![T::dlm(side)]
                };
                for topology in topos {
                    let p = plots::util_vs_goals(topology, &workloads, seed);
                    println!("{}", plots::render_util_vs_goals(&p));
                }
            }
        }
        "plots-time-grid" | "plots-time-dlm" => {
            let (topology, sizes): (T, &[i64]) = match (name.as_str(), fidelity) {
                ("plots-time-grid", Fidelity::Paper) => (T::grid(10), &[18, 15, 9]),
                ("plots-time-grid", Fidelity::Quick) => (T::grid(5), &[13, 9]),
                (_, Fidelity::Paper) => (T::dlm(10), &[18, 15, 9]),
                (_, Fidelity::Quick) => (T::dlm(5), &[13, 9]),
            };
            for &n in sizes {
                let p = plots::util_vs_time(
                    topology,
                    oracle::workloads::WorkloadSpec::fib(n),
                    100,
                    seed,
                );
                println!("{}", plots::render_util_vs_time(&p));
                println!(
                    "{}",
                    oracle::chart::cwn_gm_chart(
                        format!("{} on {}", p.workload, p.topology),
                        "time (units)",
                        &p.cwn,
                        &p.gm
                    )
                );
            }
        }
        "appendix" => {
            for p in appendix::goals_plots(fidelity, seed) {
                println!("{}", plots::render_util_vs_goals(&p));
            }
            for p in appendix::time_plots(fidelity, seed) {
                println!("{}", plots::render_util_vs_time(&p));
            }
        }
        "ablations" => {
            let sections = [
                ("CWN radius sweep", ablations::radius_sweep(fidelity, seed)),
                (
                    "CWN horizon sweep",
                    ablations::horizon_sweep(fidelity, seed),
                ),
                (
                    "GM interval sweep",
                    ablations::gm_interval_sweep(fidelity, seed),
                ),
                ("Load metric", ablations::load_metric(fidelity, seed)),
                ("Load information", ablations::load_info(fidelity, seed)),
                ("Co-processor", ablations::coprocessor(fidelity, seed)),
                (
                    "Comm/computation ratio",
                    ablations::comm_ratio(fidelity, seed),
                ),
                ("Wraparound", ablations::wraparound(fidelity, seed)),
                ("Shootout", ablations::shootout(fidelity, seed)),
                (
                    "Global scalability",
                    ablations::global_scalability(fidelity, seed),
                ),
            ];
            for (title, points) in sections {
                println!("{}", ablations::render(title, &points));
            }
        }
        other => return Err(format!("unknown experiment {other:?}; see --help")),
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first().filter(|a| !a.starts_with('-')) else {
        return Err("batch needs a suite file".into());
    };
    let flags = Flags { args: &args[1..] };
    apply_threads(&flags)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let specs = oracle::runner::parse_suite(&text)?;
    let mut table = Table::new(
        format!("suite {path} ({} runs)", specs.len()),
        &["run", "speedup", "util %", "time", "avg dist"],
    );
    for (label, result) in run_batch(&specs) {
        let r = result.map_err(|e| format!("{label}: {e}"))?;
        table.row(vec![
            label,
            f2(r.speedup),
            f1(r.avg_utilization),
            r.completion_time.to_string(),
            f2(r.avg_goal_distance),
        ]);
    }
    if flags.has("--csv") {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let topology: TopologySpec = flags.parse("--topology", TopologySpec::grid(10))?;
    let workload: WorkloadSpec = flags.parse("--workload", WorkloadSpec::fib(15))?;
    let seed: u64 = flags.parse("--seed", 1)?;
    let (cwn, gm) = paper_strategies(&topology);

    let specs = vec![
        RunSpec::new(
            "CWN",
            SimulationBuilder::new()
                .topology(topology)
                .strategy(cwn)
                .workload(workload)
                .seed(seed)
                .config(),
        ),
        RunSpec::new(
            "GM",
            SimulationBuilder::new()
                .topology(topology)
                .strategy(gm)
                .workload(workload)
                .seed(seed)
                .config(),
        ),
    ];
    let results = run_batch(&specs);
    let mut table = Table::new(
        format!("{workload} on {topology} ({} PEs)", topology.num_pes()),
        &["scheme", "speedup", "util %", "time", "avg dist"],
    );
    let mut speedups = Vec::new();
    for (label, result) in results {
        let r = result.map_err(|e| format!("{label}: {e}"))?;
        speedups.push(r.speedup);
        table.row(vec![
            label,
            f2(r.speedup),
            f1(r.avg_utilization),
            r.completion_time.to_string(),
            f2(r.avg_goal_distance),
        ]);
    }
    println!("{table}");
    println!("speedup of CWN over GM: {:.2}", speedups[0] / speedups[1]);
    Ok(())
}

fn cmd_topo_info(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("topo-info needs at least one topology spec".into());
    }
    // `--dot` prints Graphviz for each spec instead of the table.
    if args.iter().any(|a| a == "--dot") {
        for arg in args.iter().filter(|a| !a.starts_with('-')) {
            let spec: TopologySpec = arg
                .parse()
                .map_err(|e: oracle::topo::spec::ParseSpecError| e.to_string())?;
            print!("{}", spec.build().to_dot());
        }
        return Ok(());
    }
    let mut table = Table::new(
        "Topology characteristics",
        &[
            "topology",
            "PEs",
            "channels",
            "diameter",
            "mean dist",
            "min deg",
            "max deg",
        ],
    );
    for arg in args {
        let spec: TopologySpec = arg
            .parse()
            .map_err(|e: oracle::topo::spec::ParseSpecError| e.to_string())?;
        let t = spec.build();
        let (min_deg, max_deg) = t
            .pes()
            .map(|pe| t.degree(pe))
            .fold((usize::MAX, 0), |(lo, hi), d| (lo.min(d), hi.max(d)));
        table.row(vec![
            spec.to_string(),
            t.num_pes().to_string(),
            t.num_channels().to_string(),
            t.diameter().to_string(),
            f2(t.mean_distance()),
            min_deg.to_string(),
            max_deg.to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn print_list() {
    println!("{USAGE}");
    println!("\npaper presets (Table 1):");
    println!("  grids:          cwn:9x1   gm:1x2x20");
    println!("  lattice-meshes: cwn:5x1   gm:1x1x20");
    println!("\npaper configurations: grid/dlm sides 5, 8, 10, 16, 20; fib 7-18; dc 21-4181");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn value_of_finds_pairs() {
        let a = flags(&["--seed", "42", "--csv"]);
        let f = Flags { args: &a };
        assert_eq!(f.value_of("--seed"), Some("42"));
        assert_eq!(f.value_of("--missing"), None);
        assert!(f.has("--csv"));
        assert!(!f.has("--series"));
    }

    #[test]
    fn parse_uses_defaults_and_values() {
        let a = flags(&["--seed", "7"]);
        let f = Flags { args: &a };
        assert_eq!(f.parse("--seed", 1u64).unwrap(), 7);
        assert_eq!(f.parse("--trace", 0usize).unwrap(), 0);
    }

    #[test]
    fn parse_reports_bad_values() {
        let a = flags(&["--seed", "xyz"]);
        let f = Flags { args: &a };
        let err = f.parse("--seed", 1u64).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
        assert!(err.contains("xyz"), "{err}");
    }

    #[test]
    fn run_command_smoke() {
        let a = flags(&[
            "--topology",
            "ring:4",
            "--strategy",
            "local",
            "--workload",
            "fib:6",
            "--csv",
        ]);
        cmd_run(&a).expect("run should succeed");
    }

    #[test]
    fn compare_command_smoke() {
        let a = flags(&["--topology", "grid:4", "--workload", "fib:8"]);
        cmd_compare(&a).expect("compare should succeed");
    }

    #[test]
    fn topo_info_rejects_empty_and_bad_specs() {
        assert!(cmd_topo_info(&[]).is_err());
        assert!(cmd_topo_info(&flags(&["nonsense:9"])).is_err());
        cmd_topo_info(&flags(&["grid:4"])).expect("valid spec");
    }

    #[test]
    fn batch_command_runs_a_suite() {
        let path = std::env::temp_dir().join("oracle_cli_suite_test.txt");
        std::fs::write(&path, "grid:4 cwn:4x1 fib:9\nring:4 local fib:8 seed=2\n").unwrap();
        cmd_batch(&flags(&[path.to_str().unwrap(), "--csv"])).expect("suite runs");
        let err = cmd_batch(&[]).unwrap_err();
        assert!(err.contains("suite file"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn experiment_rejects_unknown_names() {
        let err = cmd_experiment(&flags(&["not-a-table"])).unwrap_err();
        assert!(err.contains("unknown experiment"));
        assert!(cmd_experiment(&[]).is_err());
    }

    #[test]
    fn experiment_table3_quick_smoke() {
        cmd_experiment(&flags(&["table3", "--quick"])).expect("table3 quick");
    }

    #[test]
    fn run_command_with_faults_smoke() {
        let a = flags(&[
            "--topology",
            "ring:4",
            "--strategy",
            "local",
            "--workload",
            "fib:8",
            "--faults",
            "crash:3@100",
            "--csv",
        ]);
        cmd_run(&a).expect("an idle-PE crash must not break the run");
        let bad = flags(&["--faults", "crash:zz"]);
        assert!(cmd_run(&bad).is_err());
    }

    #[test]
    fn threads_flag_is_validated_and_accepted() {
        let path = std::env::temp_dir().join("oracle_cli_threads_suite_test.txt");
        std::fs::write(&path, "grid:4 cwn:4x1 fib:9\nring:4 local fib:8\n").unwrap();
        cmd_batch(&flags(&[path.to_str().unwrap(), "--threads", "2"])).expect("capped batch runs");
        let err = cmd_batch(&flags(&[path.to_str().unwrap(), "--threads", "0"])).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        std::fs::remove_file(&path).ok();
        oracle::runner::set_default_threads(0);
    }

    #[test]
    fn batch_command_accepts_fault_plans() {
        let path = std::env::temp_dir().join("oracle_cli_fault_suite_test.txt");
        std::fs::write(&path, "ring:4 local fib:8 faults=crash:3@100\n").unwrap();
        cmd_batch(&flags(&[path.to_str().unwrap(), "--csv"])).expect("fault suite runs");
        std::fs::remove_file(&path).ok();
    }
}
